"""Capture round-robin-token byte-identity fixtures.

Records the complete observable output of fixed-seed decentralized runs —
verdicts, per-monitor counters and network-level totals, from both the
loopback runner (``run_decentralized``) and the discrete-event simulator
(``simulate_monitored_run``) — as a JSON document under
``tests/coordination/fixtures/``.

The document was generated on the pre-refactor ``DecentralizedMonitor``
(immediately after the hop-count and counter bugfixes, before the
coordination-topology extraction) and is asserted byte-for-byte by
``tests/coordination/test_round_robin_fixture.py``: the default
``round-robin-token`` topology must reproduce the monolithic monitor's
outputs exactly.

Re-run only when the *intended* behaviour of the default topology changes::

    PYTHONPATH=src python tools/capture_topology_fixtures.py
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.core import run_decentralized
from repro.experiments.engine import trace_design
from repro.experiments.properties import case_study_monitor, case_study_registry
from repro.scenarios import get_scenario
from repro.sim import generate_computation, simulate_monitored_run

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE_PATH = (
    REPO_ROOT / "tests" / "coordination" / "fixtures" / "round_robin_token.json"
)

#: the fixed cells captured: (property, num_processes, seed)
CELLS = [
    ("B", 3, 2015),
    ("B", 4, 77),
    ("C", 3, 2015),
    ("C", 4, 77),
    ("E", 3, 5),
]


def build_cell_inputs(property_name: str, num_processes: int, seed: int):
    """The computation/automaton/registry of one paper-default cell."""
    scenario = get_scenario("paper-default")
    initial_valuation, truth_probability = trace_design(property_name)
    config = scenario.workload.build_config(
        num_processes=num_processes,
        events_per_process=5,
        evt_mu=3.0,
        evt_sigma=1.0,
        comm_mu=3.0,
        comm_sigma=1.0,
        truth_probability=truth_probability,
        initial_valuation=dict(initial_valuation),
        seed=seed,
    )
    computation = generate_computation(config)
    registry = case_study_registry(num_processes)
    automaton = case_study_monitor(property_name, num_processes)
    return computation, automaton, registry


def capture_cell(property_name: str, num_processes: int, seed: int) -> dict:
    """Every observable output of one fixed-seed cell, JSON-serialisable."""
    computation, automaton, registry = build_cell_inputs(
        property_name, num_processes, seed
    )
    result = run_decentralized(computation, automaton, registry)
    runner = {
        "summary": result.summary(),
        "declared_states": sorted(result.declared_states),
        "network_messages": result.network.messages_sent,
        "monitor_metrics": [asdict(m.metrics) for m in result.monitors],
        "token_hops": [m.metrics.token_hops_served for m in result.monitors],
    }
    report = simulate_monitored_run(
        computation,
        automaton,
        registry,
        seed=seed,
        network=get_scenario("paper-default").network,
        max_views_per_state=2,
    )
    sim = {
        "as_dict": report.as_dict(),
        "declared": sorted(str(v) for v in report.declared_verdicts),
        "termination_messages": report.termination_messages,
        "monitor_metrics": [asdict(m.metrics) for m in report.monitors],
    }
    return {
        "property": property_name,
        "num_processes": num_processes,
        "seed": seed,
        "runner": runner,
        "sim": sim,
    }


def main() -> None:
    """Capture every cell and write the fixture document."""
    document = {
        "comment": (
            "pre-refactor DecentralizedMonitor outputs; regenerate with "
            "tools/capture_topology_fixtures.py"
        ),
        "cells": [capture_cell(*cell) for cell in CELLS],
    }
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {FIXTURE_PATH} ({len(document['cells'])} cells)")


if __name__ == "__main__":
    main()
