"""Check that relative markdown links in the docs resolve.

Usage::

    python tools/check_docs_links.py README.md docs

Every argument is a markdown file or a directory scanned recursively for
``*.md``.  For each inline link ``[text](target)``:

* external targets (``http://``, ``https://``, ``mailto:``) are skipped;
* relative targets must exist on disk, resolved against the linking file;
* anchor fragments (``#section`` or ``file.md#section``) must match a
  GitHub-style slug of some heading in the target file.

Exit status is non-zero when any link is broken; CI's *docs* job runs this
over ``README.md`` and ``docs/``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_PATTERN = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug of a markdown heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    """Anchor slugs of every ATX heading in *path*."""
    slugs: set[str] = set()
    in_code_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if not in_code_fence and line.startswith("#"):
            slugs.add(slugify(line.lstrip("#")))
    return slugs


def markdown_links(path: Path) -> list[str]:
    """All inline link targets in *path*, code fences excluded."""
    targets: list[str] = []
    in_code_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if not in_code_fence:
            targets.extend(LINK_PATTERN.findall(line))
    return targets


def check_file(path: Path) -> list[str]:
    """Return a list of broken-link error strings for one markdown file."""
    errors: list[str] = []
    for target in markdown_links(path):
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        file_part, _, anchor = target.partition("#")
        linked = path if not file_part else (path.parent / file_part).resolve()
        if not linked.exists():
            errors.append(f"{path}: broken link target {target!r}")
            continue
        if anchor and linked.suffix == ".md":
            if slugify(anchor) not in heading_slugs(linked):
                errors.append(f"{path}: missing anchor {target!r}")
    return errors


def collect_markdown(arguments: list[str]) -> list[Path]:
    """Expand file/directory arguments into a sorted list of markdown files."""
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def main(argv: list[str] | None = None) -> int:
    """Check every markdown file named by *argv*; print and count failures."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if not arguments:
        print(__doc__, file=sys.stderr)
        return 2
    errors: list[str] = []
    files = collect_markdown(arguments)
    for path in files:
        errors.extend(check_file(path))
    for error in errors:
        print(f"::error::{error}" if "GITHUB_ACTIONS" in __import__("os").environ else error)
    print(f"checked {len(files)} markdown files: {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
