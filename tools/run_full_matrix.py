"""Run every registered scenario on every backend; emit one combined BENCH doc.

The nightly CI job (``full-matrix`` in ``.github/workflows/ci.yml``) calls
this tool at smoke scale::

    PYTHONPATH=src python tools/run_full_matrix.py --out BENCH_full_matrix.json

It executes the full (scenario × backend) matrix — every name in the
scenario registry, on both the discrete-event simulator and the asyncio
streaming runtime — and writes a single ``repro-bench/1`` document whose
timings are tagged ``group: "full-matrix"`` with their scenario, backend and
row count, plus the ``describe()`` metadata of every scenario exercised
(including fault models).  The PR-path smoke job intentionally does *not*
run this; it stays fast while the nightly sweep covers the whole catalogue.

The cluster backend (one OS process per monitor) is opt-in via
``--backends cluster`` because each of its cells spawns real worker
processes; the nightly job runs it as a second, narrowed invocation at
smoke scale, and the ``cluster-smoke`` PR job runs one scenario the same
way.

``--scenarios`` / ``--properties`` narrow the matrix (used by the smoke test
of this tool itself); ``--topologies`` widens it, re-running every cell
under the listed coordination topologies (the nightly job's third
invocation sweeps all of them into ``BENCH_full_matrix_topologies.json``);
the scale flags mirror the experiment CLI.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from collections.abc import Sequence

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.coordination import DEFAULT_TOPOLOGY, TOPOLOGIES  # noqa: E402
from repro.experiments.benchjson import write_bench_json  # noqa: E402
from repro.experiments.engine import BACKENDS, ExecutionConfig, run_scenario  # noqa: E402
from repro.experiments.harness import ExperimentScale  # noqa: E402
from repro.scenarios import SweepGrid, get_scenario, scenario_names  # noqa: E402

#: backends the matrix sweeps by default; the cluster backend spawns real
#: worker processes per cell, so it is opt-in via ``--backends cluster``
DEFAULT_BACKENDS = ("sim", "asyncio")


def build_parser() -> argparse.ArgumentParser:
    """The command-line interface of the full-matrix runner."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="BENCH_full_matrix.json",
        help="path of the combined repro-bench/1 document (default: %(default)s)",
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        metavar="NAME",
        help="scenario subset to run (default: every registered scenario)",
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        default=list(DEFAULT_BACKENDS),
        choices=list(BACKENDS),
        help="backend subset to run (default: %(default)s; 'cluster' is "
        "opt-in since every cell spawns real worker processes)",
    )
    parser.add_argument(
        "--properties",
        nargs="+",
        default=None,
        metavar="P",
        help="override every scenario's property axis (smoke runs use one)",
    )
    parser.add_argument(
        "--topologies",
        nargs="+",
        default=None,
        choices=list(TOPOLOGIES),
        metavar="NAME",
        help="also run every (scenario × backend) cell under these "
        "coordination topologies (default: each scenario's own topology "
        "only); cells under a non-default topology get a "
        "'matrix_<scenario>_<backend>_<topology>' label",
    )
    parser.add_argument(
        "--processes", type=int, nargs="+", default=[2, 3],
        help="process counts to sweep (default: 2 3)",
    )
    parser.add_argument(
        "--events", type=int, default=3, help="internal events per process"
    )
    parser.add_argument(
        "--replications", type=int, default=1, help="replications per point"
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="sweep-sharding worker processes"
    )
    return parser


def run_matrix(
    names: Sequence[str],
    backends: Sequence[str],
    scale: ExperimentScale,
    grid: SweepGrid | None,
    topologies: Sequence[str] | None = None,
) -> dict[str, dict[str, object]]:
    """Execute the (scenario × backend [× topology]) matrix, tagged timings.

    Without *topologies* every cell runs under its scenario's own topology.
    With them, each (scenario, backend) pair additionally runs under every
    listed topology; only non-default topologies extend the label, so
    existing artifact consumers keep their ``matrix_<scenario>_<backend>``
    keys (schema-backward-compatible — every timing also carries a
    ``topology`` tag).
    """
    timings: dict[str, dict[str, object]] = {}
    for name in names:
        scenario = get_scenario(name)  # fail fast on unknown names
        for backend in backends:
            routes = tuple(topologies) if topologies else (scenario.topology,)
            for topology in routes:
                label = f"matrix_{name}_{backend}"
                if topology != DEFAULT_TOPOLOGY:
                    label = f"{label}_{topology}"
                print(
                    f"[full-matrix] {name} on {backend} ({topology}) ...",
                    flush=True,
                )
                start = time.perf_counter()
                rows = run_scenario(
                    scenario,
                    scale,
                    grid=grid,
                    config=ExecutionConfig(backend=backend, topology=topology),
                )
                timings[label] = {
                    "seconds": time.perf_counter() - start,
                    "group": "full-matrix",
                    "scenario": name,
                    "backend": backend,
                    "topology": topology,
                    "rows": len(rows),
                }
    return timings


def main(argv: Sequence[str] | None = None) -> int:
    """Run the matrix and write the combined document."""
    args = build_parser().parse_args(argv)
    names: Sequence[str] = args.scenarios or scenario_names()
    scale = ExperimentScale(
        process_counts=tuple(args.processes),
        events_per_process=args.events,
        replications=args.replications,
        max_views_per_state=2,
        workers=args.workers,
    )
    grid = SweepGrid(properties=tuple(args.properties)) if args.properties else None
    try:
        timings = run_matrix(names, args.backends, scale, grid, args.topologies)
        scenarios = {name: get_scenario(name).describe() for name in names}
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    write_bench_json(args.out, timings, scale, scenarios=scenarios)
    cells = len(timings)
    total = sum(float(t["seconds"]) for t in timings.values())
    print(f"wrote {args.out}: {cells} matrix cells, {total:.1f}s total")
    write_job_summary(timings)
    return 0


def write_job_summary(timings: dict[str, dict[str, object]]) -> None:
    """Append the per-cell matrix table to the GitHub job summary, if any."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        "### Nightly full matrix",
        "",
        f"{len(timings)} (scenario × backend) cells",
        "",
        "| scenario | backend | topology | seconds | rows |",
        "| --- | --- | --- | ---: | ---: |",
    ]
    for name in sorted(timings):
        record = timings[name]
        lines.append(
            f"| {record['scenario']} | {record['backend']} "
            f"| {record.get('topology', '-')} "
            f"| {float(record['seconds']):.2f} | {record['rows']} |"
        )
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
    except OSError as error:  # pragma: no cover - runner-environment failure
        # the matrix ran and the document is written; never fail the job
        # (and skip the artifact upload) over an unwritable summary file
        print(f"cannot write job summary: {error}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
