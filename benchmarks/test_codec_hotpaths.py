"""Benchmarks for the wire protocol v2 codec hot paths.

Every monitoring message of the asyncio and cluster backends crosses
:func:`repro.cluster.codec.encode_wire` / :func:`decode_wire`, so their
throughput bounds the streaming runtimes the same way the kernel hot paths
bound the simulator.  Two timings land in the ``BENCH_*.json`` document:

* ``codec_encode`` — framing a batch of representative tokens (multi-entry,
  with scan history) and termination notices.
* ``codec_decode`` — splitting and decoding the same batch of frames back
  into messages.

The batch is deterministic, so the byte volume reported next to the timing
is comparable across runs.
"""

import time

import pytest

from conftest import record_timing
from repro.cluster import codec
from repro.core.messages import TerminationNotice, Token, TokenEntry

#: messages framed/parsed per benchmark round
BATCH_MESSAGES = 2000


def _representative_token(seed: int) -> Token:
    """One three-process token with two in-flight entries and scan history."""
    n = 3
    entry = TokenEntry(
        transition_id=seed % 7,
        guard={"P0.p": True, "P1.q": False},
        conjuncts=[{"P0.p": True}, {"P1.q": False}, {}],
        start_cut=[seed % 5, 0, 1],
        cut=[seed % 5 + 1, 2, 1],
        depend=[seed % 5 + 1, 2, 2],
        min_positions=[0, 0, 0],
        satisfied=[True, False, False],
        letters={0: frozenset({"P0.p"}), 1: frozenset({"P1.q", "P1.p"})},
        scanned_letters={1: {2: frozenset({"P1.q"}), 3: frozenset()}},
        scanned_vcs={1: {2: (1, 2, 0), 3: (1, 3, 0)}},
        eval=None,
        parked_on=2,
        waiting_for={2},
    )
    repair = TokenEntry(
        transition_id=None,
        guard={},
        conjuncts=[{} for _ in range(n)],
        start_cut=[0, 0, 0],
        cut=[1, 1, 1],
        depend=[1, 1, 1],
        min_positions=[1, 1, 1],
        satisfied=[True, True, True],
        eval=True,
    )
    return Token(
        parent_process=seed % n,
        parent_view=seed % 11,
        parent_event_sn=seed % 13,
        entries=[entry, repair],
        token_id=seed + 1,
        hops=seed % 4,
    )


def _message_batch() -> list[tuple[float, object]]:
    """The deterministic batch both benchmarks work through."""
    batch = []
    for i in range(BATCH_MESSAGES):
        if i % 10 == 9:
            message = TerminationNotice(process=i % 3, final_event_sn=i % 17)
        else:
            message = _representative_token(i)
        batch.append((float(i) * 0.25, message))
    return batch


@pytest.mark.benchmark(group="codec")
def test_codec_encode_hot_path(benchmark):
    batch = _message_batch()

    def encode_all():
        return [codec.encode_wire(due, message) for due, message in batch]

    start = time.perf_counter()
    frames = benchmark.pedantic(encode_all, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    wire_bytes = sum(len(frame) for frame in frames)
    record_timing(
        "codec_encode",
        elapsed,
        group="codec",
        replaces="test_codec_encode_hot_path",
        messages=len(frames),
        wire_bytes=wire_bytes,
    )
    assert len(frames) == BATCH_MESSAGES
    assert all(frame.startswith(codec.MAGIC) for frame in frames)


@pytest.mark.benchmark(group="codec")
def test_codec_decode_hot_path(benchmark):
    batch = _message_batch()
    frames = [codec.encode_wire(due, message) for due, message in batch]

    def decode_all():
        return [
            codec.decode_wire(*codec.split_frame(frame)) for frame in frames
        ]

    start = time.perf_counter()
    decoded = benchmark.pedantic(decode_all, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    record_timing(
        "codec_decode",
        elapsed,
        group="codec",
        replaces="test_codec_decode_hot_path",
        messages=len(decoded),
        wire_bytes=sum(len(frame) for frame in frames),
    )
    assert decoded == batch  # byte-stable round-trip of the whole batch
