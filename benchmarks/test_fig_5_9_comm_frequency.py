"""Benchmark regenerating Figure 5.9: effect of the communication frequency.

Property C with four processes is monitored while the mean wait time between
program communication events (Commμ) varies over {3, 6, 9, 15, ∞} seconds
(∞ = no communication at all).  The paper's findings reproduced here:

* 5.9a — the total number of events and of monitoring messages decreases as
  communication becomes rarer (fewer receive events, fewer inconsistencies
  to repair);
* 5.9b — the delay also decreases with less communication;
* 5.9c — the paper reports that the total number of global views increases
  as communication disappears (wider lattice).  In this reproduction most
  views are created while repairing receive-induced inconsistencies, so the
  no-communication run creates *fewer* views — a documented deviation (see
  EXPERIMENTS.md); the benchmark only checks that monitoring remains
  non-trivial (several views per process) even without any communication.
"""

import pytest

from conftest import BENCH_SCALE
from repro.experiments import format_table, run_fig_5_9


@pytest.mark.benchmark(group="fig-5.9")
def test_fig_5_9_communication_frequency(benchmark):
    rows = benchmark.pedantic(
        run_fig_5_9,
        kwargs={
            "comm_mus": (3.0, 6.0, 15.0, None),
            "num_processes": 4,
            "property_name": "C",
            "scale": BENCH_SCALE,
        },
        rounds=1,
        iterations=1,
    )
    print("\nFig 5.9 — varying the communication frequency (property C, 4 processes)\n")
    print(format_table(rows, columns=["comm_mu", "events", "messages",
                                      "delayed_events", "global_views"]))

    frequent = rows[0]          # Commμ = 3
    rare = rows[-2]             # Commμ = 15
    no_comm = rows[-1]          # no communication at all

    # 5.9a: fewer communication events -> fewer program events and messages
    assert rare["events"] < frequent["events"]
    assert no_comm["events"] < frequent["events"]
    assert rare["messages"] < frequent["messages"]
    assert no_comm["messages"] < frequent["messages"]

    # 5.9b: less communication -> fewer delayed events
    assert rare["delayed_events"] <= frequent["delayed_events"]

    # 5.9c (deviation documented in EXPERIMENTS.md): even without any
    # communication the monitors still maintain several global views per
    # process, because all remote events are mutually concurrent
    assert no_comm["global_views"] >= 4  # the experiment uses 4 processes
