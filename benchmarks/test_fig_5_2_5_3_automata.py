"""Benchmark regenerating Figures 5.2 / 5.3: the monitor automata themselves.

The figures draw the LTL3 monitor automata of properties A, B and D
(Fig 5.2) and E and F (Fig 5.3) for two processes.  The benchmark rebuilds
them, prints their textual rendering and asserts the structural facts visible
in the figures: state counts, verdict labelling, and which properties own a
reachable ⊥ / ⊤ state.
"""

import pytest

from repro.experiments import case_study_monitor, run_fig_5_2_5_3
from repro.ltl import Verdict


@pytest.mark.benchmark(group="fig-5.2-5.3")
def test_fig_5_2_5_3_monitor_automata(benchmark):
    descriptions = benchmark.pedantic(run_fig_5_2_5_3, rounds=1, iterations=1)
    print()
    for name, text in descriptions.items():
        print(f"--- property {name} (2 processes) ---")
        print(text)
        print()

    # structural checks against the drawn automata
    a = case_study_monitor("A", 2)
    b = case_study_monitor("B", 2)
    d = case_study_monitor("D", 2)
    e = case_study_monitor("E", 2)
    f = case_study_monitor("F", 2)

    # Fig 5.2a / 5.2c: safety-style automata with an absorbing ⊥ state
    for monitor in (a, d):
        verdicts = {monitor.verdict(s) for s in monitor.states}
        assert Verdict.BOTTOM in verdicts
        assert Verdict.TOP not in verdicts
        assert monitor.num_states == 3

    # Fig 5.2b / 5.3a: co-safety automata with a single outgoing transition
    for monitor in (b, e):
        verdicts = {monitor.verdict(s) for s in monitor.states}
        assert Verdict.TOP in verdicts
        assert Verdict.BOTTOM not in verdicts
        assert monitor.num_states == 2
        assert monitor.transition_counts()["outgoing"] == 1

    # Fig 5.3b: property F has the richest automaton (5 states in the paper)
    assert f.num_states == 5
    assert {f.verdict(s) for s in f.states} == {Verdict.INCONCLUSIVE, Verdict.BOTTOM}
