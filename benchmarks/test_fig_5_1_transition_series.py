"""Benchmark regenerating Figure 5.1: transition-count series per property.

Fig 5.1a plots the total number of transitions and Fig 5.1b the number of
outgoing transitions of every property's automaton against the number of
processes (2–5).  The paper's qualitative findings: every series is
non-decreasing in the number of processes, F dominates everything, D grows
fastest among the remaining G-properties, and B/E stay nearly flat.
"""

import pytest

from repro.experiments import run_fig_5_1


@pytest.mark.benchmark(group="fig-5.1")
def test_fig_5_1_transition_series(benchmark):
    series = benchmark.pedantic(run_fig_5_1, rounds=1, iterations=1)
    all_transitions = series["all_transitions"]
    outgoing = series["outgoing_transitions"]

    print("\nFig 5.1a — all transitions per property (n = 2..5)")
    for name, values in all_transitions.items():
        print(f"  {name}: {values}")
    print("Fig 5.1b — outgoing transitions per property (n = 2..5)")
    for name, values in outgoing.items():
        print(f"  {name}: {values}")

    for name in "ABCDEF":
        assert all_transitions[name] == sorted(all_transitions[name])
        assert outgoing[name] == sorted(outgoing[name])
    for index in range(4):
        column = {name: all_transitions[name][index] for name in "ABCDEF"}
        assert column["F"] == max(column.values())
        assert column["D"] >= column["A"] >= column["B"]
    # B and E have a single outgoing transition regardless of the size
    assert set(outgoing["E"]) == {1}
    assert outgoing["B"][0] == 1 and outgoing["B"][-1] == 1
