"""Benchmarks for the coordination-topology frontier.

The tentpole of the topology refactor: every registered
``repro.coordination`` topology replays the paper-default workload on the
simulator, and each (topology, property) point is recorded into the
session's ``BENCH_*.json`` under the ``topology-frontier`` group with two
extra comparable fields — ``topology_messages_total`` (the full monitor
message count, token + termination + digest) and
``topology_verdict_latency`` (the virtual-time instant the monitors went
quiescent).  ``tools/compare_bench.py`` tracks both across sessions, so a
topology silently drifting along either axis of the frontier shows up in
the benchmark diff.

The assertions pin the frontier's qualitative shape rather than exact
numbers: tree relaying costs extra token hops, gossip pays a digest
overhead, and every topology declares the same verdicts (soundness is
covered by ``tests/coordination/``).
"""

import time

import pytest

from conftest import BENCH_SCALE, record_timing
from repro.coordination import TOPOLOGIES
from repro.experiments import format_table
from repro.experiments.harness import run_topology_frontier

_PROPERTIES = ("B", "C")
_NUM_PROCESSES = 3

#: one frontier sweep per session, shared by every test in the file
_FRONTIER_CACHE: list = []


def _frontier():
    if _FRONTIER_CACHE:
        return _FRONTIER_CACHE[0]
    start = time.perf_counter()
    rows = run_topology_frontier(
        properties=_PROPERTIES,
        num_processes=_NUM_PROCESSES,
        scale=BENCH_SCALE,
    )
    seconds = time.perf_counter() - start
    record_timing(
        "topology_frontier_sweep",
        seconds,
        group="topology-frontier",
        scenario="paper-default",
        properties=list(_PROPERTIES),
    )
    for row in rows:
        record_timing(
            f"topology_{row['topology']}_{row['property']}",
            seconds / max(1, len(rows)),
            group="topology-frontier",
            scenario="paper-default",
            topology=row["topology"],
            property=row["property"],
            topology_messages_total=float(row["messages"]),
            topology_verdict_latency=float(row["verdict_latency"]),
        )
    _FRONTIER_CACHE.append(rows)
    return rows


def _by_topology(rows, property_name):
    return {
        row["topology"]: row for row in rows if row["property"] == property_name
    }


@pytest.mark.benchmark(group="topology-frontier")
def test_topology_frontier_covers_every_registered_topology():
    rows = _frontier()
    print("\ntopology frontier\n")
    print(format_table(rows))
    for property_name in _PROPERTIES:
        per = _by_topology(rows, property_name)
        assert set(TOPOLOGIES) <= set(per)
        assert "centralized" in per  # the baseline row anchors the frontier


@pytest.mark.benchmark(group="topology-frontier")
def test_topology_frontier_message_decomposition_is_consistent():
    rows = _frontier()
    # the centralized baseline counts observation deliveries, which have no
    # token/termination/digest split — only decentralized rows decompose
    for row in rows:
        if row["topology"] == "centralized":
            continue
        assert row["messages"] == pytest.approx(
            row["token_messages"]
            + row["termination_messages"]
            + row["digest_messages"]
        ), row


@pytest.mark.benchmark(group="topology-frontier")
def test_topology_frontier_shape():
    rows = _frontier()
    for property_name in _PROPERTIES:
        per = _by_topology(rows, property_name)
        base = per["round-robin-token"]
        # gossip pays a digest overhead (tokens still route directly, but
        # flooded termination arrives on a different schedule, so the token
        # count may drift slightly either way)
        assert per["gossip"]["digest_messages"] > 0
        # hop-by-hop tree relaying can only add token messages
        assert per["tree-aggregation"]["token_messages"] >= base["token_messages"]
        # every decentralized topology reaches the same conclusive verdicts
        declared = {per[name]["declared"] for name in TOPOLOGIES}
        assert len(declared) == 1, declared
