"""Benchmarks regenerating Figures 5.6, 5.7 and 5.8.

* Fig 5.6 — delay-time percentage per global view against the number of
  processes.
* Fig 5.7 — average number of delayed (queued) events against the number of
  processes: grows with the process count, and is markedly lower for the
  simple properties B and E.
* Fig 5.8 — memory overhead measured as the total number of global views
  created: grows with the process count and is lowest for B and E, highest
  for F.

All three figures come from the same monitored-workload sweep, which is
computed once per benchmark session (see ``conftest.monitoring_sweep``).
"""

import pytest

from conftest import series_of
from repro.experiments import format_table


@pytest.mark.benchmark(group="fig-5.6")
def test_fig_5_6_delay_time_percentage(benchmark, monitoring_sweep):
    rows = benchmark.pedantic(
        lambda: [
            {
                "property": r["property"],
                "processes": r["processes"],
                "delay_time_pct_per_view": r["delay_time_pct_per_view"],
            }
            for r in monitoring_sweep
        ],
        rounds=1,
        iterations=1,
    )
    print("\nFig 5.6 — delay time percentage per global view\n")
    print(format_table(rows))
    delay = series_of(rows, "delay_time_pct_per_view")
    # monitors always finish after the program: the delay metric is positive
    for name, values in delay.items():
        assert all(value >= 0.0 for value in values)
        assert any(value > 0.0 for value in values), f"no delay measured for {name}"


@pytest.mark.benchmark(group="fig-5.7")
def test_fig_5_7_delayed_events(benchmark, monitoring_sweep):
    rows = benchmark.pedantic(
        lambda: [
            {
                "property": r["property"],
                "processes": r["processes"],
                "delayed_events": r["delayed_events"],
            }
            for r in monitoring_sweep
        ],
        rounds=1,
        iterations=1,
    )
    print("\nFig 5.7 — delayed (queued) events\n")
    print(format_table(rows))
    delayed = series_of(rows, "delayed_events")
    for name in "ABCDEF":
        assert delayed[name][-1] >= delayed[name][0], (
            f"delayed events for {name} should grow with the number of processes"
        )
    # the simple properties queue fewer events than the complex ones
    assert sum(delayed["E"]) <= sum(delayed["D"])
    assert sum(delayed["B"]) <= sum(delayed["A"])


@pytest.mark.benchmark(group="fig-5.8")
def test_fig_5_8_memory_overhead(benchmark, monitoring_sweep):
    rows = benchmark.pedantic(
        lambda: [
            {
                "property": r["property"],
                "processes": r["processes"],
                "global_views": r["global_views"],
            }
            for r in monitoring_sweep
        ],
        rounds=1,
        iterations=1,
    )
    print("\nFig 5.8 — memory overhead (total global views created)\n")
    print(format_table(rows))
    views = series_of(rows, "global_views")
    for name in "ABCDEF":
        assert views[name][-1] >= views[name][0], (
            f"global views for {name} should grow with the number of processes"
        )
    totals = {name: sum(views[name]) for name in "ABCDEF"}
    # B and E (single outgoing transition) create the fewest views overall,
    # F (the richest automaton) the most among the G-properties
    assert min(totals, key=totals.get) in {"B", "E"}
    assert totals["F"] >= totals["A"]
