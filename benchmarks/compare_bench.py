"""Compare two sets of ``repro-bench/1`` BENCH_*.json documents.

CI runs this after the benchmarks-smoke job: the previous successful main
run's ``bench-json`` artifact is downloaded into one directory, the current
run's documents sit in another, and this script pairs them by file name,
compares every common timing and emits GitHub workflow annotations —
``::warning::`` for regressions at or above the threshold (default 10%),
``::notice::`` for comparable improvements.  It is equally usable locally::

    python benchmarks/compare_bench.py --previous prev/ --current .

Exit status is 0 unless ``--fail-threshold`` is given and some timing
regresses past it (CI keeps the comparison advisory; wall-clock noise on
shared runners makes a hard gate counterproductive).

The ``repro-bench/1`` document layout — including the ``backend`` /
``stream_transport`` tags distinguishing simulator timings from asyncio
streaming-runtime timings — is specified field by field in
``docs/benchmarks.md``.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from collections.abc import Iterable, Sequence

SCHEMA = "repro-bench/1"


def write_job_summary(markdown: str) -> None:
    """Append *markdown* to the GitHub job summary, when one is available.

    Outside GitHub Actions (``GITHUB_STEP_SUMMARY`` unset) this is a no-op,
    so the script behaves identically when run locally.
    """
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(markdown.rstrip() + "\n")
    except OSError as error:  # pragma: no cover - runner-environment failure
        print(f"cannot write job summary: {error}", file=sys.stderr)


def load_documents(directory: str) -> dict[str, dict]:
    """Map ``basename -> parsed document`` for every BENCH_*.json under *directory*."""
    documents: dict[str, dict] = {}
    paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    if not paths:
        # artifact directories sometimes nest the files one level down
        paths = sorted(
            glob.glob(os.path.join(directory, "**", "BENCH_*.json"), recursive=True)
        )
    for path in paths:
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"skipping {path}: {error}", file=sys.stderr)
            continue
        if document.get("schema") != SCHEMA:
            print(f"skipping {path}: not a {SCHEMA} document", file=sys.stderr)
            continue
        documents[os.path.basename(path)] = document
    return documents


def compare_timings(
    previous: dict, current: dict
) -> list[tuple[str, float, float, float]]:
    """``(name, old_value, new_value, ratio)`` for every common measurement.

    ``ratio`` is always a *regression factor* (``>= 1 + threshold`` means
    regression, whatever the unit): ``new/old`` for wall-clock ``seconds``
    entries, the inverted ``old/new`` for throughput entries — timings
    that carry an ``events_per_sec`` field (higher is better) are compared
    on that field too, as a second ``<name>:events_per_sec`` row — and
    ``new/old`` for the topology-frontier fields
    (``topology_messages_total``, ``topology_verdict_latency``) and the
    fleet tail-latency field (``fleet_verdict_latency_p99``), where lower
    is better, so a topology drifting along either axis of the
    message/latency frontier — or a fleet's p99 verdict latency creeping
    up — annotates like a slowdown.
    """
    rows = []
    old_timings = previous.get("timings", {})
    new_timings = current.get("timings", {})
    for name in sorted(set(old_timings) & set(new_timings)):
        old_seconds = float(old_timings[name].get("seconds") or 0.0)
        new_seconds = float(new_timings[name].get("seconds") or 0.0)
        if old_seconds > 0.0 and new_seconds > 0.0:
            rows.append((name, old_seconds, new_seconds, new_seconds / old_seconds))
        old_rate = float(old_timings[name].get("events_per_sec") or 0.0)
        new_rate = float(new_timings[name].get("events_per_sec") or 0.0)
        if old_rate > 0.0 and new_rate > 0.0:
            rows.append(
                (f"{name}:events_per_sec", old_rate, new_rate, old_rate / new_rate)
            )
        for field in (
            "topology_messages_total",
            "topology_verdict_latency",
            "fleet_verdict_latency_p99",
        ):
            old_value = float(old_timings[name].get(field) or 0.0)
            new_value = float(new_timings[name].get(field) or 0.0)
            if old_value > 0.0 and new_value > 0.0:
                rows.append(
                    (f"{name}:{field}", old_value, new_value, new_value / old_value)
                )
    return rows


def annotate(
    file_name: str,
    rows: Iterable[tuple[str, float, float, float]],
    warn_threshold: float,
    github: bool,
) -> list[str]:
    """Print the comparison table; return the names that regressed."""
    regressions = []
    print(f"== {file_name}")
    print(f"{'timing':45} {'prev':>11} {'curr':>11} {'slowdown':>9}")
    for name, old_value, new_value, ratio in rows:
        # rate rows (":events_per_sec") already carry an inverted ratio, so
        # the delta below uniformly reads "percent worse"
        if name.endswith(":events_per_sec"):
            unit = "ev/s"
        elif name.endswith(":topology_messages_total"):
            unit = "msgs"
        elif name.endswith(":topology_verdict_latency"):
            unit = "vt"  # virtual-time units of the simulator clock
        elif name.endswith(":fleet_verdict_latency_p99"):
            unit = "s"
        else:
            unit = "s"
        if unit in ("ev/s", "msgs"):
            old_text, new_text = f"{old_value:,.0f}", f"{new_value:,.0f}"
        else:
            old_text, new_text = f"{old_value:.3f}", f"{new_value:.3f}"
        delta = (ratio - 1.0) * 100.0
        marker = ""
        if ratio >= 1.0 + warn_threshold:
            marker = "  << regression"
            regressions.append(name)
            if github:
                print(
                    f"::warning title=benchmark regression::{name} "
                    f"({file_name}): {old_text}{unit} -> {new_text}{unit} "
                    f"(+{delta:.1f}%, threshold {warn_threshold * 100:.0f}%)"
                )
        elif ratio <= 1.0 - warn_threshold and github:
            print(
                f"::notice title=benchmark improvement::{name} "
                f"({file_name}): {old_text}{unit} -> {new_text}{unit} "
                f"({delta:.1f}%)"
            )
        print(f"{name:45} {old_text:>11} {new_text:>11} {delta:+8.1f}%{marker}")
    return regressions


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--previous", required=True, help="directory with the baseline BENCH_*.json"
    )
    parser.add_argument(
        "--current", required=True, help="directory with the current BENCH_*.json"
    )
    parser.add_argument(
        "--warn-threshold",
        type=float,
        default=0.10,
        help="relative slowdown that triggers a warning (default: 0.10 = 10%%)",
    )
    parser.add_argument(
        "--fail-threshold",
        type=float,
        default=None,
        help="relative slowdown that fails the run (default: never fail)",
    )
    parser.add_argument(
        "--no-github",
        action="store_true",
        help="plain output without ::warning:: / ::notice:: annotations",
    )
    args = parser.parse_args(argv)

    previous_documents = load_documents(args.previous)
    current_documents = load_documents(args.current)
    if not previous_documents:
        # Make the absent baseline impossible to miss: an explicit notice in
        # the job log *and* the job summary, rather than silently passing.
        message = (
            f"no benchmark baseline: no {SCHEMA} documents under "
            f"{args.previous!r} (first run on this branch, expired artifact "
            f"retention, or a fork without artifact access) — regression "
            f"comparison skipped"
        )
        if not args.no_github:
            print(f"::notice title=benchmark baseline missing::{message}")
        print(message)
        write_job_summary(
            "### Benchmark comparison\n\n"
            f":warning: **No baseline available.** {message}.\n"
        )
        return 0
    if not current_documents:
        message = f"no current documents under {args.current}; nothing to compare"
        print(message)
        write_job_summary(f"### Benchmark comparison\n\n{message}\n")
        return 0

    worst_ratio = 1.0
    compared = 0
    for file_name in sorted(set(previous_documents) & set(current_documents)):
        rows = compare_timings(previous_documents[file_name], current_documents[file_name])
        if not rows:
            continue
        compared += len(rows)
        annotate(file_name, rows, args.warn_threshold, github=not args.no_github)
        worst_ratio = max(worst_ratio, max(ratio for *_, ratio in rows))
        print()
    missing = sorted(set(current_documents) - set(previous_documents))
    if missing:
        print(f"(no baseline yet for: {', '.join(missing)})")
    print(f"compared {compared} timings; worst ratio {worst_ratio:.2f}x")
    write_job_summary(
        "### Benchmark comparison\n\n"
        f"Compared **{compared}** timings against the previous main "
        f"baseline; worst ratio **{worst_ratio:.2f}x** "
        f"(warn threshold {args.warn_threshold * 100:.0f}%)."
        + (f"\n\nNo baseline yet for: {', '.join(missing)}." if missing else "")
        + "\n"
    )
    if args.fail_threshold is not None and worst_ratio >= 1.0 + args.fail_threshold:
        print(f"failing: worst ratio exceeds {1.0 + args.fail_threshold:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
