"""Benchmarks regenerating Figures 5.4 and 5.5: monitoring message overhead.

The paper plots, on a log scale, the total number of program events and the
total number of monitoring messages against the number of processes, for
properties A–C (Fig 5.4) and D–F (Fig 5.5), with Commμ = Evtμ = 3 s and
σ = 1 s.  The headline findings reproduced here:

* message counts grow with the number of processes and events for every
  property;
* the single-outgoing-transition properties B and E need far fewer messages
  than the multi-transition properties (the paper calls their growth
  sub-linear in the number of events).
"""

import pytest

from conftest import BENCH_SCALE, series_of
from repro.experiments import format_table, run_fig_5_4_5_5


@pytest.mark.benchmark(group="fig-5.4")
def test_fig_5_4_messages_properties_abc(benchmark):
    rows = benchmark.pedantic(
        run_fig_5_4_5_5, args=(("A", "B", "C"),), kwargs={"scale": BENCH_SCALE},
        rounds=1, iterations=1,
    )
    print("\nFig 5.4 — messages overhead, properties A-C\n")
    print(format_table(rows, columns=["property", "processes", "events",
                                      "messages", "log_events", "log_messages"]))
    messages = series_of(rows, "messages")
    for name in ("A", "B", "C"):
        assert messages[name][-1] >= messages[name][0], (
            f"messages for {name} should grow with the number of processes"
        )
    # B (one outgoing transition) is by far the cheapest of the three overall
    assert sum(messages["B"]) <= sum(messages["A"])
    assert sum(messages["B"]) <= sum(messages["C"])


@pytest.mark.benchmark(group="fig-5.5")
def test_fig_5_5_messages_properties_def(benchmark, monitoring_sweep):
    rows = benchmark.pedantic(
        lambda: [r for r in monitoring_sweep if r["property"] in ("D", "E", "F")],
        rounds=1, iterations=1,
    )
    print("\nFig 5.5 — messages overhead, properties D-F\n")
    print(format_table(rows, columns=["property", "processes", "events",
                                      "messages", "log_events", "log_messages"]))
    messages = series_of(rows, "messages")
    for name in ("D", "E", "F"):
        assert messages[name][-1] >= messages[name][0]
    # E (one outgoing transition) is by far the cheapest of the three overall
    assert sum(messages["E"]) <= sum(messages["D"])
    assert sum(messages["E"]) <= sum(messages["F"])
