"""Benchmarks for the scenario engine: degraded conditions end-to-end.

The paper's evaluation ran one fixed condition (reliable WiFi, designed
traces); the scenario engine opens the sweep to degraded networks and skewed
workloads.  This file times a representative subset at the shared bench
scale and checks the qualitative expectations of each condition:

* ``lossy-retransmit`` — same verdict work as the baseline, plus a non-zero
  retransmission overhead;
* ``partition-heal`` — cross-group monitor messages are held while the
  partition is open;
* ``bursty-comm`` — comm-heavy workload bursts mean more program messages
  and therefore more monitoring traffic than the baseline;
* ``hot-spot`` — hot-proposition skew multiplies the events of process 0.

Each timing is recorded into the session's ``BENCH_*.json`` under the
``scenarios`` group, tagged with the scenario name.
"""

import time

import pytest

from conftest import BENCH_SCALE, record_timing
from repro.api import run_scenario
from repro.experiments import format_table

#: restrict the bench sweeps to two properties so the whole file stays
#: well under the CI smoke budget while still crossing automaton shapes
_GRID_PROPERTIES = ("B", "D")

_COLUMNS = ["property", "processes", "events", "messages", "global_views",
            "delayed_events"]


#: one sweep per scenario per session — the paper-default baseline is shared
#: by several tests, so cache rows and record each timing exactly once
_SWEEP_CACHE: dict = {}


def _run(name: str):
    from repro.scenarios import SweepGrid

    if name in _SWEEP_CACHE:
        return _SWEEP_CACHE[name]
    start = time.perf_counter()
    rows = run_scenario(name, BENCH_SCALE, grid=SweepGrid(properties=_GRID_PROPERTIES))
    seconds = time.perf_counter() - start
    record_timing(
        f"scenario_{name}", seconds, group="scenarios", scenario=name,
        properties=list(_GRID_PROPERTIES),
    )
    _SWEEP_CACHE[name] = rows
    return rows


@pytest.mark.benchmark(group="scenarios")
def test_scenario_lossy_retransmit_end_to_end():
    baseline = _run("paper-default")
    lossy = _run("lossy-retransmit")
    print("\nlossy-retransmit scenario\n")
    print(format_table(lossy, columns=_COLUMNS + ["retransmissions"]))
    assert all(row["retransmissions"] > 0 for row in lossy)
    # retransmission delays messages; verdict-bearing work must still happen
    for base_row, lossy_row in zip(baseline, lossy):
        assert lossy_row["events"] == base_row["events"]
        assert lossy_row["global_views"] >= 2


@pytest.mark.benchmark(group="scenarios")
def test_scenario_partition_heal_end_to_end():
    rows = _run("partition-heal")
    print("\npartition-heal scenario\n")
    print(format_table(rows, columns=_COLUMNS + ["held_messages"]))
    # the default window (2s..8s) overlaps every trace at this scale, so
    # some cross-group monitor messages must have been held back
    assert any(row["held_messages"] > 0 for row in rows)


@pytest.mark.benchmark(group="scenarios")
def test_scenario_bursty_comm_heavier_than_baseline():
    baseline = _run("paper-default")
    bursty = _run("bursty-comm")
    print("\nbursty-comm scenario\n")
    print(format_table(bursty, columns=_COLUMNS + ["bursts_used"]))
    base_events = sum(row["events"] for row in baseline)
    bursty_events = sum(row["events"] for row in bursty)
    assert bursty_events > base_events  # burst rounds add receive events


@pytest.mark.benchmark(group="scenarios")
def test_scenario_hot_spot_skews_events():
    baseline = _run("paper-default")
    hot = _run("hot-spot")
    print("\nhot-spot scenario\n")
    print(format_table(hot, columns=_COLUMNS))
    assert sum(row["events"] for row in hot) > sum(
        row["events"] for row in baseline
    )
