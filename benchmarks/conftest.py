"""Shared fixtures for the benchmark suite.

The simulated monitoring sweep behind Figures 5.4–5.8 is the expensive part
of the evaluation; it is computed once per session (for a reduced but
representative scale) and shared by the per-figure benchmarks, which then
time their own aggregation and check the qualitative shapes reported in the
paper.  ``EXPERIMENTS.md`` documents a full-scale run.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentScale, run_fig_5_4_5_5

#: Reduced scale used by the benchmark suite: three process counts, two
#: replications, short traces.  Large enough to exhibit the paper's trends,
#: small enough to run in a couple of minutes.
BENCH_SCALE = ExperimentScale(
    process_counts=(2, 3, 4),
    events_per_process=6,
    replications=2,
    max_views_per_state=2,
)


@pytest.fixture(scope="session")
def monitoring_sweep():
    """The (property, process-count) metric sweep shared by Figures 5.4–5.8."""
    return run_fig_5_4_5_5(scale=BENCH_SCALE)


def series_of(rows, metric):
    """Turn sweep rows into ``{property: [values by process count]}``."""
    series = {}
    for row in rows:
        series.setdefault(row["property"], []).append(row[metric])
    return series
