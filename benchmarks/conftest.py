"""Shared fixtures for the benchmark suite.

The simulated monitoring sweep behind Figures 5.4–5.8 is the expensive part
of the evaluation; it is computed once per session (for a reduced but
representative scale) and shared by the per-figure benchmarks, which then
time their own aggregation and check the qualitative shapes reported in the
paper.  ``README.md`` documents how to raise the scale to a paper-size run.

At the end of the session a machine-readable ``BENCH_*.json`` document
(schema ``repro-bench/1``, see :mod:`repro.experiments.benchjson`) is
written, combining the explicit kernel hot-path timings recorded by
``test_kernel_hotpaths.py`` with the per-test wall-clock numbers collected
by ``pytest-benchmark``.  CI uploads the file as an artifact so kernel
speedups are tracked across PRs; override the location with the
``BENCH_JSON`` environment variable.

Setting ``REPRO_BENCH_SMOKE=1`` shrinks the suite to its smallest scale
(used by the CI ``benchmarks-smoke`` job, which runs under a wall-clock
budget).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentScale, run_fig_5_4_5_5

#: Reduced scale used by the benchmark suite: three process counts, two
#: replications, short traces.  Large enough to exhibit the paper's trends,
#: small enough to run in a couple of minutes.  The smoke scale (CI's
#: benchmarks-smoke job) cuts the traces and replications further.
if os.environ.get("REPRO_BENCH_SMOKE"):
    BENCH_SCALE = ExperimentScale(
        process_counts=(2, 3, 4),
        events_per_process=4,
        replications=1,
        max_views_per_state=2,
    )
else:
    BENCH_SCALE = ExperimentScale(
        process_counts=(2, 3, 4),
        events_per_process=6,
        replications=2,
        max_views_per_state=2,
    )

#: Timing records contributed by the benchmark tests themselves
#: (name -> {"seconds": ..., "group": ..., ...}); merged into the emitted
#: JSON document at session finish.
_TIMING_RECORDS: dict[str, dict[str, object]] = {}

#: pytest-benchmark entries superseded by an explicit record (the explicit
#: wall-clock number is authoritative; keeping both would double-report the
#: same measurement under two names).
_HARVEST_EXCLUDE: set = set()


def record_timing(
    name: str,
    seconds: float,
    group: str = "kernel",
    replaces: str = "",
    **extra,
) -> None:
    """Record one wall-clock timing for the session's BENCH_*.json.

    ``replaces`` names the pytest-benchmark test whose harvested entry this
    record supersedes, so the same measurement is not emitted twice.
    """
    _TIMING_RECORDS[name] = {"seconds": seconds, "group": group, **extra}
    if replaces:
        _HARVEST_EXCLUDE.add(replaces)


@pytest.fixture(scope="session")
def monitoring_sweep():
    """The (property, process-count) metric sweep shared by Figures 5.4–5.8."""
    return run_fig_5_4_5_5(scale=BENCH_SCALE)


def series_of(rows, metric):
    """Turn sweep rows into ``{property: [values by process count]}``."""
    series = {}
    for row in rows:
        series.setdefault(row["property"], []).append(row[metric])
    return series


def _harvest_pytest_benchmarks(session) -> dict[str, dict[str, object]]:
    """Pull per-test means out of pytest-benchmark's session, if present."""
    harvested: dict[str, dict[str, object]] = {}
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return harvested
    for bench in getattr(bench_session, "benchmarks", ()):
        if getattr(bench, "name", None) in _HARVEST_EXCLUDE:
            continue
        stats = getattr(bench, "stats", None)
        if stats is not None and not hasattr(stats, "mean"):
            stats = getattr(stats, "stats", None)  # older Metadata wrapping
        if stats is None:
            continue
        try:
            harvested[bench.name] = {
                "seconds": float(stats.mean),
                "min_seconds": float(stats.min),
                "rounds": int(stats.rounds),
                "group": getattr(bench, "group", None) or "ungrouped",
            }
        except (AttributeError, TypeError, ValueError):
            continue
    return harvested


def pytest_sessionfinish(session, exitstatus):
    """Emit the machine-readable BENCH_*.json artifact for this session."""
    timings = _harvest_pytest_benchmarks(session)
    timings.update(_TIMING_RECORDS)  # explicit records win over raw harvest
    if not timings:
        return
    try:
        from repro.experiments.benchjson import write_bench_json
        from repro.scenarios import get_scenario
    except ImportError:  # pragma: no cover - repro not importable
        return
    # embed the metadata of every scenario the timings reference, so the
    # document stays self-describing (the figure benchmarks run paper-default)
    names = {"paper-default"}
    names.update(
        record["scenario"]
        for record in timings.values()
        if isinstance(record, dict) and isinstance(record.get("scenario"), str)
    )
    scenarios = {}
    for name in sorted(names):
        try:
            scenarios[name] = get_scenario(name).describe()
        except KeyError:  # pragma: no cover - stale tag in a timing record
            pass
    path = os.environ.get(
        "BENCH_JSON",
        os.path.join(os.path.dirname(__file__), "BENCH_results.json"),
    )
    try:
        write_bench_json(path, timings, BENCH_SCALE, scenarios=scenarios)
    except OSError as error:  # pragma: no cover - read-only checkout etc.
        print(f"\n[benchmarks] could not write {path}: {error}")
    else:
        print(f"\n[benchmarks] wrote {path}")
