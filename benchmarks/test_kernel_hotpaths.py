"""Benchmarks for the two kernel hot paths of the LTL monitoring stack.

These are the acceptance metrics tracked across PRs through the emitted
``BENCH_*.json`` artifact (see ``conftest.py``):

* ``build_progression_machine`` — the full case-study automaton sweep
  (properties A–F at 2–5 processes).  The hash-consed AST with memoized
  progression makes canonicalisation and ``progress(φ, letter)`` one-time
  costs per distinct formula instead of per transition.
* ``run_monitoring_experiment`` — one representative simulated monitoring
  point (property C, 4 processes) at the default :class:`ExperimentScale`.

The recorded wall-clock numbers land in the JSON document next to the fixed
seed baseline (:data:`repro.experiments.benchjson.SEED_BASELINE_SECONDS`),
so the speedup factor is directly computable from the artifact alone.
"""

import time

import pytest

from conftest import record_timing
from repro.experiments import DEFAULT_SCALE, run_monitoring_experiment
from repro.experiments.benchjson import SEED_BASELINE_SECONDS
from repro.experiments.properties import PROPERTY_NAMES, property_formula
from repro.ltl import parse
from repro.ltl.progression import build_progression_machine


@pytest.mark.benchmark(group="kernel")
def test_build_progression_machine_sweep(benchmark):
    def sweep():
        machines = []
        for name in PROPERTY_NAMES:
            for n in (2, 3, 4, 5):
                machine, _ = build_progression_machine(parse(property_formula(name, n)))
                machines.append(machine)
        return machines

    start = time.perf_counter()
    machines = benchmark.pedantic(sweep, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    record_timing(
        "build_progression_machine",
        elapsed,
        group="kernel",
        replaces="test_build_progression_machine_sweep",
        machines=len(machines),
        seed_seconds=SEED_BASELINE_SECONDS["build_progression_machine"],
    )
    assert len(machines) == len(PROPERTY_NAMES) * 4
    # every machine is non-trivial and fully defined over its alphabet
    for machine in machines:
        assert machine.num_states >= 2
        assert all(len(row) == len(machine.letters) for row in machine.delta)


@pytest.mark.benchmark(group="kernel")
def test_run_monitoring_experiment_default_scale(benchmark):
    start = time.perf_counter()
    row = benchmark.pedantic(
        run_monitoring_experiment,
        args=("C", 4),
        kwargs={"scale": DEFAULT_SCALE},
        rounds=1,
        iterations=1,
    )
    elapsed = time.perf_counter() - start
    record_timing(
        "run_monitoring_experiment",
        elapsed,
        group="kernel",
        replaces="test_run_monitoring_experiment_default_scale",
        property="C",
        processes=4,
        replications=DEFAULT_SCALE.replications,
        workers=DEFAULT_SCALE.workers,
        seed_seconds=SEED_BASELINE_SECONDS["run_monitoring_experiment"],
    )
    assert row["property"] == "C"
    assert row["processes"] == 4
    assert row["events"] > 0
    assert row["messages"] > 0
