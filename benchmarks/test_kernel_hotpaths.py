"""Benchmarks for the kernel hot paths of the LTL monitoring stack.

These are the acceptance metrics tracked across PRs through the emitted
``BENCH_*.json`` artifact (see ``conftest.py``):

* ``build_progression_machine`` — the full case-study automaton sweep
  (properties A–F at 2–5 processes).  The hash-consed AST with memoized
  progression makes canonicalisation and ``progress(φ, letter)`` one-time
  costs per distinct formula instead of per transition.
* ``run_monitoring_experiment`` — one representative simulated monitoring
  point (property C, 4 processes) at the default :class:`ExperimentScale`.
* ``compiled_step_throughput`` / ``interpreted_step_throughput`` — the
  per-event inner loop (combine the per-process letters, step the Moore
  machine) through the bitmask table kernel of
  :mod:`repro.ltl.compiled` vs the interpreted frozenset path.  Both
  records carry an ``events_per_sec`` field (higher is better;
  ``compare_bench.py`` inverts the regression direction for it).
* ``box_bfs_events_per_sec`` — the box-reachability BFS over a fully
  concurrent box, compiled vs interpreted, as hit by token returns.
* ``monitoring_end_to_end_compiled`` / ``_interpreted`` — one full sweep
  cell with the kernel flag on and off; the cell metrics must be
  byte-identical, only the wall clock may differ.

The recorded wall-clock numbers land in the JSON document next to the fixed
seed baseline (:data:`repro.experiments.benchjson.SEED_BASELINE_SECONDS`),
so the speedup factor is directly computable from the artifact alone.
"""

import os
import random
import time

import pytest

from conftest import record_timing
from repro.api import ExecutionConfig
from repro.core.global_view import GlobalView
from repro.core.messages import TokenEntry
from repro.core.monitor import DecentralizedMonitor
from repro.core.transport import LoopbackNetwork
from repro.experiments import DEFAULT_SCALE, run_monitoring_experiment
from repro.experiments.benchjson import SEED_BASELINE_SECONDS
from repro.experiments.engine import run_scenario_cell
from repro.experiments.properties import (
    PROPERTY_NAMES,
    case_study_monitor,
    case_study_registry,
    property_formula,
)
from repro.ltl import parse
from repro.ltl.progression import build_progression_machine
from repro.scenarios import GridPoint, get_scenario

_SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))


@pytest.mark.benchmark(group="kernel")
def test_build_progression_machine_sweep(benchmark):
    def sweep():
        machines = []
        for name in PROPERTY_NAMES:
            for n in (2, 3, 4, 5):
                machine, _ = build_progression_machine(parse(property_formula(name, n)))
                machines.append(machine)
        return machines

    start = time.perf_counter()
    machines = benchmark.pedantic(sweep, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    record_timing(
        "build_progression_machine",
        elapsed,
        group="kernel",
        replaces="test_build_progression_machine_sweep",
        machines=len(machines),
        seed_seconds=SEED_BASELINE_SECONDS["build_progression_machine"],
    )
    assert len(machines) == len(PROPERTY_NAMES) * 4
    # every machine is non-trivial and fully defined over its alphabet
    for machine in machines:
        assert machine.num_states >= 2
        assert all(len(row) == len(machine.letters) for row in machine.delta)


@pytest.mark.benchmark(group="kernel")
def test_run_monitoring_experiment_default_scale(benchmark):
    start = time.perf_counter()
    row = benchmark.pedantic(
        run_monitoring_experiment,
        args=("C", 4),
        kwargs={"scale": DEFAULT_SCALE},
        rounds=1,
        iterations=1,
    )
    elapsed = time.perf_counter() - start
    record_timing(
        "run_monitoring_experiment",
        elapsed,
        group="kernel",
        replaces="test_run_monitoring_experiment_default_scale",
        property="C",
        processes=4,
        replications=DEFAULT_SCALE.replications,
        workers=DEFAULT_SCALE.workers,
        seed_seconds=SEED_BASELINE_SECONDS["run_monitoring_experiment"],
    )
    assert row["property"] == "C"
    assert row["processes"] == 4
    assert row["events"] > 0
    assert row["messages"] > 0


def _per_process_letters(num_processes, num_events, seed=2015):
    """Random per-process letters over the case-study propositions."""
    rng = random.Random(seed)
    columns = []
    for j in range(num_processes):
        atoms = (f"P{j}.p", f"P{j}.q")
        columns.append(
            [
                frozenset(a for a in atoms if rng.random() < 0.5)
                for _ in range(num_events)
            ]
        )
    return columns


@pytest.mark.benchmark(group="compiled-kernel")
def test_compiled_vs_interpreted_step_throughput():
    """The single-monitor inner loop: combine per-process letters, step.

    Both sides do the full per-event work of
    :meth:`repro.core.monitor.DecentralizedMonitor._step_combined`: the
    interpreted path unions the frozensets and steps through the letter
    index, the compiled path ORs the (cache-hit) bitmasks in
    ``combine_batch`` and walks the dense table in ``run_batch``.
    """
    num_events = 20_000 if _SMOKE else 200_000
    automaton = case_study_monitor("C", 3)
    compiled = automaton.compiled
    assert compiled is not None
    columns = _per_process_letters(3, num_events)

    def interpreted_pass():
        state = automaton.initial_state
        step = automaton.step
        for letters in zip(*columns):
            letter = frozenset().union(*letters)
            state = step(state, letter)
        return state

    # the letter -> mask encoding is a bounded-cache dict hit in production
    # (DecentralizedMonitor._mask_of), amortised per distinct letter
    rows = [compiled.encode_many(column) for column in columns]

    def compiled_pass():
        masks = compiled.combine_batch(rows)
        state, _ = compiled.run_batch(compiled.initial, masks)
        return state

    def best_of(fn, rounds=3):
        best, result = float("inf"), None
        for _ in range(rounds):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        return best, result

    interpreted_elapsed, interpreted_state = best_of(interpreted_pass)
    compiled_elapsed, compiled_state = best_of(compiled_pass)

    assert compiled_state == interpreted_state
    record_timing(
        "interpreted_step_throughput",
        interpreted_elapsed,
        group="compiled-kernel",
        events=num_events,
        events_per_sec=num_events / interpreted_elapsed,
    )
    record_timing(
        "compiled_step_throughput",
        compiled_elapsed,
        group="compiled-kernel",
        events=num_events,
        events_per_sec=num_events / compiled_elapsed,
        speedup_vs_interpreted=interpreted_elapsed / compiled_elapsed,
    )
    # weak sanity floor; the tracked artifact shows the real factor (>=10x
    # with numpy on the case-study formulas)
    assert compiled_elapsed < interpreted_elapsed / 2


def _fully_concurrent_box(monitor, automaton, registry, side):
    """A view plus token entry spanning a fully concurrent ``side``³ box."""
    n = monitor.num_processes
    initial_letters = [registry.local_letter(j, {}) for j in range(n)]
    view = GlobalView(
        cut=[0] * n, state=automaton.initial_state, letters=initial_letters
    )
    entry = TokenEntry(
        transition_id=0,
        guard={},
        conjuncts=[{} for _ in range(n)],
        start_cut=[0] * n,
        cut=[side] * n,
        depend=[0] * n,
        min_positions=[0] * n,
        satisfied=[True] * n,
    )
    columns = _per_process_letters(n, side, seed=7)
    for j in range(n):
        for sn in range(1, side + 1):
            vc = tuple(sn if k == j else 0 for k in range(n))
            entry.record_scan(j, sn, columns[j][sn - 1], vc)
    return view, entry


@pytest.mark.benchmark(group="compiled-kernel")
def test_box_bfs_events_per_sec():
    """Box reachability (the token-return hot path) compiled vs interpreted.

    A fully concurrent box maximises the consistent cells the BFS must
    expand, so this isolates the per-cell combine+step cost.  The recorded
    unit is cells expanded per second (``events_per_sec``, higher better).
    """
    side = 8 if _SMOKE else 16
    iterations = 2 if _SMOKE else 3
    n = 3
    cells = (side + 1) ** n
    automaton = case_study_monitor("C", n)
    registry = case_study_registry(n)
    results = {}
    for label, flag in (("compiled", True), ("interpreted", False)):
        monitor = DecentralizedMonitor(
            process=0,
            num_processes=n,
            automaton=automaton,
            registry=registry,
            initial_letters=[registry.local_letter(j, {}) for j in range(n)],
            transport=LoopbackNetwork(),
            use_compiled_kernel=flag,
        )
        view, entry = _fully_concurrent_box(monitor, automaton, registry, side)
        start = time.perf_counter()
        for _ in range(iterations):
            reachable, letters = monitor._box_reachable(view, entry)
        elapsed = time.perf_counter() - start
        results[label] = (reachable, letters, monitor.declared_verdicts, elapsed)
    assert results["compiled"][0] == results["interpreted"][0]
    assert results["compiled"][1] == results["interpreted"][1]
    assert results["compiled"][2] == results["interpreted"][2]
    for label in ("compiled", "interpreted"):
        elapsed = results[label][3]
        record_timing(
            f"box_bfs_{label}",
            elapsed,
            group="compiled-kernel",
            cells=cells * iterations,
            events_per_sec=cells * iterations / elapsed,
        )


@pytest.mark.benchmark(group="compiled-kernel")
def test_monitoring_end_to_end_compiled_vs_interpreted():
    """One full sweep cell with the kernel flag on and off.

    The cell metrics must be byte-identical (the kernel is semantics
    preserving); only wall clock differs, and both are tracked.
    """
    from conftest import BENCH_SCALE

    scenario = get_scenario("paper-default")
    point = GridPoint("C", 3)
    cells = {}
    for label, flag in (("compiled", True), ("interpreted", False)):
        start = time.perf_counter()
        cell = run_scenario_cell(
            scenario,
            point,
            BENCH_SCALE,
            seed=2015,
            config=ExecutionConfig(compiled_kernel=flag),
        )
        elapsed = time.perf_counter() - start
        cells[label] = cell
        record_timing(
            f"monitoring_end_to_end_{label}",
            elapsed,
            group="compiled-kernel",
            scenario="paper-default",
            property="C",
            processes=3,
            events=cell["events"],
            events_per_sec=cell["events"] / elapsed,
        )
    assert cells["compiled"] == cells["interpreted"]
