"""Benchmark regenerating Table 5.1: transitions per monitor automaton.

Paper reference (Table 5.1, selected rows, total/outgoing/self-loops):

=========  =====  =========  =========  =========
Property   n=2    n=3        n=4        n=5
=========  =====  =========  =========  =========
A          7/4/3  11/7/4     15/11/4    21/16/5
B          4/1/3  5/4/1*     6/1/5      7/1/7
C          7/4/3  11/7/4     15/11/4    19/13/6
D          15/11/4  27/22/5  43/35/7    63/56/7
E          6/1/5  8/1/7      10/1/9     12/1/11
F          31/23/8  49/37/12  67/51/16  85/65/20
=========  =====  =========  =========  =========

(*) B at n=3 is reported as 5/4/1 in the paper, almost certainly a typo for
5/1/4 — every other B/E row has exactly one outgoing transition.  B at n=5
is reported as 7 total / 1 outgoing / 7 self-loops, which is internally
inconsistent (1 + 7 != 7); this reproduction measures the self-consistent
7/1/6, so that row is checked for shape only.

The benchmark asserts the rows this reproduction matches exactly and the
qualitative orderings (D and F largest, B and E smallest, counts grow with
the number of processes) everywhere else; the measured table is printed so
it can be compared side by side with the paper.
"""

import pytest

from repro.experiments import format_table, run_table_5_1

PAPER_EXACT = {
    ("A", 2): (7, 4, 3),
    ("A", 3): (11, 7, 4),
    ("A", 4): (15, 11, 4),
    ("A", 5): (21, 16, 5),
    ("B", 2): (4, 1, 3),
    ("B", 4): (6, 1, 5),
    ("C", 2): (7, 4, 3),
    ("C", 3): (11, 7, 4),
    ("D", 2): (15, 11, 4),
    ("D", 3): (27, 22, 5),
    ("D", 5): (63, 56, 7),
    ("E", 2): (6, 1, 5),
    ("E", 3): (8, 1, 7),
    ("E", 4): (10, 1, 9),
    ("E", 5): (12, 1, 11),
}


@pytest.mark.benchmark(group="table-5.1")
def test_table_5_1_transition_counts(benchmark):
    rows = benchmark.pedantic(run_table_5_1, rounds=1, iterations=1)
    print("\nTable 5.1 — transitions per automaton (measured)\n")
    print(format_table(rows))

    by_key = {
        (row["property"], row["processes"]): (
            row["total"],
            row["outgoing"],
            row["self_loops"],
        )
        for row in rows
    }
    # exact matches with the paper
    for key, expected in PAPER_EXACT.items():
        assert by_key[key] == expected, f"{key}: {by_key[key]} != paper {expected}"

    # qualitative shape everywhere
    for n in (2, 3, 4, 5):
        totals = {name: by_key[(name, n)][0] for name in "ABCDEF"}
        assert totals["F"] == max(totals.values())
        assert min(totals, key=totals.get) in {"B", "E"}
    for name in "ABCDEF":
        per_n = [by_key[(name, n)][0] for n in (2, 3, 4, 5)]
        assert per_n == sorted(per_n), f"property {name} counts should grow with n"
