"""Benchmarks for the multi-tenant fleet: throughput and saturation counters.

One synthetic fleet per session runs to completion and its
:meth:`repro.fleet.engine.FleetReport.bench_timings` records land in the
session's ``BENCH_*.json`` under the ``fleet`` group:
``fleet_events_per_sec`` carries aggregate ingestion throughput in the
generic ``events_per_sec`` field (tracked as a higher-is-better rate row by
``benchmarks/compare_bench.py``) and ``fleet_verdict_latency`` carries the
lower-is-better ``fleet_verdict_latency_p99`` tail; both embed the full
saturation-counter block, so a BENCH diff shows tenant lifecycle drift
(evictions, drops, stalls) alongside the rate change.

The assertions pin the qualitative contract — every tenant completes, the
block policy stays lossless, the counters conserve events — rather than
absolute rates, which measure the runner, not the code.
"""

import os
import time

import pytest

from conftest import record_timing
from repro.fleet import FleetConfig, run_fleet, synthetic_fleet

#: smoke scale (CI wall-clock budget) vs. the default local scale
if os.environ.get("REPRO_BENCH_SMOKE"):
    _NUM_TENANTS = 40
    _EVENTS_PER_PROCESS = 3
else:
    _NUM_TENANTS = 200
    _EVENTS_PER_PROCESS = 4

_NUM_PROCESSES = 3

#: one fleet run per session, shared by every test in the file
_REPORT_CACHE: list = []


def _report():
    if _REPORT_CACHE:
        return _REPORT_CACHE[0]
    tenants = synthetic_fleet(
        _NUM_TENANTS,
        num_processes=_NUM_PROCESSES,
        events_per_process=_EVENTS_PER_PROCESS,
    )
    start = time.perf_counter()
    report = run_fleet(FleetConfig(tenants=tenants))
    seconds = time.perf_counter() - start
    for name, timing in report.bench_timings().items():
        record_timing(name, float(timing.pop("seconds")), **timing)
    record_timing(
        "fleet_wall",
        seconds,
        group="fleet",
        backend="asyncio",
        fleet_tenants=_NUM_TENANTS,
    )
    _REPORT_CACHE.append(report)
    return report


@pytest.mark.benchmark(group="fleet")
def test_fleet_completes_every_tenant():
    report = _report()
    assert report.tenants_admitted == _NUM_TENANTS
    assert report.tenants_completed == _NUM_TENANTS
    assert report.tenants_evicted == 0
    assert report.tenants_active == 0


@pytest.mark.benchmark(group="fleet")
def test_fleet_throughput_is_measured():
    report = _report()
    assert report.wall_seconds > 0.0
    assert report.fleet_events_per_sec > 0.0
    # the workload adds communication events on top of the internal ones,
    # so the floor is the internal-event budget, the exact total the sum
    assert report.events_ingested == sum(r.events for r in report.results)
    assert (
        report.events_ingested
        >= _NUM_TENANTS * _NUM_PROCESSES * _EVENTS_PER_PROCESS
    )


@pytest.mark.benchmark(group="fleet")
def test_default_block_policy_is_lossless():
    report = _report()
    assert report.events_dropped == 0
    for result in report.results:
        assert result.ingested_events == result.events


@pytest.mark.benchmark(group="fleet")
def test_latency_percentiles_are_ordered():
    report = _report()
    assert 0.0 < report.verdict_latency_p50 <= report.verdict_latency_p99
    assert report.verdict_latency_p99 <= report.wall_seconds
