"""Legacy setup shim.

The environment ships setuptools without the ``wheel`` package, so PEP 660
editable installs (which require building a wheel) are unavailable offline.
This ``setup.py`` lets ``pip install -e .`` fall back to the legacy editable
install path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
