"""Legacy setup shim.

Some offline environments ship setuptools without the ``wheel`` package, so
PEP 660 editable installs (which require building a wheel) are unavailable.
This ``setup.py`` lets ``pip install -e .`` fall back to the legacy editable
install path.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
