"""A simulated asynchronous network for monitor-to-monitor messages.

Implements the :class:`repro.core.transport.Transport` protocol on top of the
discrete-event simulator: every message is delivered after a (possibly
random) latency, FIFO order is preserved per sender/receiver pair (reliable
FIFO channels, as assumed by the paper), and message counts are recorded for
the communication-overhead figures.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from .engine import Simulator

__all__ = ["SimulatedNetwork"]


class SimulatedNetwork:
    """Reliable FIFO message-passing network with configurable latency."""

    def __init__(
        self,
        simulator: Simulator,
        latency: float = 0.05,
        jitter: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        if latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be non-negative")
        self.simulator = simulator
        self.latency = latency
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._monitors: Dict[int, object] = {}
        #: earliest permissible delivery time per (sender, receiver) pair,
        #: enforcing FIFO order even with jittered latencies
        self._channel_clock: Dict[Tuple[int, int], float] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_by_sender: Dict[int, int] = {}
        self.last_delivery_time: float = 0.0

    def register(self, process: int, monitor: object) -> None:
        self._monitors[process] = monitor

    # ------------------------------------------------------------------
    def _sample_latency(self) -> float:
        if self.jitter <= 0:
            return self.latency
        return max(0.0, self._rng.gauss(self.latency, self.jitter))

    def send(self, sender: int, target: int, message: object) -> None:
        if target not in self._monitors:
            raise ValueError(f"no monitor registered for process {target}")
        self.messages_sent += 1
        self.messages_by_sender[sender] = self.messages_by_sender.get(sender, 0) + 1
        channel = (sender, target)
        earliest = self._channel_clock.get(channel, 0.0)
        delivery = max(self.simulator.now + self._sample_latency(), earliest)
        self._channel_clock[channel] = delivery

        def deliver(message=message, target=target, delivery=delivery) -> None:
            self.messages_delivered += 1
            self.last_delivery_time = max(self.last_delivery_time, delivery)
            self._monitors[target].receive_message(message)

        self.simulator.schedule_at(delivery, deliver)

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return self.messages_sent - self.messages_delivered
