"""Simulated asynchronous networks for monitor-to-monitor messages.

Implements the :class:`repro.core.transport.MonitorNetwork` protocol on top
of the discrete-event simulator: every message is delivered after a (possibly
random) latency, FIFO order is preserved per sender/receiver pair (reliable
FIFO channels, as assumed by the paper), and message counts are recorded for
the communication-overhead figures.

The latency semantics live in the backend-agnostic delay models of
:mod:`repro.core.delays` — the same models the asyncio streaming runtime
(:mod:`repro.runtime`) consumes, so a network condition means the same thing
on both backends.  :class:`SimulatedNetwork` is the reliable base behaviour;
the subclasses bind the degraded-condition models while *keeping delivery
reliable* (the paper's algorithm assumes reliable FIFO channels, so the
variants defer — never drop — messages):

* :class:`LossySimulatedNetwork` — each transmission attempt is lost with a
  fixed probability and retransmitted after a timeout (stop-and-wait), so a
  message's delivery is delayed by ``retransmissions × timeout``.
* :class:`PartitionedSimulatedNetwork` — processes are split into groups;
  while a partition window is open, cross-group messages are held and only
  delivered (healed) when the window closes.
* :class:`BurstySimulatedNetwork` — a duty-cycled medium that only flushes
  messages at periodic burst instants; messages sent between bursts wait for
  the next one.

All randomness comes from the delay model's seeded :class:`random.Random`,
so every variant is deterministic for a fixed seed.  FIFO clamping and
accounting stay in the base class; delay models never see ordering.
"""

from __future__ import annotations

from ..core.delays import (
    BurstyDelay,
    DelayModel,
    GaussianDelay,
    LossyRetransmitDelay,
    PartitionDelay,
)
from ..core.transport import MonitorNode
from .engine import Simulator

__all__ = [
    "SimulatedNetwork",
    "LossySimulatedNetwork",
    "PartitionedSimulatedNetwork",
    "BurstySimulatedNetwork",
]


class SimulatedNetwork:
    """Reliable FIFO message-passing network with configurable latency."""

    def __init__(
        self,
        simulator: Simulator,
        latency: float = 0.05,
        jitter: float = 0.0,
        seed: int | None = None,
        delay: DelayModel | None = None,
    ) -> None:
        self.simulator = simulator
        self.latency = latency
        self.jitter = jitter
        #: the backend-agnostic latency semantics; subclasses install the
        #: degraded-condition models of :mod:`repro.core.delays` here
        self.delay = delay if delay is not None else GaussianDelay(latency, jitter, seed)
        self._monitors: dict[int, MonitorNode] = {}
        #: earliest permissible delivery time per (sender, receiver) pair,
        #: enforcing FIFO order even with jittered latencies
        self._channel_clock: dict[tuple[int, int], float] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_by_sender: dict[int, int] = {}
        self.last_delivery_time: float = 0.0

    def register(self, process: int, monitor: MonitorNode) -> None:
        self._monitors[process] = monitor

    # ------------------------------------------------------------------
    def _delivery_time(self, sender: int, target: int) -> float:
        """Absolute arrival time of a message sent right now.

        Delegates to the shared :class:`repro.core.delays.DelayModel`; FIFO
        clamping per channel happens in :meth:`send` afterwards, so delay
        models never have to think about ordering.
        """
        return self.delay.delivery_time(self.simulator.now, sender, target)

    def extra_stats(self) -> dict[str, float]:
        """Behaviour-specific counters merged into the simulation report."""
        return self.delay.extra_stats()

    def send(self, sender: int, target: int, message: object) -> None:
        if target not in self._monitors:
            raise ValueError(f"no monitor registered for process {target}")
        self.messages_sent += 1
        self.messages_by_sender[sender] = self.messages_by_sender.get(sender, 0) + 1
        channel = (sender, target)
        earliest = self._channel_clock.get(channel, 0.0)
        delivery = max(self._delivery_time(sender, target), earliest)
        self._channel_clock[channel] = delivery

        def deliver(message=message, target=target, delivery=delivery) -> None:
            self.messages_delivered += 1
            self.last_delivery_time = max(self.last_delivery_time, delivery)
            self._monitors[target].receive_message(message)

        self.simulator.schedule_at(delivery, deliver)

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return self.messages_sent - self.messages_delivered


class LossySimulatedNetwork(SimulatedNetwork):
    """Lossy medium with stop-and-wait retransmission.

    Binds :class:`repro.core.delays.LossyRetransmitDelay`: each transmission
    attempt is dropped with ``loss_probability``; the sender retransmits
    after ``retransmit_timeout``.  ``max_retransmits`` bounds the retries so
    delivery stays guaranteed (the final attempt always goes through),
    matching the reliable-channel assumption while modelling the cost of
    loss as added delay and retransmission traffic.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: float = 0.05,
        jitter: float = 0.0,
        seed: int | None = None,
        loss_probability: float = 0.2,
        retransmit_timeout: float = 0.25,
        max_retransmits: int = 25,
    ) -> None:
        delay = LossyRetransmitDelay(
            latency=latency,
            jitter=jitter,
            seed=seed,
            loss_probability=loss_probability,
            retransmit_timeout=retransmit_timeout,
            max_retransmits=max_retransmits,
        )
        super().__init__(simulator, latency=latency, jitter=jitter, delay=delay)
        self.loss_probability = loss_probability
        self.retransmit_timeout = retransmit_timeout
        self.max_retransmits = max_retransmits

    @property
    def retransmissions(self) -> int:
        """Total retransmission attempts recorded by the delay model."""
        return self.delay.retransmissions


class PartitionedSimulatedNetwork(SimulatedNetwork):
    """Network that partitions into groups during configured windows.

    Binds :class:`repro.core.delays.PartitionDelay`: processes are assigned
    round-robin to ``num_groups`` groups (``process % num_groups``).  While a
    window ``(start, end)`` is open, messages *between different groups* are
    held and delivered only after the partition heals at ``end``; intra-group
    traffic is unaffected.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: float = 0.05,
        jitter: float = 0.0,
        seed: int | None = None,
        windows: tuple[tuple[float, float], ...] = ((2.0, 8.0),),
        num_groups: int = 2,
    ) -> None:
        delay = PartitionDelay(
            latency=latency,
            jitter=jitter,
            seed=seed,
            windows=windows,
            num_groups=num_groups,
        )
        super().__init__(simulator, latency=latency, jitter=jitter, delay=delay)
        self.windows = delay.windows
        self.num_groups = num_groups

    def group_of(self, process: int) -> int:
        """Partition group of *process* (round-robin assignment)."""
        return self.delay.group_of(process)

    @property
    def held_messages(self) -> int:
        """Cross-group messages held until a partition window healed."""
        return self.delay.held_messages


class BurstySimulatedNetwork(SimulatedNetwork):
    """Duty-cycled medium flushing messages only at periodic burst instants.

    Binds :class:`repro.core.delays.BurstyDelay`: a message sent at time
    ``t`` reaches the air interface after the base latency and is then
    delivered at the next multiple of ``period`` — the medium wakes up every
    ``period`` seconds and transmits everything queued since the previous
    burst.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: float = 0.01,
        jitter: float = 0.0,
        seed: int | None = None,
        period: float = 0.75,
    ) -> None:
        delay = BurstyDelay(latency=latency, jitter=jitter, seed=seed, period=period)
        super().__init__(simulator, latency=latency, jitter=jitter, delay=delay)
        self.period = period

    @property
    def bursts_used(self) -> int:
        """Number of burst instants the medium actually used."""
        return self.delay.bursts_used
