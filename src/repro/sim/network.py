"""Simulated asynchronous networks for monitor-to-monitor messages.

Implements the :class:`repro.core.transport.MonitorNetwork` protocol on top
of the discrete-event simulator: every message is delivered after a (possibly
random) latency, FIFO order is preserved per sender/receiver pair (reliable
FIFO channels, as assumed by the paper), and message counts are recorded for
the communication-overhead figures.

:class:`SimulatedNetwork` is the reliable base behaviour; the subclasses
model degraded conditions while *keeping delivery reliable* (the paper's
algorithm assumes reliable FIFO channels, so the variants defer — never
drop — messages):

* :class:`LossySimulatedNetwork` — each transmission attempt is lost with a
  fixed probability and retransmitted after a timeout (stop-and-wait), so a
  message's delivery is delayed by ``retransmissions × timeout``.
* :class:`PartitionedSimulatedNetwork` — processes are split into groups;
  while a partition window is open, cross-group messages are held and only
  delivered (healed) when the window closes.
* :class:`BurstySimulatedNetwork` — a duty-cycled medium that only flushes
  messages at periodic burst instants; messages sent between bursts wait for
  the next one.

All randomness comes from a seeded :class:`random.Random`, so every variant
is deterministic for a fixed seed.  Subclasses customise delivery through the
single :meth:`SimulatedNetwork._delivery_time` hook; FIFO clamping and
accounting stay in the base class.
"""

from __future__ import annotations

import math
import random

from .engine import Simulator

__all__ = [
    "SimulatedNetwork",
    "LossySimulatedNetwork",
    "PartitionedSimulatedNetwork",
    "BurstySimulatedNetwork",
]


class SimulatedNetwork:
    """Reliable FIFO message-passing network with configurable latency."""

    def __init__(
        self,
        simulator: Simulator,
        latency: float = 0.05,
        jitter: float = 0.0,
        seed: int | None = None,
    ) -> None:
        if latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be non-negative")
        self.simulator = simulator
        self.latency = latency
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._monitors: dict[int, object] = {}
        #: earliest permissible delivery time per (sender, receiver) pair,
        #: enforcing FIFO order even with jittered latencies
        self._channel_clock: dict[tuple[int, int], float] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_by_sender: dict[int, int] = {}
        self.last_delivery_time: float = 0.0

    def register(self, process: int, monitor: object) -> None:
        self._monitors[process] = monitor

    # ------------------------------------------------------------------
    def _sample_latency(self) -> float:
        if self.jitter <= 0:
            return self.latency
        return max(0.0, self._rng.gauss(self.latency, self.jitter))

    def _delivery_time(self, sender: int, target: int) -> float:
        """Absolute arrival time of a message sent right now.

        The single behaviour hook: subclasses model loss, partitions or duty
        cycling by deferring this instant.  FIFO clamping per channel happens
        in :meth:`send` afterwards, so hooks never have to think about
        ordering.
        """
        return self.simulator.now + self._sample_latency()

    def extra_stats(self) -> dict[str, float]:
        """Behaviour-specific counters merged into the simulation report."""
        return {}

    def send(self, sender: int, target: int, message: object) -> None:
        if target not in self._monitors:
            raise ValueError(f"no monitor registered for process {target}")
        self.messages_sent += 1
        self.messages_by_sender[sender] = self.messages_by_sender.get(sender, 0) + 1
        channel = (sender, target)
        earliest = self._channel_clock.get(channel, 0.0)
        delivery = max(self._delivery_time(sender, target), earliest)
        self._channel_clock[channel] = delivery

        def deliver(message=message, target=target, delivery=delivery) -> None:
            self.messages_delivered += 1
            self.last_delivery_time = max(self.last_delivery_time, delivery)
            self._monitors[target].receive_message(message)

        self.simulator.schedule_at(delivery, deliver)

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return self.messages_sent - self.messages_delivered


class LossySimulatedNetwork(SimulatedNetwork):
    """Lossy medium with stop-and-wait retransmission.

    Each transmission attempt is dropped with ``loss_probability``; the
    sender retransmits after ``retransmit_timeout``.  ``max_retransmits``
    bounds the retries so delivery stays guaranteed (the final attempt always
    goes through), matching the reliable-channel assumption while modelling
    the cost of loss as added delay and retransmission traffic.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: float = 0.05,
        jitter: float = 0.0,
        seed: int | None = None,
        loss_probability: float = 0.2,
        retransmit_timeout: float = 0.25,
        max_retransmits: int = 25,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if retransmit_timeout < 0:
            raise ValueError("retransmit_timeout must be non-negative")
        super().__init__(simulator, latency=latency, jitter=jitter, seed=seed)
        self.loss_probability = loss_probability
        self.retransmit_timeout = retransmit_timeout
        self.max_retransmits = max_retransmits
        self.retransmissions = 0

    def _delivery_time(self, sender: int, target: int) -> float:
        time = self.simulator.now
        attempts = 0
        while (
            attempts < self.max_retransmits
            and self._rng.random() < self.loss_probability
        ):
            attempts += 1
            time += self.retransmit_timeout
        self.retransmissions += attempts
        return time + self._sample_latency()

    def extra_stats(self) -> dict[str, float]:
        return {"retransmissions": float(self.retransmissions)}


class PartitionedSimulatedNetwork(SimulatedNetwork):
    """Network that partitions into groups during configured windows.

    Processes are assigned round-robin to ``num_groups`` groups
    (``process % num_groups``).  While a window ``(start, end)`` is open,
    messages *between different groups* are held and delivered only after the
    partition heals at ``end``; intra-group traffic is unaffected.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: float = 0.05,
        jitter: float = 0.0,
        seed: int | None = None,
        windows: tuple[tuple[float, float], ...] = ((2.0, 8.0),),
        num_groups: int = 2,
    ) -> None:
        for start, end in windows:
            if end <= start or start < 0:
                raise ValueError(f"invalid partition window ({start}, {end})")
        if num_groups < 2:
            raise ValueError("a partition needs at least two groups")
        super().__init__(simulator, latency=latency, jitter=jitter, seed=seed)
        self.windows = tuple(sorted(windows))
        self.num_groups = num_groups
        self.held_messages = 0

    def group_of(self, process: int) -> int:
        return process % self.num_groups

    def _delivery_time(self, sender: int, target: int) -> float:
        sample = self._sample_latency()
        tentative = self.simulator.now + sample
        if self.group_of(sender) == self.group_of(target):
            return tentative
        # a cross-group message whose arrival would land inside an open
        # partition window is held and only delivered after the heal
        for start, end in self.windows:
            if start <= tentative < end:
                self.held_messages += 1
                return end + sample
        return tentative

    def extra_stats(self) -> dict[str, float]:
        return {"held_messages": float(self.held_messages)}


class BurstySimulatedNetwork(SimulatedNetwork):
    """Duty-cycled medium flushing messages only at periodic burst instants.

    A message sent at time ``t`` reaches the air interface after the base
    latency and is then delivered at the next multiple of ``period`` — the
    medium wakes up every ``period`` seconds and transmits everything queued
    since the previous burst.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: float = 0.01,
        jitter: float = 0.0,
        seed: int | None = None,
        period: float = 0.75,
    ) -> None:
        if period <= 0:
            raise ValueError("burst period must be positive")
        super().__init__(simulator, latency=latency, jitter=jitter, seed=seed)
        self.period = period
        self.bursts_used = 0
        self._last_burst_tick = -1

    def _delivery_time(self, sender: int, target: int) -> float:
        ready = self.simulator.now + self._sample_latency()
        tick = math.ceil(ready / self.period)
        if tick != self._last_burst_tick:
            self._last_burst_tick = tick
            self.bursts_used += 1
        return tick * self.period

    def extra_stats(self) -> dict[str, float]:
        return {"bursts_used": float(self.bursts_used)}
