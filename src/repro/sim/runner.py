"""Simulated monitored runs: programs + monitors + network, with time.

:func:`simulate_monitored_run` plays a finished computation on the
discrete-event simulator: each program event fires at its recorded timestamp
and is handed to the local monitor, monitoring messages travel through a
:class:`SimulatedNetwork` (or any network built by the *network* factory —
see :mod:`repro.scenarios.network` for the lossy/partition/bursty models),
and termination signals are issued when each process produces its last
event.  The returned
:class:`SimulationReport` carries exactly the metrics reported in Chapter 5:

* total monitoring messages (Figures 5.4, 5.5, 5.9a);
* delay-time percentage per global state (Figure 5.6);
* delayed (queued) events (Figure 5.7);
* total global views created (Figure 5.8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from ..coordination import build_topology
from ..core.monitor import DecentralizedMonitor
from ..distributed.computation import Computation
from ..faults import FaultPlan, apply_clock_skew, unwrap_monitor, wrap_monitors
from ..ltl.monitor import MonitorAutomaton
from ..ltl.predicates import PropositionRegistry
from ..ltl.verdict import Verdict
from .engine import Simulator
from .network import SimulatedNetwork

__all__ = ["NetworkFactory", "SimulationReport", "simulate_monitored_run"]


class NetworkFactory(Protocol):
    """Anything that can build a simulated network for one run.

    The declarative network models of :mod:`repro.scenarios.network` satisfy
    this protocol; :func:`simulate_monitored_run` only needs ``build``.
    """

    def build(self, simulator: Simulator, seed: int | None) -> SimulatedNetwork:
        """Construct the network for *simulator*, seeded with *seed*."""


@dataclass
class SimulationReport:
    """Metrics and outcomes of one simulated monitored run."""

    num_processes: int
    total_events: int
    monitor_messages: int
    token_messages: int
    termination_messages: int
    digest_messages: int
    total_global_views: int
    delayed_events: int
    program_end_time: float
    monitor_end_time: float
    reported_verdicts: frozenset[Verdict]
    declared_verdicts: frozenset[Verdict]
    monitors: list[DecentralizedMonitor]
    #: behaviour-specific counters of the network model (retransmissions,
    #: held messages, bursts, ...); empty for the plain reliable network
    network_stats: dict[str, float] = field(default_factory=dict)
    #: ``fault_*`` counters of the fault plan (crashes, restarts, held
    #: messages, replayed events, ...); empty for fault-free runs
    fault_stats: dict[str, float] = field(default_factory=dict)

    @property
    def monitor_extra_time(self) -> float:
        """Time the monitors kept working after the program finished."""
        return max(0.0, self.monitor_end_time - self.program_end_time)

    @property
    def delay_time_percentage_per_view(self) -> float:
        """The normalised delay metric of Fig. 5.6:
        ``((MonitorExtraTime / ProgramTime) * 100) / TotalGlobalViews``."""
        if self.program_end_time <= 0 or self.total_global_views == 0:
            return 0.0
        percentage = (self.monitor_extra_time / self.program_end_time) * 100.0
        return percentage / self.total_global_views

    @property
    def average_delayed_events(self) -> float:
        """Average number of delayed events per monitor (Fig. 5.7)."""
        if self.num_processes == 0:
            return 0.0
        return self.delayed_events / self.num_processes

    def as_dict(self) -> dict[str, object]:
        return {
            "processes": self.num_processes,
            "events": self.total_events,
            "messages": self.monitor_messages,
            "token_messages": self.token_messages,
            "global_views": self.total_global_views,
            "delayed_events": self.delayed_events,
            "delay_time_pct_per_view": self.delay_time_percentage_per_view,
            "program_time": self.program_end_time,
            "monitor_extra_time": self.monitor_extra_time,
            "verdicts": sorted(str(v) for v in self.reported_verdicts),
            **self.network_stats,
            **self.fault_stats,
        }


def simulate_monitored_run(
    computation: Computation,
    automaton: MonitorAutomaton,
    registry: PropositionRegistry,
    message_latency: float = 0.05,
    latency_jitter: float = 0.01,
    seed: int | None = None,
    max_views_per_state: int | None = None,
    network: NetworkFactory | None = None,
    faults: FaultPlan | None = None,
    compiled_kernel: bool = True,
    max_sim_events: int | None = None,
    topology: str = "round-robin-token",
) -> SimulationReport:
    """Replay *computation* under decentralized monitoring with network latency.

    With *network* set (any :class:`NetworkFactory`, e.g. a scenario network
    model) the monitors communicate over the network it builds; otherwise a
    plain reliable :class:`SimulatedNetwork` with *message_latency* /
    *latency_jitter* is used, as in the paper's testbed.  With *faults* set
    (a :class:`repro.faults.FaultPlan`) monitors named by the plan are
    wrapped in crash/restart proxies; a no-op plan takes the exact fault-free
    code path, so its outputs are byte-identical to ``faults=None``.  With
    *compiled_kernel* (default on) monitors step the compiled bitmask/dense
    table form of the automaton; the interpreted path is step-for-step
    equivalent and reports identical results.  With *max_sim_events* set,
    the simulator raises :class:`repro.sim.SimulationBudgetExceeded` after
    that many scheduled callbacks — the guard the fuzzing harness uses to
    bound message-amplification storms under adversarial plans.  *topology*
    names the :mod:`repro.coordination` routing policy shared by the run's
    monitors (default ``round-robin-token``, the pre-refactor behaviour).
    """
    n = computation.num_processes
    skew_stats: dict[str, float] = {}
    if faults is not None and faults.clock_skew is not None:
        # clock skew perturbs the monitored trace itself, before any monitor
        # runs — every backend applies the identical deterministic transform
        computation, skew_stats = apply_clock_skew(computation, faults.clock_skew)
    simulator = Simulator()
    if network is not None:
        built_network = network.build(simulator, seed)
    else:
        built_network = SimulatedNetwork(
            simulator, latency=message_latency, jitter=latency_jitter, seed=seed
        )
    initial_letters = [
        registry.local_letter(i, computation.initial_states[i]) for i in range(n)
    ]
    route = build_topology(topology, n, registry=registry)

    def make_monitor(process: int) -> DecentralizedMonitor:
        return DecentralizedMonitor(
            process=process,
            num_processes=n,
            automaton=automaton,
            registry=registry,
            initial_letters=initial_letters,
            transport=built_network,
            max_views_per_state=max_views_per_state,
            use_compiled_kernel=compiled_kernel,
            topology=route,
        )

    monitors, injector = wrap_monitors(faults, n, make_monitor)
    for i, monitor in enumerate(monitors):
        built_network.register(i, monitor)

    # schedule program events at their recorded timestamps
    last_time_per_process = [0.0] * n
    program_end = 0.0
    for event in computation.all_events():
        last_time_per_process[event.process] = max(
            last_time_per_process[event.process], event.timestamp
        )
        program_end = max(program_end, event.timestamp)

        def fire(event=event) -> None:
            monitors[event.process].local_event(event)

        simulator.schedule_at(event.timestamp, fire)

    # start monitors at time zero, terminate each process just after its last event
    for i, monitor in enumerate(monitors):
        simulator.schedule_at(0.0, monitor.start)

        def terminate(monitor=monitors[i]) -> None:
            monitor.local_termination()

        simulator.schedule_at(last_time_per_process[i] + 1e-6, terminate)

    if max_sim_events is not None:
        simulator.run(max_events=max_sim_events)
    else:
        simulator.run()

    monitor_end = max(built_network.last_delivery_time, program_end)
    total_views = sum(m.metrics.views_created for m in monitors)
    delayed = sum(m.metrics.delayed_events for m in monitors)
    reported: set[Verdict] = set()
    declared: set[Verdict] = set()
    for monitor in monitors:
        reported |= monitor.reported_verdicts()
        declared |= monitor.declared_verdicts
    return SimulationReport(
        num_processes=n,
        total_events=computation.num_events,
        monitor_messages=built_network.messages_sent,
        token_messages=sum(m.metrics.token_messages_sent for m in monitors),
        termination_messages=sum(
            m.metrics.termination_messages_sent for m in monitors
        ),
        digest_messages=sum(m.metrics.digest_messages_sent for m in monitors),
        total_global_views=total_views,
        delayed_events=delayed,
        program_end_time=program_end,
        monitor_end_time=monitor_end,
        reported_verdicts=frozenset(reported),
        declared_verdicts=frozenset(declared),
        monitors=[unwrap_monitor(monitor) for monitor in monitors],
        network_stats=built_network.extra_stats(),
        fault_stats={
            **(injector.fault_stats() if injector is not None else {}),
            **skew_stats,
        },
    )
