"""Discrete-event simulation of monitored distributed programs.

Public API
----------
* :class:`Simulator` — the discrete-event kernel.
* :class:`SimulatedNetwork` — latency/jitter FIFO network between monitors,
  with :class:`LossySimulatedNetwork` / :class:`PartitionedSimulatedNetwork`
  / :class:`BurstySimulatedNetwork` behaviour variants (all reliable-delivery,
  see :mod:`repro.scenarios` for their declarative models).
* :class:`WorkloadConfig` / :func:`generate_computation` — the case-study
  trace model of Section 5.2 (normal-distributed event and communication
  wait times, propositions ``p``/``q`` per process).
* :func:`random_computation` — small random computations for testing.
* :func:`simulate_monitored_run` / :class:`SimulationReport` — a full
  monitored run with timing-based metrics.
"""

from .engine import SimulationBudgetExceeded, Simulator
from .network import (
    BurstySimulatedNetwork,
    LossySimulatedNetwork,
    PartitionedSimulatedNetwork,
    SimulatedNetwork,
)
from .runner import NetworkFactory, SimulationReport, simulate_monitored_run
from .workload import WorkloadConfig, generate_computation, random_computation

__all__ = [
    "SimulationBudgetExceeded",
    "Simulator",
    "SimulatedNetwork",
    "LossySimulatedNetwork",
    "PartitionedSimulatedNetwork",
    "BurstySimulatedNetwork",
    "NetworkFactory",
    "SimulationReport",
    "simulate_monitored_run",
    "WorkloadConfig",
    "generate_computation",
    "random_computation",
]
