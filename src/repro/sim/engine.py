"""A minimal discrete-event simulation kernel.

The experiments of Chapter 5 ran on a WiFi network of iOS devices; this
simulator replaces that testbed.  It provides a priority queue of timed
callbacks — program events, message deliveries and termination signals are
all scheduled on it — and tracks the current simulated time, which the
metrics module uses to compute the paper's delay figures.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["SimulationBudgetExceeded", "Simulator"]


class SimulationBudgetExceeded(RuntimeError):
    """The run scheduled more events than its ``max_events`` budget allows.

    Distinguishable from other runtime failures so harnesses that bound
    runaway executions (message-amplification storms under adversarial
    fault plans) can classify budget exhaustion as its own outcome.
    """


@dataclass(order=True)
class _Scheduled:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)


class Simulator:
    """Priority-queue driven discrete-event simulator."""

    def __init__(self) -> None:
        self._queue: list[_Scheduled] = []
        self._sequence = itertools.count()
        self.now: float = 0.0
        self.events_executed: int = 0

    #: relative tolerance for the "scheduling at the current instant" check:
    #: times within one part in 10^12 of ``now`` (well above the float64
    #: rounding error accumulated by summing delays) are clamped to ``now``.
    _TIME_EPSILON = 1e-12

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule *callback* at absolute simulated time *time*.

        Scheduling at exactly ``self.now`` is allowed — in particular from
        within a callback executing at ``now`` — and runs *after* the
        currently executing callback, in FIFO order with other work scheduled
        for the same instant.  Because absolute times are often reconstructed
        by summing float delays, a *time* that undershoots ``now`` by no more
        than a relative ``_TIME_EPSILON`` is treated as "now" rather than
        rejected; anything earlier raises :class:`ValueError`.
        """
        if time < self.now:
            if self.now - time <= self._TIME_EPSILON * max(1.0, abs(self.now)):
                time = self.now
            else:
                raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._queue, _Scheduled(time, next(self._sequence), callback))

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule *callback* ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule_at(self.now + delay, callback)

    @property
    def pending(self) -> int:
        return len(self._queue)

    def step(self) -> bool:
        """Execute the next scheduled callback; returns False when idle."""
        if not self._queue:
            return False
        item = heapq.heappop(self._queue)
        self.now = item.time
        item.callback()
        self.events_executed += 1
        return True

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Run until the queue is empty (or simulated time passes *until*).

        Returns the simulated time at which the run stopped.
        """
        executed = 0
        while self._queue:
            if until is not None and self._queue[0].time > until:
                break
            self.step()
            executed += 1
            if executed > max_events:
                raise SimulationBudgetExceeded(
                    f"simulation exceeded the maximum event budget ({max_events})"
                )
        return self.now
