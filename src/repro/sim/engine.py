"""A minimal discrete-event simulation kernel.

The experiments of Chapter 5 ran on a WiFi network of iOS devices; this
simulator replaces that testbed.  It provides a priority queue of timed
callbacks — program events, message deliveries and termination signals are
all scheduled on it — and tracks the current simulated time, which the
metrics module uses to compute the paper's delay figures.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["Simulator"]


@dataclass(order=True)
class _Scheduled:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)


class Simulator:
    """Priority-queue driven discrete-event simulator."""

    def __init__(self) -> None:
        self._queue: List[_Scheduled] = []
        self._sequence = itertools.count()
        self.now: float = 0.0
        self.events_executed: int = 0

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule *callback* at absolute simulated time *time*."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._queue, _Scheduled(time, next(self._sequence), callback))

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule *callback* ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule_at(self.now + delay, callback)

    @property
    def pending(self) -> int:
        return len(self._queue)

    def step(self) -> bool:
        """Execute the next scheduled callback; returns False when idle."""
        if not self._queue:
            return False
        item = heapq.heappop(self._queue)
        self.now = item.time
        item.callback()
        self.events_executed += 1
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run until the queue is empty (or simulated time passes *until*).

        Returns the simulated time at which the run stopped.
        """
        executed = 0
        while self._queue:
            if until is not None and self._queue[0].time > until:
                break
            self.step()
            executed += 1
            if executed > max_events:
                raise RuntimeError("simulation exceeded the maximum event budget")
        return self.now
