"""Workload generation: the trace model of the paper's case study.

Chapter 5 drives each device with a trace file containing the wait time
between events, where

* the wait time between *internal* (variable-valuation-change) events is
  drawn from a normal distribution ``Normal(Evtμ, Evtσ)``;
* the wait time between *communication* events is drawn from
  ``Normal(Commμ, Commσ)`` and a communication event makes the process send
  a message to **every** other process;
* every process owns two boolean propositions ``p`` and ``q`` whose values
  are part of the trace;
* traces are designed so that some lattice path reaches a final automaton
  state.

:func:`generate_computation` reproduces this model and returns a finished
:class:`repro.distributed.Computation` with realistic timestamps, ready to be
replayed through the monitors (either with the loopback runner or the
discrete-event simulator).  :func:`random_computation` generates smaller,
fully random computations used by the property-based correctness tests.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from ..distributed.computation import Computation, ComputationBuilder

__all__ = ["WorkloadConfig", "generate_computation", "random_computation"]


@dataclass
class WorkloadConfig:
    """Parameters of the case-study workload (Section 5.2).

    Attributes
    ----------
    num_processes:
        Number of program processes (2–5 in the paper).
    events_per_process:
        Number of internal (valuation-change) events each process produces.
    evt_mu / evt_sigma:
        Normal-distribution parameters (seconds) of the wait time between
        internal events.
    comm_mu / comm_sigma:
        Normal-distribution parameters of the wait time between
        communication events; ``comm_mu=None`` disables communication
        entirely (the "No comm" configuration of Fig. 5.9).
    message_latency:
        Program-message transfer latency (seconds).
    variables:
        Boolean proposition variables owned by each process.
    truth_probability:
        Probability that an internal event sets a variable to ``True``.
    ensure_final:
        Force the last internal event of every process to set all variables
        to ``True`` so that some lattice path reaches a conclusive state, as
        in the paper's trace design.
    initial_valuation:
        Initial truth value of every variable (default: all ``False``).  The
        case-study harness uses all-``True`` initial valuations for the
        ``G(… U …)`` properties so that the property is not violated by the
        very first global state, mirroring the designed traces of the paper.
    seed:
        RNG seed for reproducibility.
    hot_processes / hot_event_factor / hot_truth_probability:
        Hot-proposition skew (the ``hot-spot`` scenario): each process listed
        in ``hot_processes`` produces ``hot_event_factor ×`` as many internal
        events at ``hot_event_factor ×`` the rate (the wall-clock horizon is
        preserved), optionally flipping its propositions with its own
        ``hot_truth_probability`` instead of the global one.  The defaults
        (no hot processes, factor 1) leave the paper's trace model — and its
        RNG draw sequence — untouched.
    comm_burst_size / comm_burst_gap:
        Comm-heavy bursts (the ``bursty-comm`` scenario): every communication
        slot fires a burst of ``comm_burst_size`` broadcast rounds spaced
        ``comm_burst_gap`` seconds apart instead of a single round.  The
        default burst size of 1 reproduces the paper's model exactly.
    """

    num_processes: int = 4
    events_per_process: int = 10
    evt_mu: float = 3.0
    evt_sigma: float = 1.0
    comm_mu: float | None = 3.0
    comm_sigma: float = 1.0
    message_latency: float = 0.05
    variables: tuple[str, ...] = ("p", "q")
    truth_probability: float = 0.5
    ensure_final: bool = True
    initial_valuation: dict[str, bool] | None = None
    seed: int | None = None
    hot_processes: tuple[int, ...] = ()
    hot_event_factor: float = 1.0
    hot_truth_probability: float | None = None
    comm_burst_size: int = 1
    comm_burst_gap: float = 0.2

    def __post_init__(self) -> None:
        if self.num_processes < 1:
            raise ValueError("at least one process is required")
        if self.events_per_process < 1:
            raise ValueError("each process needs at least one event")
        if self.evt_mu <= 0:
            raise ValueError("evt_mu must be positive")
        if self.hot_event_factor < 1.0:
            raise ValueError("hot_event_factor must be >= 1")
        if any(p < 0 or p >= self.num_processes for p in self.hot_processes):
            raise ValueError("hot_processes must name valid process indices")
        if self.comm_burst_size < 1:
            raise ValueError("comm_burst_size must be >= 1")
        if self.comm_burst_gap <= 0:
            raise ValueError("comm_burst_gap must be positive")


def _positive_gauss(rng: random.Random, mu: float, sigma: float) -> float:
    """A normal sample truncated away from zero (wait times are positive)."""
    return max(0.05, rng.gauss(mu, sigma))


def generate_computation(config: WorkloadConfig) -> Computation:
    """Generate one case-study computation according to *config*."""
    rng = random.Random(config.seed)
    n = config.num_processes
    base_valuation = {v: False for v in config.variables}
    if config.initial_valuation:
        base_valuation.update(config.initial_valuation)
    initial_states = [dict(base_valuation) for _ in range(n)]
    builder = ComputationBuilder(initial_states)

    # Pre-compute, per process, the absolute times of internal and
    # communication events.  Hot processes run at `hot_event_factor ×` the
    # event rate for `hot_event_factor ×` as many events, so their wall-clock
    # horizon matches the other processes while their propositions churn.
    internal_times: list[list[float]] = []
    for process in range(n):
        if process in config.hot_processes and config.hot_event_factor > 1.0:
            event_count = max(1, round(config.events_per_process * config.hot_event_factor))
            mu = config.evt_mu / config.hot_event_factor
            sigma = config.evt_sigma / config.hot_event_factor
        else:
            event_count = config.events_per_process
            mu, sigma = config.evt_mu, config.evt_sigma
        times = []
        clock = 0.0
        for _ in range(event_count):
            clock += _positive_gauss(rng, mu, sigma)
            times.append(clock)
        internal_times.append(times)

    comm_times: list[list[float]] = [[] for _ in range(n)]
    if config.comm_mu is not None and n > 1:
        for process in range(n):
            clock = 0.0
            horizon = internal_times[process][-1]
            while True:
                clock += _positive_gauss(rng, config.comm_mu, config.comm_sigma)
                if clock >= horizon:
                    break
                comm_times[process].append(clock)
                # comm-heavy bursts: follow-up broadcast rounds right after
                # the sampled slot (the next inter-slot wait still starts
                # from the sampled time, keeping slot statistics intact)
                for extra in range(1, config.comm_burst_size):
                    burst_time = clock + extra * config.comm_burst_gap
                    if burst_time >= horizon:
                        break
                    comm_times[process].append(burst_time)

    # Build the global schedule: (time, kind, process, payload)
    schedule: list[tuple[float, int, str, int, object]] = []
    order = 0
    for process in range(n):
        for index, time in enumerate(internal_times[process]):
            is_last = index == len(internal_times[process]) - 1
            schedule.append((time, order, "internal", process, is_last))
            order += 1
        for time in comm_times[process]:
            schedule.append((time, order, "comm", process, None))
            order += 1
    schedule.sort(key=lambda item: (item[0], item[1]))

    message_id = 0
    #: program messages in flight: (arrival_time, order, sender, receiver, id)
    in_flight: list[tuple[float, int, int, int, int]] = []

    def flush_arrivals(up_to: float) -> None:
        nonlocal in_flight
        due = [m for m in in_flight if m[0] <= up_to]
        in_flight = [m for m in in_flight if m[0] > up_to]
        for arrival, _, sender, receiver, mid in sorted(due):
            builder.receive(receiver, frm=sender, message_id=mid, timestamp=arrival)

    for time, _, kind, process, payload in schedule:
        flush_arrivals(time)
        if kind == "internal":
            is_last = bool(payload)
            if is_last and config.ensure_final:
                updates = {v: True for v in config.variables}
            else:
                probability = config.truth_probability
                if (
                    process in config.hot_processes
                    and config.hot_truth_probability is not None
                ):
                    probability = config.hot_truth_probability
                updates = {
                    v: rng.random() < probability
                    for v in config.variables
                }
            builder.internal(process, updates, timestamp=time)
        else:
            for receiver in range(n):
                if receiver == process:
                    continue
                message_id += 1
                builder.send(process, to=receiver, message_id=message_id, timestamp=time)
                in_flight.append(
                    (
                        time + config.message_latency,
                        message_id,
                        process,
                        receiver,
                        message_id,
                    )
                )
    # deliver any stragglers after all scheduled events
    if in_flight:
        flush_arrivals(max(m[0] for m in in_flight))
    return builder.build()


def random_computation(
    num_processes: int,
    num_events: int,
    seed: int,
    variables: Sequence[str] = ("p", "q"),
    send_probability: float = 0.3,
    truth_probability: float = 0.5,
) -> Computation:
    """A small, fully random computation for property-based testing.

    Events are generated one at a time: a random process performs either an
    internal event (random valuation flip), a send to a random peer, or a
    receive of a pending message addressed to it.
    """
    rng = random.Random(seed)
    initial_states = [{v: False for v in variables} for _ in range(num_processes)]
    builder = ComputationBuilder(initial_states)
    pending: dict[int, list[int]] = {j: [] for j in range(num_processes)}  # receiver -> [mid]
    senders: dict[int, int] = {}
    message_id = 0
    for _ in range(num_events):
        process = rng.randrange(num_processes)
        deliverable = pending[process]
        choice = rng.random()
        if deliverable and choice < 0.4:
            mid = deliverable.pop(0)
            builder.receive(process, frm=senders[mid], message_id=mid)
        elif num_processes > 1 and choice < 0.4 + send_probability:
            target = rng.randrange(num_processes)
            while target == process:
                target = rng.randrange(num_processes)
            message_id += 1
            builder.send(process, to=target, message_id=message_id)
            pending[target].append(message_id)
            senders[message_id] = process
        else:
            updates = {
                v: rng.random() < truth_probability for v in variables
            }
            builder.internal(process, updates)
    return builder.build()
