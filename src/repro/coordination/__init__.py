"""Pluggable coordination topologies for the decentralized monitors.

This package owns the *routing policy* seam extracted out of
:class:`repro.core.monitor.DecentralizedMonitor`: where tokens travel, who
is told about termination, and how conclusive verdicts fan out.  Every
backend (sim / asyncio / cluster) builds its monitors with one
:class:`CoordinationTopology` obtained from :func:`build_topology`, keyed
by the ``topology`` field threaded through ``Scenario`` /
``ExecutionConfig`` / ``RunSpec`` / ``run --topology``.

The default ``round-robin-token`` topology reproduces the pre-refactor
monitor byte for byte (fixture-asserted); the alternatives trade message
count against verdict latency along the paper's Chapter-5 frontier.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .topology import (
    CoordinationTopology,
    GossipFanout,
    RoundRobinToken,
    SlicerPlacement,
    TreeAggregation,
)

if TYPE_CHECKING:
    from ..ltl.predicates import PropositionRegistry

__all__ = [
    "CoordinationTopology",
    "DEFAULT_TOPOLOGY",
    "GossipFanout",
    "RoundRobinToken",
    "SlicerPlacement",
    "TOPOLOGIES",
    "TreeAggregation",
    "build_topology",
    "topology_names",
]

#: registry name of the topology every run uses unless told otherwise
DEFAULT_TOPOLOGY = "round-robin-token"

#: every registered topology name, in canonical (frontier) order
TOPOLOGIES: tuple[str, ...] = (
    "round-robin-token",
    "tree-aggregation",
    "gossip",
    "slicer-placement",
)

_BUILDERS = {
    "round-robin-token": RoundRobinToken,
    "tree-aggregation": TreeAggregation,
    "gossip": GossipFanout,
    "slicer-placement": SlicerPlacement,
}


def topology_names() -> list[str]:
    """Every registered topology name, in canonical order."""
    return list(TOPOLOGIES)


def build_topology(
    name: str,
    num_processes: int,
    *,
    registry: PropositionRegistry | None = None,
) -> CoordinationTopology:
    """Construct the topology *name* for a run of *num_processes* monitors.

    The result is stateless and deterministic in ``(name, num_processes)``
    (plus the formula's proposition ownership for ``slicer-placement``), so
    cluster workers that each call this from the same
    :class:`~repro.cluster.spec.RunSpec` make identical routing decisions.
    *registry* feeds ``slicer-placement``'s static ownership weights and is
    ignored by the other topologies.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(_BUILDERS))
        raise ValueError(f"unknown topology {name!r} (known: {known})") from None
    if builder is SlicerPlacement:
        return SlicerPlacement(num_processes, registry=registry)
    return builder(num_processes)
