"""The :class:`CoordinationTopology` protocol and its concrete strategies.

A topology is a **pure, stateless routing policy**: it decides which monitor
a token visits next, through which intermediate hop a token travels, who is
told about local termination, and how termination notices and conclusive
verdicts fan out.  All mutable protocol state (duplicate suppression for
flooded digests, parked tokens, views) lives inside
:class:`repro.core.monitor.DecentralizedMonitor`; one topology instance is
therefore safely shared by every monitor of a run, and two monitors on
different hosts that build the same topology from ``(name, num_processes)``
make identical routing decisions — which is what lets the cluster backend
derive its routing from a :class:`repro.cluster.spec.RunSpec` field alone.

The four shipped strategies:

``round-robin-token``
    The original monolithic behaviour of ``core/monitor.py``: tokens go
    directly to the first (lowest-index) actionable process and termination
    notices are broadcast point-to-point.  Byte-identical outputs to the
    pre-refactor monitor are fixture-asserted.
``tree-aggregation``
    Tokens route hop-by-hop along the edges of a static binary process
    tree (implicit heap layout); completed tokens travel back down the
    same tree toward their parent view.  Termination notices flood over
    the tree edges with receiver-side duplicate suppression.
``gossip``
    Tokens go direct, but termination notices and first-time conclusive
    verdicts fan out epidemically over a deterministic seeded overlay
    (ring + one chord per node) with duplicate suppression.
``slicer-placement``
    Tokens are routed to the candidate that *owns* the largest share of
    the undecided guard conjuncts — the per-process formula decomposition
    produced by the slicer's conjunct registry
    (:meth:`repro.ltl.predicates.PropositionRegistry.conjuncts_by_process`,
    the same seam :mod:`repro.slicing.slicer` slices on).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # imported for type hints only: keeps this package
    # runtime-independent of repro.core (no import cycle with the monitor)
    from ..core.messages import Token
    from ..ltl.predicates import PropositionRegistry

__all__ = [
    "CoordinationTopology",
    "RoundRobinToken",
    "TreeAggregation",
    "GossipFanout",
    "SlicerPlacement",
]


@runtime_checkable
class CoordinationTopology(Protocol):
    """Routing policy of one monitoring run (shared by all its monitors).

    Implementations must be deterministic pure functions of the constructor
    arguments: two instances built from the same ``(name, num_processes)``
    must answer every method identically, on every host.
    """

    #: registry name of the topology (the ``--topology`` CLI value)
    name: str

    def pick_target(
        self, current: int, candidates: Sequence[int], token: Token
    ) -> int:
        """Choose the next monitor a token visits.

        *candidates* is a non-empty, deterministically ordered list of
        processes with actionable (or parked) work for *token*; the return
        value must be one of them.
        """

    def next_hop(self, current: int, destination: int) -> int:
        """First transport hop of a token travelling to *destination*.

        Direct topologies return *destination*; multi-hop topologies (the
        tree) return the neighbouring process one step closer to it.  The
        intermediate monitor re-serves and re-routes the token, so relayed
        tokens stay live protocol participants rather than opaque frames.
        """

    def termination_recipients(self, current: int) -> tuple[int, ...]:
        """Processes told directly when *current*'s program terminates."""

    def forward_termination(self, current: int, origin: int) -> tuple[int, ...]:
        """Processes a first-seen termination notice is forwarded to.

        Empty for broadcast topologies (every process was told directly);
        flooding topologies return *current*'s neighbours so the notice
        spreads epidemically — receivers suppress duplicates.
        """

    def verdict_recipients(self, current: int) -> tuple[int, ...]:
        """Processes told when *current* first declares a conclusive verdict.

        Empty for topologies that do not gossip verdicts.
        """

    def forward_verdict(self, current: int, origin: int) -> tuple[int, ...]:
        """Processes a first-seen verdict announcement is forwarded to."""

    def describe(self) -> dict[str, object]:
        """One JSON-friendly metadata dict (used by docs and artifacts)."""


class RoundRobinToken:
    """The pre-refactor routing policy, extracted verbatim.

    Tokens go directly to the lowest-index actionable candidate and
    termination is announced point-to-point to every other process in index
    order — exactly the decisions the monolithic monitor hard-coded, so the
    default topology reproduces its outputs byte for byte.
    """

    name = "round-robin-token"

    def __init__(self, num_processes: int) -> None:
        self.num_processes = num_processes

    def pick_target(
        self, current: int, candidates: Sequence[int], token: Token
    ) -> int:
        """The first candidate in deterministic order (original behaviour)."""
        return candidates[0]

    def next_hop(self, current: int, destination: int) -> int:
        """Direct delivery."""
        return destination

    def termination_recipients(self, current: int) -> tuple[int, ...]:
        """Every other process, in index order."""
        return tuple(j for j in range(self.num_processes) if j != current)

    def forward_termination(self, current: int, origin: int) -> tuple[int, ...]:
        """Nothing to forward: the origin already told everyone."""
        return ()

    def verdict_recipients(self, current: int) -> tuple[int, ...]:
        """No verdict gossip."""
        return ()

    def forward_verdict(self, current: int, origin: int) -> tuple[int, ...]:
        """No verdict gossip."""
        return ()

    def describe(self) -> dict[str, object]:
        """Metadata describing this topology."""
        return {
            "name": self.name,
            "routing": "direct, lowest-index candidate",
            "termination": "point-to-point broadcast",
            "verdicts": "none",
        }


class TreeAggregation:
    """Token routing along a static binary process tree (implicit heap).

    Process ``0`` is the root; the children of ``i`` are ``2i+1`` and
    ``2i+2``.  Tokens travel edge by edge toward their target and back down
    toward their parent view, so every monitoring message crosses exactly
    one tree edge — the aggregation pattern of hierarchical monitors.
    Termination notices flood over the tree edges (duplicate-suppressed),
    costing ``O(edges)`` instead of ``O(n²)`` point-to-point sends.
    """

    name = "tree-aggregation"

    def __init__(self, num_processes: int) -> None:
        self.num_processes = num_processes

    def neighbors(self, process: int) -> tuple[int, ...]:
        """Tree neighbours of *process*: its parent and existing children."""
        nodes = []
        if process > 0:
            nodes.append((process - 1) // 2)
        for child in (2 * process + 1, 2 * process + 2):
            if child < self.num_processes:
                nodes.append(child)
        return tuple(nodes)

    def pick_target(
        self, current: int, candidates: Sequence[int], token: Token
    ) -> int:
        """The first candidate (selection policy unchanged; paths differ)."""
        return candidates[0]

    def next_hop(self, current: int, destination: int) -> int:
        """The tree neighbour one edge closer to *destination*.

        Climbs the heap ancestry of *destination*: if the walk passes
        through *current* the last node before it is the child to descend
        to, otherwise the destination lies outside *current*'s subtree and
        the token goes up to *current*'s parent.
        """
        if destination == current:
            return current
        node = destination
        while node > current:
            parent = (node - 1) // 2
            if parent == current:
                return node
            node = parent
        return (current - 1) // 2

    def termination_recipients(self, current: int) -> tuple[int, ...]:
        """The tree neighbours (the flood's first wave)."""
        return self.neighbors(current)

    def forward_termination(self, current: int, origin: int) -> tuple[int, ...]:
        """Continue the flood to every tree neighbour except the origin."""
        return tuple(j for j in self.neighbors(current) if j != origin)

    def verdict_recipients(self, current: int) -> tuple[int, ...]:
        """No verdict gossip (verdicts surface through returned tokens)."""
        return ()

    def forward_verdict(self, current: int, origin: int) -> tuple[int, ...]:
        """No verdict gossip."""
        return ()

    def describe(self) -> dict[str, object]:
        """Metadata describing this topology."""
        return {
            "name": self.name,
            "routing": "hop-by-hop along a static binary tree",
            "termination": "flood over tree edges, duplicate-suppressed",
            "verdicts": "none",
        }


class GossipFanout:
    """Epidemic fan-out of termination/verdict digests over a seeded overlay.

    Tokens still travel directly (the least-consistent-cut search needs its
    exact target), but the *digest* traffic — termination notices and
    first-time conclusive verdicts — spreads over a deterministic overlay:
    a ring (``i ± 1``) plus one pseudo-random chord per node derived from a
    fixed internal salt, giving every node degree ≈ 3–4 and the overlay a
    small diameter.  Receivers suppress duplicates, so each digest crosses
    each overlay edge at most twice.  The salt is a compile-time constant —
    **not** the run seed — so every backend (including the seedless
    streaming runtime) builds the identical overlay for a given ``n``.
    """

    name = "gossip"

    #: fixed Knuth-style salt for the chord derivation (not the run seed)
    _CHORD_SALT = 0x9E3779B1
    _CHORD_MULTIPLIER = 2654435761

    def __init__(self, num_processes: int) -> None:
        self.num_processes = num_processes
        n = num_processes
        neighbor_sets: list[set[int]] = [set() for _ in range(n)]
        if n > 1:
            for i in range(n):
                neighbor_sets[i].add((i + 1) % n)
                neighbor_sets[i].add((i - 1) % n)
        if n > 4:
            # one chord per node, offset in [2, n-2]: never self or a ring
            # neighbour; added symmetrically so the overlay is undirected
            for i in range(n):
                offset = 2 + (i * self._CHORD_MULTIPLIER + self._CHORD_SALT) % (
                    n - 3
                )
                j = (i + offset) % n
                neighbor_sets[i].add(j)
                neighbor_sets[j].add(i)
        self._neighbors = tuple(
            tuple(sorted(neighbor_sets[i] - {i})) for i in range(n)
        )

    def neighbors(self, process: int) -> tuple[int, ...]:
        """Overlay neighbours of *process* (ring plus chords)."""
        return self._neighbors[process]

    def pick_target(
        self, current: int, candidates: Sequence[int], token: Token
    ) -> int:
        """The first candidate (tokens are not gossiped)."""
        return candidates[0]

    def next_hop(self, current: int, destination: int) -> int:
        """Direct delivery for tokens."""
        return destination

    def termination_recipients(self, current: int) -> tuple[int, ...]:
        """The overlay neighbours (the epidemic's first round)."""
        return self.neighbors(current)

    def forward_termination(self, current: int, origin: int) -> tuple[int, ...]:
        """Spread a first-seen notice to every neighbour except the origin."""
        return tuple(j for j in self.neighbors(current) if j != origin)

    def verdict_recipients(self, current: int) -> tuple[int, ...]:
        """Gossip first-time conclusive verdicts to the overlay neighbours."""
        return self.neighbors(current)

    def forward_verdict(self, current: int, origin: int) -> tuple[int, ...]:
        """Spread a first-seen announcement like a termination notice."""
        return tuple(j for j in self.neighbors(current) if j != origin)

    def describe(self) -> dict[str, object]:
        """Metadata describing this topology."""
        return {
            "name": self.name,
            "routing": "direct tokens",
            "termination": "epidemic fan-out over ring+chord overlay",
            "verdicts": "gossiped on first declaration",
        }


class SlicerPlacement:
    """Token placement by formula ownership (the slicer's decomposition).

    Candidates are ranked by how much of the token's undecided guard work
    they own: the per-process conjunct split carried by every
    :class:`~repro.core.messages.TokenEntry` is exactly what
    :meth:`~repro.ltl.predicates.PropositionRegistry.conjuncts_by_process`
    produced — the decomposition :mod:`repro.slicing.slicer` slices on.
    Ties break on the process's static proposition ownership (how many of
    the formula's atoms it owns) and then on the lowest index, keeping the
    policy fully deterministic.
    """

    name = "slicer-placement"

    def __init__(
        self, num_processes: int, registry: PropositionRegistry | None = None
    ) -> None:
        self.num_processes = num_processes
        if registry is not None:
            self._ownership = tuple(
                len(registry.owned_by(j)) for j in range(num_processes)
            )
        else:
            self._ownership = (0,) * num_processes

    def pick_target(
        self, current: int, candidates: Sequence[int], token: Token
    ) -> int:
        """The candidate owning the largest share of undecided conjuncts."""
        entries = token.undecided_entries()

        def rank(candidate: int) -> tuple[int, int, int]:
            weight = sum(len(entry.conjuncts[candidate]) for entry in entries)
            return (-weight, -self._ownership[candidate], candidate)

        return min(candidates, key=rank)

    def next_hop(self, current: int, destination: int) -> int:
        """Direct delivery."""
        return destination

    def termination_recipients(self, current: int) -> tuple[int, ...]:
        """Every other process, in index order (as round-robin-token)."""
        return tuple(j for j in range(self.num_processes) if j != current)

    def forward_termination(self, current: int, origin: int) -> tuple[int, ...]:
        """Nothing to forward: termination is broadcast point-to-point."""
        return ()

    def verdict_recipients(self, current: int) -> tuple[int, ...]:
        """No verdict gossip."""
        return ()

    def forward_verdict(self, current: int, origin: int) -> tuple[int, ...]:
        """No verdict gossip."""
        return ()

    def describe(self) -> dict[str, object]:
        """Metadata describing this topology."""
        return {
            "name": self.name,
            "routing": "direct, ranked by per-process conjunct ownership",
            "termination": "point-to-point broadcast",
            "verdicts": "none",
        }
