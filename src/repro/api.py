"""The supported public API of the repro package, in one curated module.

Everything a user of this reproduction needs — compiling LTL3 monitors,
running registered scenarios on any backend, deploying the cluster runtime,
describing faults and network conditions — is re-exported here under one
stable namespace::

    import repro.api as repro_api

    automaton = repro_api.compile_formula("F(P0.p & P1.q)", atoms=["P0.p", "P1.q"])
    rows = repro_api.run_scenario("paper-default", repro_api.ExperimentScale())
    rows = repro_api.run_cluster("paper-default", repro_api.ExperimentScale(
        process_counts=(3,), events_per_process=4, replications=1))

``repro.api.__all__`` *is* the compatibility contract: names listed here
keep working across releases, while deeper module paths may move (moved
ones keep working for one release behind a :class:`DeprecationWarning`
shim).  The generated reference in ``docs/api.md`` is checked against
``__all__`` by the documentation tests, so surface and docs cannot drift
apart.
"""

from __future__ import annotations

from .cluster.coordinator import ClusterError, ClusterReport, cluster_monitored_run
from .cluster.manifest import ClusterManifest, Endpoint, load_manifest, loopback_manifest
from .cluster.spec import RunSpec
from .coordination import TOPOLOGIES, build_topology
from .experiments.engine import BACKENDS, ExecutionConfig
from .experiments.engine import run_scenario as _run_scenario
from .experiments.harness import DEFAULT_SCALE, ExperimentScale
from .experiments.properties import PROPERTY_NAMES, case_study_monitor, property_formula
from .faults import CrashSpec, FaultPlan, format_fault_plan, parse_fault_plan
from .fleet import FleetConfig, FleetReport, TenantSpec, synthetic_fleet
from .fleet import run_fleet as _run_fleet
from .fleet.sinks import VerdictSink
from .ltl import build_monitor
from .ltl.monitor import MonitorAutomaton
from .ltl.verdict import Verdict
from .runtime.runner import TRANSPORTS, RuntimeReport
from .runtime.runner import run_streaming as _run_streaming
from .scenarios import (
    GridPoint,
    Scenario,
    SweepGrid,
    get_scenario,
    list_scenarios,
    scenario_names,
)

__all__ = [
    # monitor synthesis
    "compile_formula",
    "MonitorAutomaton",
    "Verdict",
    "PROPERTY_NAMES",
    "property_formula",
    "case_study_monitor",
    # scenario catalogue
    "Scenario",
    "SweepGrid",
    "GridPoint",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    # execution
    "BACKENDS",
    "TRANSPORTS",
    "TOPOLOGIES",
    "build_topology",
    "ExecutionConfig",
    "ExperimentScale",
    "DEFAULT_SCALE",
    "run_scenario",
    "run_cluster",
    "RuntimeReport",
    # fleet
    "TenantSpec",
    "FleetConfig",
    "FleetReport",
    "run_fleet",
    "synthetic_fleet",
    # faults
    "FaultPlan",
    "CrashSpec",
    "parse_fault_plan",
    "format_fault_plan",
    # cluster deployment
    "ClusterManifest",
    "Endpoint",
    "load_manifest",
    "loopback_manifest",
    "RunSpec",
    "ClusterReport",
    "ClusterError",
    "cluster_monitored_run",
]


def compile_formula(
    formula: object,
    atoms: list[str] | None = None,
    *,
    method: str = "automaton",
    minimize: bool = True,
) -> MonitorAutomaton:
    """Compile an LTL formula (text or AST) into an LTL3 monitor automaton.

    The stable name for :func:`repro.ltl.build_monitor`: parses *formula*
    if it is a string, closes the alphabet over *atoms* (default: the
    propositions occurring in the formula) and synthesises the three-valued
    monitor (⊤ / ⊥ / ?) via the Büchi-product construction.
    """
    return build_monitor(formula, atoms, method=method, minimize=minimize)


def run_scenario(
    scenario: Scenario | str,
    scale: ExperimentScale,
    grid: SweepGrid | None = None,
    *,
    config: ExecutionConfig | None = None,
) -> list[dict[str, float]]:
    """Run a scenario (by value or registered name) over its sweep grid.

    The stable entry point of the sweep engine
    (:func:`repro.experiments.engine.run_scenario`): expands the grid,
    derives one deterministic seed per (point × replication) cell, executes
    every cell on ``config.backend`` and aggregates replications into
    result rows.
    """
    return _run_scenario(scenario, scale, grid=grid, config=config)


def run_cluster(
    scenario: Scenario | str,
    scale: ExperimentScale,
    grid: SweepGrid | None = None,
    *,
    manifest: ClusterManifest | str | None = None,
    fault_plan: FaultPlan | None = None,
) -> list[dict[str, float]]:
    """Run a registered scenario on the multi-process cluster backend.

    Shorthand for :func:`run_scenario` with
    ``config=ExecutionConfig(backend="cluster", ...)``: every cell spawns
    one OS process per monitor (addresses from *manifest*, or freshly
    allocated loopback ports), distributes the run spec, and collects the
    verdicts and metrics back through the coordinator.
    """
    config = ExecutionConfig(
        backend="cluster", manifest=manifest, fault_plan=fault_plan
    )
    return _run_scenario(scenario, scale, grid=grid, config=config)


def run_fleet(config: FleetConfig, *, sink: VerdictSink | None = None) -> FleetReport:
    """Run a multi-tenant monitoring fleet to completion.

    The stable name for :func:`repro.fleet.run_fleet`: admits the tenants of
    *config* (rejecting everything beyond ``max_tenants``), hash-partitions
    them across ``config.shards`` worker processes, runs every tenant
    session concurrently within its shard, and returns the merged
    :class:`FleetReport` with the per-tenant results in tenant-id order.
    """
    return _run_fleet(config, sink=sink)


def run_streaming(*args, **kwargs) -> RuntimeReport:
    """Run one computation on the asyncio streaming backend.

    The stable name for :func:`repro.runtime.runner.run_streaming`; see
    that function for the full parameter list.
    """
    return _run_streaming(*args, **kwargs)
