"""The decentralized LTL3 monitoring algorithm and its reference baselines.

Public API
----------
* :class:`DecentralizedMonitor` — monitor process ``M_i`` (the contribution).
* :func:`run_decentralized` / :class:`DecentralizedResult` — replay a finished
  computation through a full set of monitors over a loopback network.
* :class:`LatticeOracle` / :class:`OracleResult` — the Chapter 3 oracle used
  as ground truth for soundness and completeness.
* :class:`CentralizedMonitor` — the centralized online baseline.
* :class:`LoopbackNetwork` — in-process transport between monitors.
* :class:`MonitorNode` / :class:`Transport` / :class:`MonitorNetwork` — the
  backend-agnostic protocols every monitoring backend (loopback, simulator,
  asyncio runtime) programs against.
* :class:`DelayModel` and friends — backend-agnostic message-delay models
  shared by the simulated and streaming networks.
* Message types: :class:`Token`, :class:`TokenEntry`, :class:`TerminationNotice`.
"""

from .centralized import CentralizedMonitor, CentralizedResult
from .delays import (
    BurstyDelay,
    DelayModel,
    GaussianDelay,
    LossyRetransmitDelay,
    PartitionDelay,
)
from .global_view import GlobalView, ViewStatus
from .messages import TerminationNotice, Token, TokenEntry
from .monitor import DecentralizedMonitor, MonitorMetrics
from .oracle import LatticeOracle, OracleResult
from .runner import DecentralizedResult, run_decentralized
from .transport import LoopbackNetwork, MonitorNetwork, MonitorNode, Transport

__all__ = [
    "CentralizedMonitor",
    "CentralizedResult",
    "GlobalView",
    "ViewStatus",
    "TerminationNotice",
    "Token",
    "TokenEntry",
    "DecentralizedMonitor",
    "MonitorMetrics",
    "LatticeOracle",
    "OracleResult",
    "DecentralizedResult",
    "run_decentralized",
    "LoopbackNetwork",
    "Transport",
    "MonitorNode",
    "MonitorNetwork",
    "DelayModel",
    "GaussianDelay",
    "LossyRetransmitDelay",
    "PartitionDelay",
    "BurstyDelay",
]
