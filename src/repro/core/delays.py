"""Backend-agnostic message-delay models shared by both monitoring backends.

The discrete-event simulator (:mod:`repro.sim.network`) and the asyncio
streaming runtime (:mod:`repro.runtime.transport`) deliver monitor-to-monitor
messages through very different machinery — a priority queue of timed
callbacks versus real asyncio tasks and sockets — but the *latency semantics*
of a network condition (how long a message sent "now" takes to arrive) are
the same on both.  This module holds that shared piece: a
:class:`DelayModel` maps a send instant to an absolute delivery instant,
drawing any randomness from its own seeded :class:`random.Random`, so a fixed
seed produces the same delay sequence no matter which backend consumes it.

Four conditions are provided, mirroring the declarative network models of
:mod:`repro.scenarios.network`:

* :class:`GaussianDelay` — base latency with optional gaussian jitter (the
  paper's reliable WiFi testbed; zero jitter gives fixed-latency links).
* :class:`LossyRetransmitDelay` — each attempt is lost with a fixed
  probability and retransmitted after a timeout (stop-and-wait), so delivery
  is delayed by ``retransmissions x timeout`` but never fails.
* :class:`PartitionDelay` — cross-group messages that would arrive inside an
  open partition window are held until the window heals.
* :class:`BurstyDelay` — a duty-cycled medium that only flushes at periodic
  burst instants.
* :class:`AsymmetricLatencyMatrix` — per-ordered-pair latency/jitter, so the
  A→B direction of a link need not behave like B→A.
* :class:`MultiPartitionDelay` — a timed sequence of partition *phases*,
  each with its own explicit grouping of processes (generalizing the single
  round-robin partition of :class:`PartitionDelay`).

Delay models say nothing about FIFO ordering: both backends clamp delivery
times per (sender, receiver) channel themselves, so models never have to
think about reordering.  Behaviour-specific counters (retransmissions, held
messages, bursts) are exposed through :meth:`DelayModel.extra_stats` and end
up in simulation/runtime reports either way.
"""

from __future__ import annotations

import math
import random
from collections.abc import Mapping
from typing import Protocol, runtime_checkable

__all__ = [
    "DelayModel",
    "GaussianDelay",
    "LossyRetransmitDelay",
    "PartitionDelay",
    "BurstyDelay",
    "AsymmetricLatencyMatrix",
    "MultiPartitionDelay",
]

#: a multi-partition schedule: ordered ``(start, end, groups)`` phases where
#: ``groups`` is a tuple of disjoint process-id tuples; processes not listed
#: in any group of a phase share one implicit "rest" group
PartitionPhase = tuple[float, float, tuple[tuple[int, ...], ...]]


@runtime_checkable
class DelayModel(Protocol):
    """Maps a send instant to a delivery instant, for any backend."""

    def delivery_time(self, now: float, sender: int, target: int) -> float:
        """Absolute arrival time of a message sent at *now*."""

    def extra_stats(self) -> dict[str, float]:
        """Behaviour-specific counters merged into run reports."""


class GaussianDelay:
    """Base latency with optional gaussian jitter (reliable links).

    With ``jitter == 0`` no random numbers are drawn at all, giving
    deterministic constant-latency links.
    """

    def __init__(self, latency: float = 0.05, jitter: float = 0.0, seed: int | None = None) -> None:
        if latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be non-negative")
        self.latency = latency
        self.jitter = jitter
        self._rng = random.Random(seed)

    def _sample_latency(self) -> float:
        if self.jitter <= 0:
            return self.latency
        return max(0.0, self._rng.gauss(self.latency, self.jitter))

    def delivery_time(self, now: float, sender: int, target: int) -> float:
        """Deliver after one gaussian latency sample."""
        return now + self._sample_latency()

    def extra_stats(self) -> dict[str, float]:
        """No behaviour-specific counters for plain gaussian latency."""
        return {}


class LossyRetransmitDelay(GaussianDelay):
    """Lossy medium with stop-and-wait retransmission (reliable overall).

    Each transmission attempt is dropped with ``loss_probability``; the
    sender retransmits after ``retransmit_timeout``.  ``max_retransmits``
    bounds the retries so delivery stays guaranteed (the final attempt always
    goes through), matching the algorithm's reliable-channel assumption while
    modelling the cost of loss as added delay and retransmission traffic.
    """

    def __init__(
        self,
        latency: float = 0.05,
        jitter: float = 0.0,
        seed: int | None = None,
        loss_probability: float = 0.2,
        retransmit_timeout: float = 0.25,
        max_retransmits: int = 25,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if retransmit_timeout < 0:
            raise ValueError("retransmit_timeout must be non-negative")
        super().__init__(latency=latency, jitter=jitter, seed=seed)
        self.loss_probability = loss_probability
        self.retransmit_timeout = retransmit_timeout
        self.max_retransmits = max_retransmits
        self.retransmissions = 0

    def delivery_time(self, now: float, sender: int, target: int) -> float:
        """Deliver after the lost attempts' timeouts plus one latency."""
        time = now
        attempts = 0
        while (
            attempts < self.max_retransmits
            and self._rng.random() < self.loss_probability
        ):
            attempts += 1
            time += self.retransmit_timeout
        self.retransmissions += attempts
        return time + self._sample_latency()

    def extra_stats(self) -> dict[str, float]:
        """Total retransmission attempts across the run."""
        return {"retransmissions": float(self.retransmissions)}


class PartitionDelay(GaussianDelay):
    """Partition/heal cycles between round-robin process groups.

    Processes are assigned round-robin to ``num_groups`` groups
    (``process % num_groups``).  While a window ``(start, end)`` is open,
    messages *between different groups* whose arrival would land inside the
    window are held and delivered only after the partition heals at ``end``;
    intra-group traffic is unaffected.
    """

    def __init__(
        self,
        latency: float = 0.05,
        jitter: float = 0.0,
        seed: int | None = None,
        windows: tuple[tuple[float, float], ...] = ((2.0, 8.0),),
        num_groups: int = 2,
    ) -> None:
        for start, end in windows:
            if end <= start or start < 0:
                raise ValueError(f"invalid partition window ({start}, {end})")
        if num_groups < 2:
            raise ValueError("a partition needs at least two groups")
        super().__init__(latency=latency, jitter=jitter, seed=seed)
        self.windows = tuple(sorted(windows))
        self.num_groups = num_groups
        self.held_messages = 0

    def group_of(self, process: int) -> int:
        """Partition group of *process* (round-robin assignment)."""
        return process % self.num_groups

    def delivery_time(self, now: float, sender: int, target: int) -> float:
        """Hold cross-group messages landing in an open window until heal."""
        sample = self._sample_latency()
        tentative = now + sample
        if self.group_of(sender) == self.group_of(target):
            return tentative
        for start, end in self.windows:
            if start <= tentative < end:
                self.held_messages += 1
                return end + sample
        return tentative

    def extra_stats(self) -> dict[str, float]:
        """Messages held back by partition windows."""
        return {"held_messages": float(self.held_messages)}


class AsymmetricLatencyMatrix(GaussianDelay):
    """Per-ordered-pair latencies: A→B need not behave like B→A.

    The effective base latency of the ordered pair ``(sender, target)`` is
    either an explicit entry of ``pair_latencies`` or derived from the
    direction-sensitive ring formula::

        base_latency * (1 + skew * ((target - sender) % ring) / ring)

    ``(target - sender) % ring`` differs from ``(sender - target) % ring``
    for every non-opposite pair, so any positive ``skew`` makes the matrix
    genuinely asymmetric without having to know the process count up front.
    Jitter (when non-zero) is gaussian around the pair's base latency.
    """

    def __init__(
        self,
        base_latency: float = 0.05,
        jitter: float = 0.0,
        seed: int | None = None,
        skew: float = 1.5,
        ring: int = 8,
        pair_latencies: Mapping[tuple[int, int], float] | None = None,
    ) -> None:
        if base_latency < 0 or skew < 0:
            raise ValueError("base_latency and skew must be non-negative")
        if ring < 2:
            raise ValueError("ring must be at least 2")
        super().__init__(latency=base_latency, jitter=jitter, seed=seed)
        self.base_latency = base_latency
        self.skew = skew
        self.ring = ring
        self.pair_latencies = dict(pair_latencies or {})
        for pair, value in self.pair_latencies.items():
            if value < 0:
                raise ValueError(f"negative latency for pair {pair}")

    def latency_for(self, sender: int, target: int) -> float:
        """The deterministic base latency of the ordered pair."""
        explicit = self.pair_latencies.get((sender, target))
        if explicit is not None:
            return explicit
        step = (target - sender) % self.ring
        return self.base_latency * (1.0 + self.skew * step / self.ring)

    def delivery_time(self, now: float, sender: int, target: int) -> float:
        """Deliver after the ordered pair's latency (plus jitter, if any)."""
        base = self.latency_for(sender, target)
        if self.jitter <= 0:
            return now + base
        return now + max(0.0, self._rng.gauss(base, self.jitter))

    def extra_stats(self) -> dict[str, float]:
        """No behaviour-specific counters: the matrix only shapes latency."""
        return {}


class MultiPartitionDelay(GaussianDelay):
    """A timed sequence of partition phases with explicit process groups.

    Generalizes :class:`PartitionDelay`: instead of one round-robin grouping
    shared by every window, each phase ``(start, end, groups)`` carries its
    own partition sets.  A message between processes separated by an open
    phase is held until that phase heals; the healed arrival may fall into a
    *later* phase, in which case it is held again (the schedule is walked in
    order).  Processes not named by any group of a phase share one implicit
    "rest" group, so schedules stay valid for any process count.
    """

    def __init__(
        self,
        latency: float = 0.05,
        jitter: float = 0.0,
        seed: int | None = None,
        schedule: tuple[PartitionPhase, ...] = (
            (1.5, 4.5, ((0, 1),)),
            (6.0, 9.0, ((0, 2), (1,))),
        ),
    ) -> None:
        phases = tuple(sorted(schedule, key=lambda phase: phase[0]))
        previous_end = 0.0
        for start, end, groups in phases:
            if start < 0 or end <= start:
                raise ValueError(f"invalid partition phase window ({start}, {end})")
            if start < previous_end:
                raise ValueError("partition phases must not overlap")
            previous_end = end
            named: set[int] = set()
            for group in groups:
                if not group:
                    raise ValueError("partition groups must be non-empty")
                if named & set(group):
                    raise ValueError("partition groups must be disjoint")
                named |= set(group)
        super().__init__(latency=latency, jitter=jitter, seed=seed)
        self.schedule = phases
        self.held_messages = 0

    @staticmethod
    def derive_schedule(
        schedule: tuple[PartitionPhase, ...],
        seed: int | None,
        jitter: float = 0.25,
    ) -> tuple[PartitionPhase, ...]:
        """Derive a per-seed variant of *schedule* with shifted phase starts.

        Each phase keeps its duration and groups but its start is shifted by
        a uniform offset in ``±jitter * duration``, drawn from a dedicated
        :class:`random.Random` keyed on *seed* — so every replication of a
        sweep sees a deterministically different partition timing instead of
        the identical wall-clock phases.  Shifts are clamped so phases stay
        non-negative, ordered and non-overlapping (each phase moves within
        the slack to its neighbours, split evenly).  ``seed=None`` or a
        non-positive *jitter* returns the schedule unchanged.
        """
        if seed is None or jitter <= 0 or not schedule:
            return tuple(schedule)
        phases = tuple(sorted(schedule, key=lambda phase: phase[0]))
        rng = random.Random(f"multi-partition-schedule:{seed}")
        derived: list[PartitionPhase] = []
        previous_end = 0.0
        for index, (start, end, groups) in enumerate(phases):
            duration = end - start
            next_start = (
                phases[index + 1][0] if index + 1 < len(phases) else math.inf
            )
            # half the gap to each neighbour is this phase's movement slack
            low = max(-jitter * duration, (previous_end - start) / 2.0, -start)
            high = min(jitter * duration, (next_start - end) / 2.0)
            shift = rng.uniform(low, high) if high > low else 0.0
            derived.append((start + shift, end + shift, groups))
            previous_end = end + shift
        return tuple(derived)

    @staticmethod
    def _group_of(process: int, groups: tuple[tuple[int, ...], ...]) -> int:
        """The phase-local group index of *process* (-1 = the rest group)."""
        for index, group in enumerate(groups):
            if process in group:
                return index
        return -1

    def separated(self, sender: int, target: int, phase: PartitionPhase) -> bool:
        """Whether *phase* puts the two processes in different groups."""
        _, _, groups = phase
        return self._group_of(sender, groups) != self._group_of(target, groups)

    def delivery_time(self, now: float, sender: int, target: int) -> float:
        """Walk the phase schedule, holding at every separating phase hit."""
        sample = self._sample_latency()
        tentative = now + sample
        for phase in self.schedule:
            start, end, _ = phase
            if start <= tentative < end and self.separated(sender, target, phase):
                self.held_messages += 1
                tentative = end + sample
        return tentative

    def extra_stats(self) -> dict[str, float]:
        """Messages held back by partition phases."""
        return {"held_messages": float(self.held_messages)}


class BurstyDelay(GaussianDelay):
    """Duty-cycled medium flushing messages only at periodic burst instants.

    A message sent at time ``t`` reaches the air interface after the base
    latency and is then delivered at the next multiple of ``period`` — the
    medium wakes up every ``period`` seconds and transmits everything queued
    since the previous burst.
    """

    def __init__(
        self,
        latency: float = 0.01,
        jitter: float = 0.0,
        seed: int | None = None,
        period: float = 0.75,
    ) -> None:
        if period <= 0:
            raise ValueError("burst period must be positive")
        super().__init__(latency=latency, jitter=jitter, seed=seed)
        self.period = period
        self.bursts_used = 0
        self._last_burst_tick = -1

    def delivery_time(self, now: float, sender: int, target: int) -> float:
        """Quantize delivery up to the next burst instant of the medium."""
        ready = now + self._sample_latency()
        tick = math.ceil(ready / self.period)
        if tick != self._last_burst_tick:
            self._last_burst_tick = tick
            self.bursts_used += 1
        return tick * self.period

    def extra_stats(self) -> dict[str, float]:
        """Distinct burst instants that carried at least one message."""
        return {"bursts_used": float(self.bursts_used)}
