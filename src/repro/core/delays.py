"""Backend-agnostic message-delay models shared by both monitoring backends.

The discrete-event simulator (:mod:`repro.sim.network`) and the asyncio
streaming runtime (:mod:`repro.runtime.transport`) deliver monitor-to-monitor
messages through very different machinery — a priority queue of timed
callbacks versus real asyncio tasks and sockets — but the *latency semantics*
of a network condition (how long a message sent "now" takes to arrive) are
the same on both.  This module holds that shared piece: a
:class:`DelayModel` maps a send instant to an absolute delivery instant,
drawing any randomness from its own seeded :class:`random.Random`, so a fixed
seed produces the same delay sequence no matter which backend consumes it.

Four conditions are provided, mirroring the declarative network models of
:mod:`repro.scenarios.network`:

* :class:`GaussianDelay` — base latency with optional gaussian jitter (the
  paper's reliable WiFi testbed; zero jitter gives fixed-latency links).
* :class:`LossyRetransmitDelay` — each attempt is lost with a fixed
  probability and retransmitted after a timeout (stop-and-wait), so delivery
  is delayed by ``retransmissions x timeout`` but never fails.
* :class:`PartitionDelay` — cross-group messages that would arrive inside an
  open partition window are held until the window heals.
* :class:`BurstyDelay` — a duty-cycled medium that only flushes at periodic
  burst instants.

Delay models say nothing about FIFO ordering: both backends clamp delivery
times per (sender, receiver) channel themselves, so models never have to
think about reordering.  Behaviour-specific counters (retransmissions, held
messages, bursts) are exposed through :meth:`DelayModel.extra_stats` and end
up in simulation/runtime reports either way.
"""

from __future__ import annotations

import math
import random
from typing import Protocol, runtime_checkable

__all__ = [
    "DelayModel",
    "GaussianDelay",
    "LossyRetransmitDelay",
    "PartitionDelay",
    "BurstyDelay",
]


@runtime_checkable
class DelayModel(Protocol):
    """Maps a send instant to a delivery instant, for any backend."""

    def delivery_time(self, now: float, sender: int, target: int) -> float:
        """Absolute arrival time of a message sent at *now*."""

    def extra_stats(self) -> dict[str, float]:
        """Behaviour-specific counters merged into run reports."""


class GaussianDelay:
    """Base latency with optional gaussian jitter (reliable links).

    With ``jitter == 0`` no random numbers are drawn at all, giving
    deterministic constant-latency links.
    """

    def __init__(self, latency: float = 0.05, jitter: float = 0.0, seed: int | None = None) -> None:
        if latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be non-negative")
        self.latency = latency
        self.jitter = jitter
        self._rng = random.Random(seed)

    def _sample_latency(self) -> float:
        if self.jitter <= 0:
            return self.latency
        return max(0.0, self._rng.gauss(self.latency, self.jitter))

    def delivery_time(self, now: float, sender: int, target: int) -> float:
        return now + self._sample_latency()

    def extra_stats(self) -> dict[str, float]:
        return {}


class LossyRetransmitDelay(GaussianDelay):
    """Lossy medium with stop-and-wait retransmission (reliable overall).

    Each transmission attempt is dropped with ``loss_probability``; the
    sender retransmits after ``retransmit_timeout``.  ``max_retransmits``
    bounds the retries so delivery stays guaranteed (the final attempt always
    goes through), matching the algorithm's reliable-channel assumption while
    modelling the cost of loss as added delay and retransmission traffic.
    """

    def __init__(
        self,
        latency: float = 0.05,
        jitter: float = 0.0,
        seed: int | None = None,
        loss_probability: float = 0.2,
        retransmit_timeout: float = 0.25,
        max_retransmits: int = 25,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if retransmit_timeout < 0:
            raise ValueError("retransmit_timeout must be non-negative")
        super().__init__(latency=latency, jitter=jitter, seed=seed)
        self.loss_probability = loss_probability
        self.retransmit_timeout = retransmit_timeout
        self.max_retransmits = max_retransmits
        self.retransmissions = 0

    def delivery_time(self, now: float, sender: int, target: int) -> float:
        time = now
        attempts = 0
        while (
            attempts < self.max_retransmits
            and self._rng.random() < self.loss_probability
        ):
            attempts += 1
            time += self.retransmit_timeout
        self.retransmissions += attempts
        return time + self._sample_latency()

    def extra_stats(self) -> dict[str, float]:
        return {"retransmissions": float(self.retransmissions)}


class PartitionDelay(GaussianDelay):
    """Partition/heal cycles between round-robin process groups.

    Processes are assigned round-robin to ``num_groups`` groups
    (``process % num_groups``).  While a window ``(start, end)`` is open,
    messages *between different groups* whose arrival would land inside the
    window are held and delivered only after the partition heals at ``end``;
    intra-group traffic is unaffected.
    """

    def __init__(
        self,
        latency: float = 0.05,
        jitter: float = 0.0,
        seed: int | None = None,
        windows: tuple[tuple[float, float], ...] = ((2.0, 8.0),),
        num_groups: int = 2,
    ) -> None:
        for start, end in windows:
            if end <= start or start < 0:
                raise ValueError(f"invalid partition window ({start}, {end})")
        if num_groups < 2:
            raise ValueError("a partition needs at least two groups")
        super().__init__(latency=latency, jitter=jitter, seed=seed)
        self.windows = tuple(sorted(windows))
        self.num_groups = num_groups
        self.held_messages = 0

    def group_of(self, process: int) -> int:
        """Partition group of *process* (round-robin assignment)."""
        return process % self.num_groups

    def delivery_time(self, now: float, sender: int, target: int) -> float:
        sample = self._sample_latency()
        tentative = now + sample
        if self.group_of(sender) == self.group_of(target):
            return tentative
        for start, end in self.windows:
            if start <= tentative < end:
                self.held_messages += 1
                return end + sample
        return tentative

    def extra_stats(self) -> dict[str, float]:
        return {"held_messages": float(self.held_messages)}


class BurstyDelay(GaussianDelay):
    """Duty-cycled medium flushing messages only at periodic burst instants.

    A message sent at time ``t`` reaches the air interface after the base
    latency and is then delivered at the next multiple of ``period`` — the
    medium wakes up every ``period`` seconds and transmits everything queued
    since the previous burst.
    """

    def __init__(
        self,
        latency: float = 0.01,
        jitter: float = 0.0,
        seed: int | None = None,
        period: float = 0.75,
    ) -> None:
        if period <= 0:
            raise ValueError("burst period must be positive")
        super().__init__(latency=latency, jitter=jitter, seed=seed)
        self.period = period
        self.bursts_used = 0
        self._last_burst_tick = -1

    def delivery_time(self, now: float, sender: int, target: int) -> float:
        ready = now + self._sample_latency()
        tick = math.ceil(ready / self.period)
        if tick != self._last_burst_tick:
            self._last_burst_tick = tick
            self.bursts_used += 1
        return tick * self.period

    def extra_stats(self) -> dict[str, float]:
        return {"bursts_used": float(self.bursts_used)}
