"""Convenience runner: replay a finished computation through the monitors.

:func:`run_decentralized` wires one :class:`DecentralizedMonitor` per process
to a :class:`LoopbackNetwork`, feeds the computation's events in timestamp
order, delivers monitoring messages, signals termination and returns an
aggregated :class:`DecentralizedResult`.  This is the API used by the library
examples and the correctness tests; the experiment harness uses the
discrete-event simulator of :mod:`repro.sim` instead, which adds network
latency and time-based metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..coordination import build_topology
from ..distributed.computation import Computation
from ..ltl.monitor import MonitorAutomaton, build_monitor
from ..ltl.parser import parse
from ..ltl.predicates import PropositionRegistry
from ..ltl.verdict import Verdict
from .monitor import DecentralizedMonitor, MonitorMetrics
from .transport import LoopbackNetwork

__all__ = ["DecentralizedResult", "run_decentralized"]


@dataclass
class DecentralizedResult:
    """Aggregated outcome of a decentralized monitoring run."""

    monitors: list[DecentralizedMonitor]
    network: LoopbackNetwork

    # -- verdicts --------------------------------------------------------
    @property
    def declared_verdicts(self) -> frozenset[Verdict]:
        """Conclusive verdicts (⊤/⊥) declared by any monitor."""
        verdicts: set[Verdict] = set()
        for monitor in self.monitors:
            verdicts |= monitor.declared_verdicts
        return frozenset(verdicts)

    @property
    def reported_verdicts(self) -> frozenset[Verdict]:
        """All verdicts reported by any monitor (declared + live views)."""
        verdicts: set[Verdict] = set()
        for monitor in self.monitors:
            verdicts |= monitor.reported_verdicts()
        return frozenset(verdicts)

    @property
    def declared_states(self) -> frozenset[int]:
        """Automaton states any monitor declared a conclusive verdict from."""
        states: set[int] = set()
        for monitor in self.monitors:
            states |= monitor.declared_states
        return frozenset(states)

    # -- metrics -----------------------------------------------------------
    #
    # One consistent counter set.  ``total_messages`` is the network-level
    # count; it equals ``total_monitor_messages`` (the sum of every monitor's
    # ``MonitorMetrics.messages_sent``) on the reliable loopback transport,
    # and decomposes exactly into token + termination (+ digest) messages.
    # The consistency is pinned by a regression test so the topology
    # frontier's denominators can never silently disagree.
    @property
    def total_messages(self) -> int:
        """Monitoring messages put on the network (all kinds).

        Equals :attr:`total_monitor_messages` on the reliable loopback
        network, and decomposes as ``total_token_messages +
        total_termination_messages + total_digest_messages``.
        """
        return self.network.messages_sent

    @property
    def total_monitor_messages(self) -> int:
        """Sum of every monitor's ``MonitorMetrics.messages_sent``."""
        return sum(m.metrics.messages_sent for m in self.monitors)

    @property
    def total_token_messages(self) -> int:
        """Token messages sent across every monitor."""
        return sum(m.metrics.token_messages_sent for m in self.monitors)

    @property
    def total_termination_messages(self) -> int:
        """Termination notices sent across every monitor."""
        return sum(m.metrics.termination_messages_sent for m in self.monitors)

    @property
    def total_digest_messages(self) -> int:
        """Topology digest messages (gossip forwards/announcements) sent."""
        return sum(m.metrics.digest_messages_sent for m in self.monitors)

    @property
    def total_views_created(self) -> int:
        """Global views created across every monitor."""
        return sum(m.metrics.views_created for m in self.monitors)

    @property
    def total_delayed_events(self) -> int:
        """Events whose processing waited on remote state, summed."""
        return sum(m.metrics.delayed_events for m in self.monitors)

    @property
    def metrics_by_monitor(self) -> list[MonitorMetrics]:
        """Per-monitor counter snapshots, indexed by process."""
        return [m.metrics for m in self.monitors]

    def is_quiescent(self) -> bool:
        """No in-flight messages and no parked tokens anywhere."""
        return self.network.pending == 0 and all(
            not m.waiting_tokens for m in self.monitors
        )

    def summary(self) -> dict[str, object]:
        """Flat run summary (verdicts and headline counters)."""
        return {
            "verdicts": sorted(str(v) for v in self.reported_verdicts),
            "declared": sorted(str(v) for v in self.declared_verdicts),
            "messages": self.total_messages,
            "token_messages": self.total_token_messages,
            "termination_messages": self.total_termination_messages,
            "digest_messages": self.total_digest_messages,
            "views_created": self.total_views_created,
            "delayed_events": self.total_delayed_events,
        }


def run_decentralized(
    computation: Computation,
    property_or_automaton: MonitorAutomaton | str,
    registry: PropositionRegistry,
    deliver_after_each_event: bool = True,
    max_views_per_state: int | None = None,
    compiled_kernel: bool = True,
    topology: str = "round-robin-token",
) -> DecentralizedResult:
    """Monitor a finished computation with the decentralized algorithm.

    Parameters
    ----------
    computation:
        The distributed execution to monitor (events already carry vector
        clocks and timestamps).
    property_or_automaton:
        Either a ready-made :class:`MonitorAutomaton` or an LTL formula
        string, which is compiled with the registry's propositions as the
        alphabet.
    registry:
        The proposition registry binding atoms to processes.
    deliver_after_each_event:
        When ``True`` (default) monitoring messages are delivered eagerly
        after every program event — the "fast network" regime.  When
        ``False`` all program events are fed first and monitoring messages
        are only exchanged afterwards, maximising monitor-side queuing.
    max_views_per_state:
        Optional exploration budget forwarded to every monitor (see
        :class:`repro.core.monitor.DecentralizedMonitor`).
    compiled_kernel:
        Forwarded to every monitor as ``use_compiled_kernel`` (bitmask/dense
        table stepping, default on).
    topology:
        Name of the :mod:`repro.coordination` routing policy shared by the
        run's monitors (default ``round-robin-token``, the pre-refactor
        behaviour).
    """
    if isinstance(property_or_automaton, str):
        automaton = build_monitor(
            parse(property_or_automaton), atoms=registry.names
        )
    else:
        automaton = property_or_automaton

    n = computation.num_processes
    network = LoopbackNetwork()
    initial_letters = [
        registry.local_letter(i, computation.initial_states[i]) for i in range(n)
    ]
    route = build_topology(topology, n, registry=registry)
    monitors = [
        DecentralizedMonitor(
            process=i,
            num_processes=n,
            automaton=automaton,
            registry=registry,
            initial_letters=initial_letters,
            transport=network,
            max_views_per_state=max_views_per_state,
            use_compiled_kernel=compiled_kernel,
            topology=route,
        )
        for i in range(n)
    ]
    for i, monitor in enumerate(monitors):
        network.register(i, monitor)
    for monitor in monitors:
        monitor.start()
    network.deliver_all()

    events = sorted(
        computation.all_events(), key=lambda e: (e.timestamp, e.process, e.sn)
    )
    for event in events:
        monitors[event.process].local_event(event)
        if deliver_after_each_event:
            network.deliver_all()
    network.deliver_all()

    for monitor in monitors:
        monitor.local_termination()
    network.deliver_all()
    # termination may release parked tokens that in turn spawn new messages
    for _ in range(n + 1):
        if network.pending == 0:
            break
        network.deliver_all()

    return DecentralizedResult(monitors=monitors, network=network)
