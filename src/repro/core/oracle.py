"""The lattice oracle: ground truth for soundness and completeness.

Chapter 3 formalises the decentralized-monitoring problem against an oracle
that (magically) constructs the computation lattice and evaluates the LTL3
monitor along *every* path.  This module implements that oracle directly —
it is used by the test-suite to validate the decentralized algorithm and by
the experiments as a reference, never by the monitors themselves.

The per-path evaluation is performed with a dynamic program over the lattice:
``reachable(C)`` is the set of automaton states reachable at cut ``C`` over
all paths from the bottom cut, computed level by level.  This avoids
enumerating the (potentially exponential) set of paths while producing
exactly the same verdict information.
"""

from __future__ import annotations

from collections.abc import Sequence

from dataclasses import dataclass

from ..distributed.computation import Computation, Cut
from ..distributed.lattice import ComputationLattice
from ..ltl.monitor import MonitorAutomaton
from ..ltl.predicates import PropositionRegistry
from ..ltl.verdict import Verdict

__all__ = ["OracleResult", "LatticeOracle"]


@dataclass
class OracleResult:
    """Summary of the oracle evaluation of one computation."""

    final_states: frozenset[int]
    verdicts: frozenset[Verdict]
    reachable: dict[Cut, frozenset[int]]
    pivot_cuts: frozenset[Cut]
    num_cuts: int
    num_paths: int

    @property
    def conclusive_verdicts(self) -> frozenset[Verdict]:
        """The final (\u22a4/\u22a5) verdicts among the observed ones."""
        return frozenset(v for v in self.verdicts if v.is_final)


class LatticeOracle:
    """Evaluates an LTL3 monitor over every path of the computation lattice."""

    def __init__(
        self,
        computation: Computation,
        automaton: MonitorAutomaton,
        registry: PropositionRegistry,
    ) -> None:
        self.computation = computation
        self.automaton = automaton
        self.registry = registry
        self.lattice = ComputationLattice.from_computation(computation)
        self._letters: dict[Cut, frozenset[str]] = {}

    # ------------------------------------------------------------------
    def letter_of(self, cut: Cut) -> frozenset[str]:
        """The letter (true propositions) of the global state at *cut*."""
        cut = tuple(cut)
        if cut not in self._letters:
            state = self.computation.global_state(cut)
            self._letters[cut] = self.registry.letter_of(state)
        return self._letters[cut]

    def evaluate_path(self, path: Sequence[Cut]) -> int:
        """Automaton state reached by running the trace of *path*."""
        state = self.automaton.initial_state
        for cut in path:
            state = self.automaton.step(state, self.letter_of(cut))
        return state

    def verdict_of_path(self, path: Sequence[Cut]) -> Verdict:
        """The LTL3 verdict of one maximal lattice path."""
        return self.automaton.verdict(self.evaluate_path(path))

    # ------------------------------------------------------------------
    def reachable_states(self) -> dict[Cut, frozenset[int]]:
        """For every cut the set of automaton states reachable over paths.

        The bottom cut is assigned ``δ(q0, letter(bottom))`` — i.e. the
        initial global state is the first letter of every trace, as in the
        problem statement of Chapter 3.
        """
        reachable: dict[Cut, set[int]] = {}
        bottom = self.lattice.bottom
        reachable[bottom] = {
            self.automaton.step(self.automaton.initial_state, self.letter_of(bottom))
        }
        for level in self.lattice.levels():
            for cut in level:
                if cut == bottom:
                    continue
                states: set[int] = set()
                letter = self.letter_of(cut)
                for predecessor in self.lattice.predecessors(cut):
                    for state in reachable.get(predecessor, ()):
                        states.add(self.automaton.step(state, letter))
                reachable[cut] = states
        return {cut: frozenset(states) for cut, states in reachable.items()}

    def pivot_cuts(self, reachable: dict[Cut, frozenset[int]] | None = None) -> set[Cut]:
        """Cuts where the automaton state changes relative to a predecessor
        (Definition 17 generalised to state sets)."""
        if reachable is None:
            reachable = self.reachable_states()
        pivots: set[Cut] = set()
        for cut in self.lattice.cuts():
            if cut == self.lattice.bottom:
                continue
            letter = self.letter_of(cut)
            for predecessor in self.lattice.predecessors(cut):
                for state in reachable[predecessor]:
                    if self.automaton.step(state, letter) != state:
                        pivots.add(cut)
                        break
                if cut in pivots:
                    break
        return pivots

    # ------------------------------------------------------------------
    def evaluate(self) -> OracleResult:
        """Run the full oracle evaluation."""
        reachable = self.reachable_states()
        final_states = reachable[self.lattice.top]
        verdicts = frozenset(self.automaton.verdict(s) for s in final_states)
        return OracleResult(
            final_states=frozenset(final_states),
            verdicts=verdicts,
            reachable=reachable,
            pivot_cuts=frozenset(self.pivot_cuts(reachable)),
            num_cuts=len(self.lattice),
            num_paths=self.lattice.count_paths(),
        )

    # ------------------------------------------------------------------
    def verdicts_by_path_enumeration(self, max_paths: int | None = None) -> frozenset[Verdict]:
        """Reference implementation enumerating paths one by one.

        Used in tests to validate :meth:`reachable_states`; ``max_paths``
        bounds the enumeration for safety.
        """
        verdicts: set[Verdict] = set()
        for index, path in enumerate(self.lattice.paths()):
            if max_paths is not None and index >= max_paths:
                break
            verdicts.add(self.verdict_of_path(path))
        return frozenset(verdicts)
