"""Message types exchanged between decentralized monitor processes.

Monitors communicate exclusively through these messages — the paper's
*tokens* plus termination notices.  A token carries one or more
:class:`TokenEntry` objects; each entry performs a distributed
least-consistent-cut search (the slicing primitive of Section 4.1) for one
possibly-enabled monitor transition, or collects the events needed to repair
an inconsistent global view.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping
from dataclasses import dataclass, field

__all__ = ["TokenEntry", "Token", "TerminationNotice", "VerdictAnnouncement"]

Letter = frozenset[str]

_token_ids = itertools.count(1)


@dataclass
class TokenEntry:
    """The state of the search carried out for one transition (or repair).

    The entry starts at the parent view's cut (``start_cut``) and advances
    process components monotonically until either a consistent cut
    satisfying the transition guard is found (``eval`` becomes ``True``) or
    a process terminates without ever satisfying its conjunct (``eval``
    becomes ``False``).  Along the way it records the letter and vector
    clock of **every** event it scanned, so the parent can later replay all
    interleavings inside the box ``[start_cut, cut]`` and fork a view for
    every automaton state reachable there (this is what makes the
    implementation sound by construction).

    Attributes
    ----------
    transition_id:
        The monitor transition being searched for, or ``None`` for a pure
        consistency-repair entry.
    guard:
        Conjunctive guard of the transition (empty for repair entries).
    conjuncts:
        Per-process split of the guard.
    start_cut:
        The parent view's (consistent) cut when the entry was created.
    cut:
        The cut constructed so far.
    depend:
        Component-wise maximum of the vector clocks of collected events; the
        cut is consistent when ``cut[j] >= depend[j]`` for all ``j``.
    min_positions:
        Lower bounds the cut must reach (used by repair entries to pull the
        view up to the vector clock of an out-of-order local event).
    satisfied:
        Whether each process's conjunct holds at its current ``cut`` position.
    letters:
        Letter at ``cut[j]`` for every process ``j`` the entry advanced.
    scanned_letters / scanned_vcs:
        Letters and vector clocks of every event scanned while advancing,
        keyed by process and sequence number — the data for the parent's
        box replay.
    eval:
        ``None`` while undecided, else ``True`` / ``False``.
    parked_on:
        Process whose *future* event the entry is waiting for, if any.
    """

    transition_id: int | None
    guard: Mapping[str, bool]
    conjuncts: list[dict[str, bool]]
    start_cut: list[int]
    cut: list[int]
    depend: list[int]
    min_positions: list[int]
    satisfied: list[bool]
    letters: dict[int, Letter] = field(default_factory=dict)
    scanned_letters: dict[int, dict[int, Letter]] = field(default_factory=dict)
    scanned_vcs: dict[int, dict[int, tuple[int, ...]]] = field(default_factory=dict)
    eval: bool | None = None
    parked_on: int | None = None
    #: processes already visited that currently have no useful event; the
    #: token will not be routed back to them until they produce new events,
    #: terminate, or some other component of the search makes progress.
    waiting_for: set = field(default_factory=set)

    @property
    def is_repair(self) -> bool:
        """Entries without a transition only pull the view to a newer cut."""
        return self.transition_id is None

    # -- progress assessment ------------------------------------------------
    def lagging_processes(self) -> list[int]:
        """Processes whose component must still advance."""
        n = len(self.cut)
        lagging = []
        for j in range(n):
            if self.cut[j] < self.depend[j] or self.cut[j] < self.min_positions[j]:
                lagging.append(j)
            elif self.conjuncts[j] and not self.satisfied[j]:
                lagging.append(j)
        return lagging

    def pending_targets(self) -> list[int]:
        """Processes this entry still needs to visit (empty once decided)."""
        if self.eval is not None:
            return []
        return self.lagging_processes()

    def try_finalize(self) -> None:
        """Mark the entry successful once nothing is pending."""
        if self.eval is None and not self.pending_targets():
            self.eval = True

    def record_scan(self, process: int, sn: int, letter: Letter, vc: tuple[int, ...]) -> None:
        """Record one scanned remote event and fold its clock into depend."""
        self.scanned_letters.setdefault(process, {})[sn] = letter
        self.scanned_vcs.setdefault(process, {})[sn] = tuple(vc)
        self.depend = [max(a, b) for a, b in zip(self.depend, vc)]


@dataclass
class Token:
    """A monitoring message routed between monitor processes.

    Created by one global view of one monitor (the *parent*), possibly
    visiting several monitors to evaluate its entries, and finally returning
    to the parent which forks/updates views from the results.
    """

    parent_process: int
    parent_view: int
    parent_event_sn: int
    entries: list[TokenEntry]
    token_id: int = field(default_factory=lambda: next(_token_ids))
    hops: int = 0

    def undecided_entries(self) -> list[TokenEntry]:
        """Entries still awaiting evaluation at some monitor."""
        return [entry for entry in self.entries if entry.eval is None]

    def all_decided(self) -> bool:
        """Whether every entry has been evaluated (token may return)."""
        return not self.undecided_entries()

    def targets(self) -> list[int]:
        """Union of processes still needed by undecided entries."""
        targets = set()
        for entry in self.undecided_entries():
            targets.update(entry.pending_targets())
        return sorted(targets)

    def parked_targets(self) -> list[int]:
        """Processes known to have nothing actionable for this token yet."""
        parked = set()
        for entry in self.undecided_entries():
            parked |= entry.waiting_for
        return sorted(parked)


@dataclass(frozen=True)
class TerminationNotice:
    """Announcement that a program process has produced its last event."""

    process: int
    final_event_sn: int


@dataclass(frozen=True)
class VerdictAnnouncement:
    """Gossip digest: *origin* declared the conclusive verdict *verdict*.

    Emitted by topologies whose ``verdict_recipients`` is non-empty (the
    gossip overlay) when a monitor first declares ⊤ or ⊥, and flooded with
    receiver-side duplicate suppression — frozen and hashable so the
    announcement is its own dedup key.  ``verdict`` is the verdict's string
    form (``"⊤"`` / ``"⊥"``), round-trippable via ``Verdict(value)``.
    """

    origin: int
    verdict: str
