"""Transport abstraction connecting decentralized monitor processes.

The monitoring algorithm only ever calls :meth:`Transport.send`; how and when
messages are delivered is the transport's business.  Implementations:

* :class:`LoopbackNetwork` — an in-process FIFO network used by the library
  runner and the tests.  Messages are queued and delivered when the caller
  pumps the network, which models an asynchronous but reliable network with
  no notion of time.
* ``repro.sim.network.SimulatedNetwork`` and its behaviour subclasses
  (lossy-with-retransmit, partition/heal, bursty) — discrete-event networks
  with latency, used by the scenario engine and the experiment harness.

* ``repro.runtime.transport`` — asyncio streaming transports (in-process
  queues and real TCP sockets) where each monitor runs as a concurrent task.

Every implementation also satisfies the wider :class:`MonitorNetwork`
protocol (registration, in-flight accounting, per-sender counters), which is
what the scenario layer (:mod:`repro.scenarios`) programs against.

The flip side of :class:`Transport` is :class:`MonitorNode`: the endpoint
interface every backend drives.  :class:`repro.core.monitor.DecentralizedMonitor`
is the single implementation, shared unchanged by the loopback runner, the
discrete-event simulator and the asyncio runtime — backends differ only in
*when* they invoke the node's entry points and how its outgoing
:meth:`Transport.send` calls travel.
"""

from __future__ import annotations

from collections import deque
from typing import Protocol, runtime_checkable

__all__ = ["Transport", "MonitorNode", "MonitorNetwork", "LoopbackNetwork"]


class Transport(Protocol):
    """Minimal interface required by :class:`DecentralizedMonitor`."""

    def send(self, sender: int, target: int, message: object) -> None:
        """Deliver *message* from monitor *sender* to monitor *target*."""


@runtime_checkable
class MonitorNode(Protocol):
    """The backend-agnostic endpoint interface of one monitor process.

    Every monitoring backend — the loopback runner, the discrete-event
    simulator and the asyncio streaming runtime — drives its monitors
    exclusively through these entry points, so a single monitor
    implementation (:class:`repro.core.monitor.DecentralizedMonitor`)
    serves all of them.  Events and messages are typed loosely
    (``object``) to keep this protocol free of upward imports; concrete
    nodes receive :class:`repro.distributed.events.Event` values and the
    wire messages of :mod:`repro.core.messages`.
    """

    process: int

    def start(self) -> None:
        """Process the initial global state (the paper's INIT step)."""

    def local_event(self, event: object) -> None:
        """Handle one event read from the attached program process."""

    def local_termination(self) -> None:
        """Handle the termination signal of the attached program process."""

    def receive_message(self, message: object) -> None:
        """Handle a monitoring message delivered by the transport."""


@runtime_checkable
class MonitorNetwork(Transport, Protocol):
    """A full monitor-to-monitor network: transport + wiring + accounting.

    Both :class:`LoopbackNetwork` and the discrete-event
    ``repro.sim.network.SimulatedNetwork`` family implement this protocol
    structurally; the scenario engine only relies on these members.
    """

    messages_sent: int
    messages_by_sender: dict[int, int]

    def register(self, process: int, monitor: MonitorNode) -> None:
        """Attach *monitor* as the endpoint for *process*."""

    @property
    def pending(self) -> int:
        """Number of sent-but-undelivered messages."""


class LoopbackNetwork:
    """A reliable FIFO in-process network between registered monitors.

    Messages are buffered and delivered in FIFO order per ``pump`` call,
    which keeps the executions deterministic and lets tests interleave
    program events and monitor messages explicitly.
    """

    def __init__(self) -> None:
        self._monitors: dict[int, MonitorNode] = {}
        self._queue: deque[tuple[int, int, object]] = deque()
        self.messages_sent = 0
        self.messages_by_sender: dict[int, int] = {}

    def register(self, process: int, monitor: MonitorNode) -> None:
        """Attach *monitor* as the endpoint for *process*."""
        self._monitors[process] = monitor

    # ------------------------------------------------------------------
    def send(self, sender: int, target: int, message: object) -> None:
        """Queue *message* for FIFO delivery to *target*."""
        if target not in self._monitors:
            raise ValueError(f"no monitor registered for process {target}")
        self.messages_sent += 1
        self.messages_by_sender[sender] = self.messages_by_sender.get(sender, 0) + 1
        self._queue.append((sender, target, message))

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Messages queued but not yet delivered."""
        return len(self._queue)

    def deliver_one(self) -> bool:
        """Deliver the oldest in-flight message; returns False when idle."""
        if not self._queue:
            return False
        _, target, message = self._queue.popleft()
        self._monitors[target].receive_message(message)
        return True

    def deliver_all(self, max_messages: int = 1_000_000) -> int:
        """Deliver messages until the network is quiescent.

        Delivering a message may cause new messages to be sent; the loop
        continues until the queue drains.  ``max_messages`` guards against
        routing bugs that would otherwise loop forever.
        """
        delivered = 0
        while self._queue:
            self.deliver_one()
            delivered += 1
            if delivered > max_messages:
                raise RuntimeError(
                    "network did not quiesce; possible token routing loop"
                )
        return delivered
