"""Centralized online monitoring baseline (Section 1.2.2 / Chapter 6).

In the centralized configuration every process ships every event to a single
monitor, which must order the events, (incrementally) reconstruct the set of
possible global-state traces and evaluate the LTL3 monitor.  The baseline is
included to compare message counts and memory against the decentralized
algorithm: it sends exactly one monitoring message per program event, but its
memory (tracked global states) grows with the full lattice frontier.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..distributed.computation import Computation, Cut
from ..distributed.events import Event
from ..ltl.monitor import MonitorAutomaton
from ..ltl.predicates import PropositionRegistry
from ..ltl.verdict import Verdict

__all__ = ["CentralizedMonitor", "CentralizedResult"]

Letter = frozenset[str]


@dataclass
class CentralizedResult:
    """Outcome of a centralized monitoring run.

    ``messages`` counts process→central observation deliveries (exactly one
    per program event) and is kept for backward compatibility;
    ``verdict_broadcast_messages`` counts the central→process fan-out of
    each newly conclusive verdict.  :attr:`total_messages` is the honest
    frontier denominator comparable to a decentralized run's total.
    """

    final_states: frozenset[int]
    verdicts: frozenset[Verdict]
    messages: int
    max_tracked_cuts: int
    total_tracked_cuts: int
    verdict_broadcast_messages: int = 0

    @property
    def observation_messages(self) -> int:
        """Process→central observation deliveries (alias of ``messages``)."""
        return self.messages

    @property
    def total_messages(self) -> int:
        """All communication of the centralized configuration.

        Observation deliveries plus verdict broadcasts — the counter that
        sits on the communication axis of the topology frontier.
        """
        return self.messages + self.verdict_broadcast_messages


class CentralizedMonitor:
    """A single monitor receiving every event of every process.

    The monitor maintains, for each *reachable consistent cut* built from the
    events received so far, the set of automaton states reachable over paths
    — i.e. it performs the oracle's dynamic program online.  Events may
    arrive in any order consistent with per-process FIFO delivery.
    """

    def __init__(
        self,
        num_processes: int,
        automaton: MonitorAutomaton,
        registry: PropositionRegistry,
        initial_letters: list[Letter],
        use_compiled_kernel: bool = True,
    ) -> None:
        self.num_processes = num_processes
        self.automaton = automaton
        self.registry = registry
        self.initial_letters = list(initial_letters)
        self._compiled = automaton.compiled if use_compiled_kernel else None
        self._mask_cache: dict[Letter, int] = {}
        self._events: list[dict[int, Event]] = [dict() for _ in range(num_processes)]
        bottom: Cut = (0,) * num_processes
        initial_state = automaton.step(
            automaton.initial_state, self._combine(initial_letters)
        )
        self._reachable: dict[Cut, set[int]] = {bottom: {initial_state}}
        self.messages = 0
        #: central→process verdict fan-out: each first-time conclusive
        #: verdict is announced to every process (``num_processes`` sends)
        self.verdict_broadcast_messages = 0
        self.max_tracked_cuts = 1
        self.total_tracked_cuts = 1
        self.declared: set[Verdict] = set()
        if automaton.verdict(initial_state).is_final:
            self._declare(automaton.verdict(initial_state))

    # ------------------------------------------------------------------
    def _declare(self, verdict: Verdict) -> None:
        """Record a conclusive verdict; broadcast it on first declaration."""
        if verdict not in self.declared:
            self.declared.add(verdict)
            self.verdict_broadcast_messages += self.num_processes

    @staticmethod
    def _combine(letters: list[Letter]) -> Letter:
        result: set = set()
        for letter in letters:
            result |= letter
        return frozenset(result)

    def _letter_of_cut(self, cut: Cut) -> Letter:
        letters = []
        for process in range(self.num_processes):
            count = cut[process]
            if count == 0:
                letters.append(self.initial_letters[process])
            else:
                event = self._events[process][count]
                letters.append(
                    self.registry.local_letter(process, event.state)
                )
        return self._combine(letters)

    def _mask_of(self, letter: Letter) -> int:
        """Bitmask of a per-process letter under the compiled machine."""
        mask = self._mask_cache.get(letter)
        if mask is None:
            mask = self._compiled.encode(letter)  # type: ignore[union-attr]
            if len(self._mask_cache) < 4096:
                self._mask_cache[letter] = mask
        return mask

    def _mask_of_cut(self, cut: Cut) -> int:
        """Combined letter bitmask of a cut (compiled-kernel counterpart
        of :meth:`_letter_of_cut`)."""
        mask = 0
        for process in range(self.num_processes):
            count = cut[process]
            if count == 0:
                letter = self.initial_letters[process]
            else:
                event = self._events[process][count]
                letter = self.registry.local_letter(process, event.state)
            mask |= self._mask_of(letter)
        return mask

    def _cut_consistent(self, cut: Cut) -> bool:
        for process in range(self.num_processes):
            count = cut[process]
            if count == 0:
                continue
            event = self._events[process].get(count)
            if event is None:
                return False
            for other in range(self.num_processes):
                if event.vc[other] > cut[other]:
                    return False
        return True

    # ------------------------------------------------------------------
    def receive_event(self, event: Event) -> None:
        """Process one event shipped from a program process (one message)."""
        self.messages += 1
        self._events[event.process][event.sn] = event
        self._extend_frontier()

    def _extend_frontier(self) -> None:
        """Propagate reachable states to all newly-completable cuts."""
        compiled = self._compiled
        changed = True
        while changed:
            changed = False
            for cut, states in list(self._reachable.items()):
                for process in range(self.num_processes):
                    next_sn = cut[process] + 1
                    if next_sn not in self._events[process]:
                        continue
                    successor = tuple(
                        c + 1 if j == process else c for j, c in enumerate(cut)
                    )
                    if not self._cut_consistent(successor):
                        continue
                    target = self._reachable.setdefault(successor, set())
                    before = len(target)
                    if compiled is not None:
                        mask = self._mask_of_cut(successor)
                        table = compiled.table
                        n_letters = compiled.n_letters
                        for state in states:
                            new_state = table[state * n_letters + mask]
                            target.add(new_state)
                            if compiled.final_flags[new_state]:
                                self._declare(self.automaton.verdict(new_state))
                    else:
                        letter = self._letter_of_cut(successor)
                        for state in states:
                            new_state = self.automaton.step(state, letter)
                            target.add(new_state)
                            verdict = self.automaton.verdict(new_state)
                            if verdict.is_final:
                                self._declare(verdict)
                    if len(target) != before:
                        changed = True
            self.max_tracked_cuts = max(self.max_tracked_cuts, len(self._reachable))
        self.total_tracked_cuts = len(self._reachable)

    # ------------------------------------------------------------------
    def result(self) -> CentralizedResult:
        """Final verdicts at the largest cut processed."""
        top = max(self._reachable, key=sum)
        final_states = frozenset(self._reachable[top])
        verdicts = frozenset(self.automaton.verdict(s) for s in final_states)
        return CentralizedResult(
            final_states=final_states,
            verdicts=verdicts,
            messages=self.messages,
            max_tracked_cuts=self.max_tracked_cuts,
            total_tracked_cuts=self.total_tracked_cuts,
            verdict_broadcast_messages=self.verdict_broadcast_messages,
        )

    # ------------------------------------------------------------------
    @classmethod
    def monitor_computation(
        cls,
        computation: Computation,
        automaton: MonitorAutomaton,
        registry: PropositionRegistry,
        use_compiled_kernel: bool = True,
    ) -> CentralizedResult:
        """Replay a finished computation through a centralized monitor."""
        initial_letters = [
            registry.local_letter(i, computation.initial_states[i])
            for i in range(computation.num_processes)
        ]
        monitor = cls(
            computation.num_processes,
            automaton,
            registry,
            initial_letters,
            use_compiled_kernel=use_compiled_kernel,
        )
        events = sorted(computation.all_events(), key=lambda e: (e.timestamp, e.process, e.sn))
        for event in events:
            monitor.receive_event(event)
        return monitor.result()

    @classmethod
    def monitor_computation_declared(
        cls,
        computation: Computation,
        automaton: MonitorAutomaton,
        registry: PropositionRegistry,
        use_compiled_kernel: bool = True,
    ) -> frozenset[Verdict]:
        """Every conclusive verdict the oracle declares anywhere on the lattice.

        Unlike :meth:`monitor_computation` (which reports the verdicts at the
        final cut only), this accumulates each final verdict reached at *any*
        consistent cut — the reference set for the soundness check: a
        decentralized run is sound iff its declared verdicts are a subset.
        """
        initial_letters = [
            registry.local_letter(i, computation.initial_states[i])
            for i in range(computation.num_processes)
        ]
        monitor = cls(
            computation.num_processes,
            automaton,
            registry,
            initial_letters,
            use_compiled_kernel=use_compiled_kernel,
        )
        events = sorted(computation.all_events(), key=lambda e: (e.timestamp, e.process, e.sn))
        for event in events:
            monitor.receive_event(event)
        return frozenset(monitor.declared)
