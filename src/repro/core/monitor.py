"""The decentralized LTL3 monitoring algorithm (the paper's contribution).

Each program process ``P_i`` is composed with a monitor process ``M_i`` that

* reads the local events of ``P_i`` as they occur (:meth:`DecentralizedMonitor.local_event`);
* maintains a set of **global views** — lattice paths it is tracing, each
  with a consistent cut, the letters of all processes at that cut and the
  LTL3 monitor automaton state reached (:mod:`repro.core.global_view`);
* when a transition of the automaton might be enabled by states of other
  processes, emits a **token** that performs a distributed
  least-consistent-cut search (:mod:`repro.core.messages`), visiting other
  monitors to collect their events;
* forks new global views from returned tokens, merges duplicate views, and
  declares ⊤/⊥ verdicts as soon as a traced path reaches a conclusive
  automaton state.

Differences from the thesis pseudo-code (documented in DESIGN.md):

* Views buffer local events only while a token is outstanding (the paper's
  ``waiting`` status); the pending-queue is implicit because local history is
  kept anyway.
* When a token returns, the parent does not only fork the transition's
  target state: it replays **all interleavings inside the box** between the
  view's cut and the cut found by the token (the letters and vector clocks
  of every scanned event travel with the token), forking one view per
  reachable automaton state.  This makes the implementation sound by
  construction — every forked view corresponds to a real lattice path — and
  strengthens completeness.
* Inconsistent views (a local receive event that causally depends on remote
  events the view has not incorporated) are repaired eagerly with a
  dedicated repair token rather than being tracked with stale remote data.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from dataclasses import dataclass

from ..coordination import CoordinationTopology, RoundRobinToken
from ..distributed.events import Event
from ..ltl.monitor import MonitorAutomaton, Transition
from ..ltl.predicates import PropositionRegistry
from ..ltl.verdict import Verdict
from .global_view import GlobalView, ViewStatus
from .messages import TerminationNotice, Token, TokenEntry, VerdictAnnouncement
from .transport import Transport

__all__ = ["MonitorMetrics", "DecentralizedMonitor", "verdict_divergence"]

Letter = frozenset[str]


def verdict_divergence(
    decentralized: Iterable[Verdict], centralized: Iterable[Verdict]
) -> frozenset[Verdict]:
    """The soundness comparison seam: decentralized verdicts the oracle denies.

    The paper's soundness claim is that every conclusive verdict a
    decentralized monitor declares corresponds to a real execution path —
    i.e. is also declared by the centralized reference monitor, which
    explores every reachable consistent cut
    (``decentralized ⊆ centralized``).  This helper returns the violating
    verdicts (empty = sound).  The reverse direction is *not* checked:
    decentralized monitors may legitimately declare fewer verdicts
    (bounded exploration, crashes, message loss all cost completeness,
    never soundness).  The fault-fuzzing harness and the adversarial tests
    both classify runs through this one function.
    """
    return frozenset(decentralized) - frozenset(centralized)

#: Maximum number of cuts replayed exactly inside a token's box before the
#: monitor falls back to a single topologically-sorted interleaving.
_BOX_CELL_LIMIT = 20_000


@dataclass
class MonitorMetrics:
    """Per-monitor counters reported by the experiments of Chapter 5."""

    events_processed: int = 0
    tokens_created: int = 0
    entries_created: int = 0
    token_messages_sent: int = 0
    termination_messages_sent: int = 0
    #: topology digest traffic: forwarded termination notices and verdict
    #: announcements (gossip/tree flooding); zero under round-robin-token
    digest_messages_sent: int = 0
    views_created: int = 0
    views_merged: int = 0
    max_active_views: int = 0
    delayed_events: int = 0
    token_hops_served: int = 0

    @property
    def messages_sent(self) -> int:
        """Total monitoring messages this monitor put on the network.

        Decomposes exactly as token + termination + digest messages; the
        network-level counter of a reliable transport must agree with the
        sum of this property across monitors.
        """
        return (
            self.token_messages_sent
            + self.termination_messages_sent
            + self.digest_messages_sent
        )


def _satisfies(letter: Letter, conjunct: Mapping[str, bool]) -> bool:
    """Whether a per-process letter satisfies a per-process conjunct."""
    for atom, required in conjunct.items():
        if (atom in letter) != required:
            return False
    return True


class DecentralizedMonitor:
    """Monitor process ``M_i`` of the decentralized algorithm.

    Parameters
    ----------
    process:
        Index ``i`` of the program process this monitor is attached to.
    num_processes:
        Total number of processes ``n``.
    automaton:
        The (replicated) LTL3 monitor automaton.
    registry:
        Binding of the automaton's atomic propositions to processes.
    initial_letters:
        The per-process letters of the initial global state (known to every
        monitor, as in the paper's INIT procedure).
    transport:
        Network used to exchange tokens and termination notices.
    max_views_per_state:
        Optional bound on the number of live global views a monitor keeps
        per automaton state.  ``None`` (default) explores exhaustively —
        this is the setting validated against the lattice oracle on small
        computations.  The experiment harness uses a small bound, which
        reproduces the paper's lightweight behaviour (total views bounded by
        a small multiple of the automaton size) on long workloads at the
        cost of possibly missing verdicts reachable only through the pruned
        views.
    use_compiled_kernel:
        When true (default) and the automaton's machine compiles (see
        :mod:`repro.ltl.compiled`), letter combination and automaton
        stepping run over integer bitmasks and a dense transition table
        instead of frozenset union + dictionary lookups.  The two paths are
        step-for-step equivalent; this flag is the per-monitor end of
        ``ExecutionConfig.compiled_kernel`` / ``--no-compiled-kernel``.
    topology:
        The :class:`repro.coordination.CoordinationTopology` routing policy
        shared by every monitor of the run.  ``None`` (default) builds the
        ``round-robin-token`` policy, which reproduces the pre-refactor
        monolithic routing byte for byte.  The monitor owns all mutable
        protocol state (duplicate suppression for flooded digests); the
        topology object itself is stateless and may be shared.
    """

    def __init__(
        self,
        process: int,
        num_processes: int,
        automaton: MonitorAutomaton,
        registry: PropositionRegistry,
        initial_letters: Sequence[Letter],
        transport: Transport,
        max_views_per_state: int | None = None,
        use_compiled_kernel: bool = True,
        topology: CoordinationTopology | None = None,
    ) -> None:
        self.process = process
        self.num_processes = num_processes
        self.automaton = automaton
        self.registry = registry
        self.initial_letters: list[Letter] = [frozenset(l) for l in initial_letters]
        self.transport = transport
        self.max_views_per_state = max_views_per_state
        self.topology: CoordinationTopology = (
            topology if topology is not None else RoundRobinToken(num_processes)
        )
        self._compiled = automaton.compiled if use_compiled_kernel else None
        self._mask_cache: dict[Letter, int] = {}
        self.metrics = MonitorMetrics()
        #: duplicate suppression for flooded digests (tree/gossip forwarding)
        self._seen_notices: set[TerminationNotice] = set()
        self._seen_announcements: set[VerdictAnnouncement] = set()

        self.history: dict[int, Event] = {}
        self.local_letters: dict[int, Letter] = {0: self.initial_letters[process]}
        self.last_local_sn = 0
        self.local_terminated = False
        #: final event count of each process, once known
        self.terminated: dict[int, int | None] = {
            j: None for j in range(num_processes)
        }

        self.views: list[GlobalView] = []
        self.final_views: list[GlobalView] = []
        self.waiting_tokens: list[Token] = []
        self._outstanding: dict[int, GlobalView] = {}  # token_id -> waiting view

        self.declared_verdicts: set[Verdict] = set()
        self.declared_states: set[int] = set()
        #: conclusive verdicts in declaration order (first occurrence only);
        #: the ordered counterpart of ``declared_verdicts``, used by the
        #: fleet layer's byte-identical verdict-sequence comparisons
        self.verdict_log: list[Verdict] = []

        initial_state = self._step_combined(
            automaton.initial_state, self.initial_letters
        )
        view = GlobalView(
            cut=[0] * num_processes,
            state=initial_state,
            letters=list(self.initial_letters),
        )
        self.metrics.views_created += 1
        if automaton.is_final(initial_state):
            self._declare(initial_state)
            view.status = ViewStatus.FINAL
            self.final_views.append(view)
        else:
            self.views.append(view)
        self.metrics.max_active_views = len(self.views)
        self._started = False

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _combine(letters: Iterable[Letter]) -> Letter:
        result: set = set()
        for letter in letters:
            result |= letter
        return frozenset(result)

    def _mask_of(self, letter: Letter) -> int:
        """Bitmask of a per-process letter under the compiled machine.

        Masks of letters seen are cached (bounded, mirroring the projection
        cache of :meth:`repro.ltl.dfa.MooreMachine.step`) so the hot path is
        one dictionary lookup per per-process letter.
        """
        mask = self._mask_cache.get(letter)
        if mask is None:
            mask = self._compiled.encode(letter)  # type: ignore[union-attr]
            if len(self._mask_cache) < 4096:
                self._mask_cache[letter] = mask
        return mask

    def _step_combined(self, state: int, letters: Iterable[Letter]) -> int:
        """Step the automaton on the combination of per-process letters.

        The compiled path OR-combines letter bitmasks and indexes the dense
        table; the interpreted path unions frozensets and steps the Moore
        machine.  Both produce the same successor state.
        """
        compiled = self._compiled
        if compiled is not None:
            mask = 0
            mask_of = self._mask_of
            for letter in letters:
                mask |= mask_of(letter)
            return compiled.step(state, mask)
        return self.automaton.step(state, self._combine(letters))

    def _declare(self, state: int) -> None:
        verdict = self.automaton.verdict(state)
        if verdict.is_final:
            self.declared_states.add(state)
            if verdict not in self.declared_verdicts:
                self.declared_verdicts.add(verdict)
                self.verdict_log.append(verdict)
                self._announce_verdict(verdict)

    def _announce_verdict(self, verdict: Verdict) -> None:
        """Gossip a first-time conclusive verdict, if the topology does."""
        recipients = self.topology.verdict_recipients(self.process)
        if not recipients:
            return
        announcement = VerdictAnnouncement(self.process, str(verdict))
        self._seen_announcements.add(announcement)
        for target in recipients:
            if target != self.process:
                self.transport.send(self.process, target, announcement)
                self.metrics.digest_messages_sent += 1

    def _local_letter(self, sn: int) -> Letter:
        return self.local_letters[sn]

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Explore outgoing transitions of the initial global view.

        Must be called once all monitors are registered with the transport
        (mirrors the INIT procedure, which processes the initial state as a
        pseudo event).
        """
        if self._started:
            return
        self._started = True
        for view in list(self.views):
            self._explore_outgoing(view)
        self._merge_views()

    def local_event(self, event: Event) -> None:
        """Handle one event read from the attached program process."""
        if event.process != self.process:
            raise ValueError(
                f"monitor {self.process} received event of process {event.process}"
            )
        if not self._started:
            self.start()
        self.metrics.events_processed += 1
        self.history[event.sn] = event
        self.local_letters[event.sn] = self.registry.local_letter(
            self.process, event.state
        )
        self.last_local_sn = event.sn

        waiting_views = [v for v in self.views if v.is_waiting()]
        if waiting_views:
            self.metrics.delayed_events += 1

        self._retry_waiting_tokens()
        for view in list(self.views):
            if not view.is_waiting():
                self._advance_view(view)
        self._merge_views()

    def local_termination(self) -> None:
        """Handle the termination signal of the attached program process."""
        if not self._started:
            self.start()
        self.local_terminated = True
        self.terminated[self.process] = self.last_local_sn
        notice = TerminationNotice(self.process, self.last_local_sn)
        self._seen_notices.add(notice)
        for other in self.topology.termination_recipients(self.process):
            if other != self.process:
                self.transport.send(self.process, other, notice)
                self.metrics.termination_messages_sent += 1
        # my process will contribute no further events: views whose guards are
        # currently satisfied can now only fire through remote events.
        for view in list(self.views):
            if not view.is_waiting():
                self._explore_outgoing(view, include_currently_satisfied=True)
        self._retry_waiting_tokens()
        self._merge_views()

    def receive_message(self, message: object) -> None:
        """Handle a message from another monitor process."""
        if isinstance(message, TerminationNotice):
            forward = self.topology.forward_termination(
                self.process, message.process
            )
            if forward:
                # flooding topology: suppress duplicates, spread first-seen
                # notices one more wave (broadcast topologies forward nothing
                # and keep the original reprocess-every-copy behaviour)
                if message in self._seen_notices:
                    return
                self._seen_notices.add(message)
                for target in forward:
                    if target != self.process:
                        self.transport.send(self.process, target, message)
                        self.metrics.digest_messages_sent += 1
            self.terminated[message.process] = message.final_event_sn
            self._retry_waiting_tokens()
            self._merge_views()
            return
        if isinstance(message, VerdictAnnouncement):
            if message in self._seen_announcements:
                return
            self._seen_announcements.add(message)
            verdict = Verdict(message.verdict)
            if verdict.is_final and verdict not in self.declared_verdicts:
                self.declared_verdicts.add(verdict)
                self.verdict_log.append(verdict)
            for target in self.topology.forward_verdict(
                self.process, message.origin
            ):
                if target != self.process:
                    self.transport.send(self.process, target, message)
                    self.metrics.digest_messages_sent += 1
            return
        if isinstance(message, Token):
            token = message
            if token.parent_process == self.process and token.all_decided():
                # the completed token is merely returning home: the parent
                # consumes it, it does not serve a hop
                self._token_returned(token)
            else:
                token.hops += 1
                self.metrics.token_hops_served += 1
                self._serve_token(token)
            self._merge_views()
            return
        raise TypeError(f"unexpected monitor message {message!r}")

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def is_quiescent(self) -> bool:
        """No outstanding work besides possibly waiting on other monitors."""
        return not self.waiting_tokens and not self._outstanding

    def active_view_states(self) -> set[int]:
        """Automaton states of the currently active global views."""
        return {view.state for view in self.views}

    def active_views(self) -> list[GlobalView]:
        """Snapshot of the currently active global views."""
        return list(self.views)

    def reported_verdicts(self) -> set[Verdict]:
        """Verdicts this monitor reports at the end of the run."""
        verdicts = set(self.declared_verdicts)
        for view in self.views:
            verdicts.add(self.automaton.verdict(view.state))
        return verdicts

    # ------------------------------------------------------------------
    # view advancement on local events
    # ------------------------------------------------------------------
    def _advance_view(self, view: GlobalView) -> None:
        """Apply pending local events (from history) to an unblocked view."""
        while (
            view.status == ViewStatus.UNBLOCKED
            and view.cut[self.process] < self.last_local_sn
        ):
            event = self.history[view.cut[self.process] + 1]
            self._step_view(view, event)

    def _step_view(self, view: GlobalView, event: Event) -> None:
        """Advance *view* by one local event (PROCESSEVENT)."""
        lagging = [
            j
            for j in range(self.num_processes)
            if j != self.process and event.vc[j] > view.cut[j]
        ]
        if lagging:
            self._create_repair_token(view, event, lagging)
            return

        letter_local = self._local_letter(event.sn)
        if self._compiled is not None:
            mask = self._mask_of(letter_local)
            mask_of = self._mask_of
            mine = self.process
            for j, letter in enumerate(view.letters):
                if j != mine:
                    mask |= mask_of(letter)
            new_state = self._compiled.step(view.state, mask)
        else:
            global_letter = view.letter_with(self.process, letter_local)
            new_state = self.automaton.step(view.state, global_letter)
        view.cut[self.process] = event.sn
        view.letters[self.process] = letter_local
        view.state = new_state
        if self.automaton.is_final(new_state):
            self._declare(new_state)
            self._finalize_view(view)
            return
        self._explore_outgoing(view)

    def _finalize_view(self, view: GlobalView) -> None:
        view.status = ViewStatus.FINAL
        if view in self.views:
            self.views.remove(view)
        self.final_views.append(view)

    # ------------------------------------------------------------------
    # token creation (CHECKOUTGOINGTRANSITIONS)
    # ------------------------------------------------------------------
    def _explore_outgoing(
        self, view: GlobalView, include_currently_satisfied: bool = False
    ) -> None:
        """Create token entries for possibly-enabled outgoing transitions.

        A transition is *possibly enabled* when this process's conjunct holds
        at the view's current letter but remote conjuncts do not (so remote
        processes must advance for the guard to become true).  With
        ``include_currently_satisfied`` also guards that already hold are
        searched with the requirement that some participating remote process
        advances — used once the local process has terminated and can no
        longer trigger the transition itself.
        """
        if view.status != ViewStatus.UNBLOCKED:
            return
        entries: list[TokenEntry] = []
        for transition in self.automaton.outgoing_transitions(view.state):
            conjuncts = self.registry.conjuncts_by_process(
                transition.guard, self.num_processes
            )
            mine = conjuncts[self.process]
            if mine and not _satisfies(view.letters[self.process], mine):
                continue  # this process forbids the transition at its frontier
            satisfied_now = [
                _satisfies(view.letters[j], conjuncts[j])
                for j in range(self.num_processes)
            ]
            remote_participants = [
                j
                for j in range(self.num_processes)
                if j != self.process and conjuncts[j]
            ]
            if all(satisfied_now):
                if not include_currently_satisfied or not remote_participants:
                    continue
                # require at least one participating remote process to move
                for j in remote_participants:
                    entries.append(
                        self._make_entry(
                            view, transition, conjuncts, satisfied_now, bump=j
                        )
                    )
                continue
            if not remote_participants:
                # unsatisfied purely because of a *local* proposition that is
                # currently false at this frontier: a later local event will
                # re-evaluate it, no communication needed.
                continue
            entries.append(
                self._make_entry(view, transition, conjuncts, satisfied_now)
            )
        if not entries:
            return
        token = Token(
            parent_process=self.process,
            parent_view=view.view_id,
            parent_event_sn=view.cut[self.process],
            entries=entries,
        )
        self.metrics.tokens_created += 1
        self.metrics.entries_created += len(entries)
        view.status = ViewStatus.WAITING
        view.outstanding_token = token.token_id
        self._outstanding[token.token_id] = view
        self._dispatch_token(token)

    def _make_entry(
        self,
        view: GlobalView,
        transition: Transition,
        conjuncts: list[dict[str, bool]],
        satisfied_now: list[bool],
        bump: int | None = None,
    ) -> TokenEntry:
        n = self.num_processes
        min_positions = list(view.cut)
        if bump is not None:
            min_positions[bump] = view.cut[bump] + 1
        entry = TokenEntry(
            transition_id=transition.transition_id,
            guard=dict(transition.guard),
            conjuncts=[dict(c) for c in conjuncts],
            start_cut=list(view.cut),
            cut=list(view.cut),
            depend=list(view.cut),
            min_positions=min_positions,
            satisfied=list(satisfied_now),
            letters={j: view.letters[j] for j in range(n)},
        )
        return entry

    def _create_repair_token(
        self, view: GlobalView, event: Event, lagging: list[int]
    ) -> None:
        """Pull the view up to the causal past of an out-of-order local event."""
        n = self.num_processes
        min_positions = list(view.cut)
        for j in lagging:
            min_positions[j] = event.vc[j]
        entry = TokenEntry(
            transition_id=None,
            guard={},
            conjuncts=[dict() for _ in range(n)],
            start_cut=list(view.cut),
            cut=list(view.cut),
            depend=list(view.cut),
            min_positions=min_positions,
            satisfied=[True] * n,
            letters={j: view.letters[j] for j in range(n)},
        )
        token = Token(
            parent_process=self.process,
            parent_view=view.view_id,
            parent_event_sn=event.sn,
            entries=[entry],
        )
        self.metrics.tokens_created += 1
        self.metrics.entries_created += 1
        view.status = ViewStatus.WAITING
        view.outstanding_token = token.token_id
        self._outstanding[token.token_id] = view
        self._dispatch_token(token)

    # ------------------------------------------------------------------
    # token service and routing (PROCESSTOKEN / EVALUATETOKEN / SENDTONEXTPROCESS)
    # ------------------------------------------------------------------
    def _serve_token(self, token: Token) -> None:
        for entry in token.undecided_entries():
            if self.process in entry.pending_targets():
                self._serve_entry(entry)
            entry.try_finalize()
        self._route_token(token)

    def _serve_entry(self, entry: TokenEntry) -> None:
        """Advance the entry using this monitor's local history."""
        j = self.process
        conjunct = entry.conjuncts[j]
        entry.waiting_for.discard(j)
        progressed = False
        while True:
            target_min = max(entry.depend[j], entry.min_positions[j])
            needs_position = entry.cut[j] < target_min
            needs_conjunct = bool(conjunct) and not entry.satisfied[j]
            if not needs_position and not needs_conjunct:
                entry.parked_on = None
                break
            next_sn = entry.cut[j] + 1
            if next_sn > self.last_local_sn:
                if self.local_terminated:
                    entry.eval = False
                    entry.parked_on = None
                else:
                    entry.parked_on = j
                    entry.waiting_for.add(j)
                break
            event = self.history[next_sn]
            letter = self._local_letter(next_sn)
            entry.record_scan(j, next_sn, letter, tuple(event.vc))
            entry.cut[j] = next_sn
            entry.letters[j] = letter
            entry.satisfied[j] = _satisfies(letter, conjunct) if conjunct else True
            progressed = True
            # loop: keep advancing until both the position bound and the
            # conjunct are satisfied (the bound may have grown via depend)
        if progressed:
            # this component moved, so other processes that previously had
            # nothing actionable are worth revisiting
            entry.waiting_for.intersection_update({j})

    def _retry_waiting_tokens(self) -> None:
        """Re-examine parked tokens after new local events or terminations."""
        if not self.waiting_tokens:
            return
        tokens = self.waiting_tokens
        self.waiting_tokens = []
        for token in tokens:
            for entry in token.undecided_entries():
                # processes known to have terminated are always worth a
                # (final) visit: clear their "nothing new" marker
                for other in list(entry.waiting_for):
                    if other != self.process and self.terminated.get(other) is not None:
                        entry.waiting_for.discard(other)
                targets = entry.pending_targets()
                if self.process in targets:
                    self._serve_entry(entry)
                else:
                    # a process we cannot serve: resolve it if it is known to
                    # have terminated below the required position
                    for other in targets:
                        final = self.terminated.get(other)
                        if final is None:
                            continue
                        required = max(
                            entry.depend[other], entry.min_positions[other]
                        )
                        if entry.cut[other] >= final and (
                            required > final
                            or (entry.conjuncts[other] and not entry.satisfied[other])
                        ):
                            entry.eval = False
                entry.try_finalize()
            self._route_token(token)

    def _route_token(self, token: Token) -> None:
        """Decide where the token goes next (SENDTONEXTPROCESS)."""
        if token.all_decided():
            if token.parent_process == self.process:
                self._token_returned(token)
            else:
                self._send_token(token, token.parent_process)
            return
        targets = token.targets()
        parked = set(token.parked_targets())
        # prefer a process with actionable work that is not this monitor
        actionable = [t for t in targets if t != self.process and t not in parked]
        if actionable:
            self._send_token(
                token, self.topology.pick_target(self.process, actionable, token)
            )
            return
        if self.process in targets:
            # wait here for future local events (or local termination)
            self.waiting_tokens.append(token)
            return
        remote_parked = [t for t in parked if t != self.process]
        if remote_parked:
            # every remaining target is waiting for future events elsewhere;
            # let the token wait at one of those processes
            self._send_token(
                token,
                self.topology.pick_target(self.process, remote_parked, token),
            )
            return
        # nothing actionable anywhere: keep the token here until something
        # (a local event or a termination notice) changes the situation
        self.waiting_tokens.append(token)

    def _send_token(self, token: Token, target: int) -> None:
        if target == self.process:
            # nothing to transmit: serve locally
            if token.parent_process == self.process and token.all_decided():
                self._token_returned(token)
            else:
                self._serve_token(token)
            return
        # multi-hop topologies relay through a neighbour; the intermediate
        # monitor re-serves and re-routes, converging on the destination
        hop = self.topology.next_hop(self.process, target)
        self.metrics.token_messages_sent += 1
        self.transport.send(self.process, hop, token)

    def _dispatch_token(self, token: Token) -> None:
        """First routing decision right after a token is created."""
        # the creating monitor first serves entries that target itself
        # (consistency repairs may need the parent's own events)
        for entry in token.undecided_entries():
            if self.process in entry.pending_targets():
                self._serve_entry(entry)
            entry.try_finalize()
        self._route_token(token)

    # ------------------------------------------------------------------
    # token return (RECEIVETOKEN at the parent)
    # ------------------------------------------------------------------
    def _token_returned(self, token: Token) -> None:
        view = self._outstanding.pop(token.token_id, None)
        if view is None:
            return  # parent view vanished (merged away); drop silently
        view.status = ViewStatus.UNBLOCKED
        view.outstanding_token = None

        repair_entries = [e for e in token.entries if e.is_repair]
        transition_entries = [e for e in token.entries if not e.is_repair]

        forked: list[GlobalView] = []
        for entry in transition_entries:
            if entry.eval is not True:
                continue
            forked.extend(self._fork_from_entry(view, entry))

        if repair_entries:
            entry = repair_entries[0]
            if entry.eval is True:
                forked.extend(self._fork_from_entry(view, entry))
            # the stale view is superseded by the repaired forks
            if view in self.views:
                self.views.remove(view)
            view.status = ViewStatus.FINAL  # retired, not counted as a result
        for child in forked:
            if child.status == ViewStatus.UNBLOCKED:
                self._advance_view(child)
        if view.status == ViewStatus.UNBLOCKED:
            self._advance_view(view)
        self._merge_views()

    def _fork_from_entry(self, view: GlobalView, entry: TokenEntry) -> list[GlobalView]:
        """Fork one view per automaton state reachable inside the entry's box.

        Only *pivot* states are forked: a reachable state equal to the parent
        view's own state adds no information (the parent keeps covering that
        state from its smaller cut), and forking it would duplicate the
        parent's exploration — this mirrors the paper's rule of only
        exploring global states that change the automaton state.  Repair
        entries fork every reachable state because the parent view is retired
        afterwards.
        """
        target_cut = list(entry.cut)
        reachable, letters_at_target = self._box_reachable(view, entry)
        children: list[GlobalView] = []
        for state in sorted(reachable):
            if self.automaton.is_final(state):
                self._declare(state)
                continue
            if state == view.state and not entry.is_repair:
                continue
            if self._covered_by_existing_view(
                state, target_cut, exact_only=entry.is_repair
            ):
                self.metrics.views_merged += 1
                continue
            child = GlobalView(
                cut=list(target_cut),
                state=state,
                letters=letters_at_target,
                forked_from=view.view_id,
            )
            self.metrics.views_created += 1
            self.views.append(child)
            children.append(child)
        self.metrics.max_active_views = max(
            self.metrics.max_active_views, len(self.views)
        )
        return children

    def _covered_by_existing_view(
        self, state: int, cut: list[int], exact_only: bool = False
    ) -> bool:
        """Whether some live view already subsumes a candidate fork.

        A view with the same automaton state whose cut is componentwise
        below (or equal to) the candidate's cut will reach every cut the
        candidate could reach, so creating the candidate would only
        duplicate exploration.  Waiting views count too — they resume from
        their smaller cut once their token returns.

        For repair forks (which *replace* their retired parent) only exact
        duplicates may be skipped: a merely-dominating view might itself be
        retired by a later repair, which would otherwise orphan the lineage.
        """
        for other in self.views:
            if other.state != state:
                continue
            if exact_only:
                if list(other.cut) == list(cut):
                    return True
            elif all(o <= c for o, c in zip(other.cut, cut)):
                return True
        return False

    def _box_reachable(
        self, view: GlobalView, entry: TokenEntry
    ) -> tuple[set[int], list[Letter]]:
        """States reachable at ``entry.cut`` from the view, over all
        interleavings of the events inside ``[view.cut, entry.cut]``.

        Conclusive states reached anywhere inside the box are declared
        immediately (those partial paths are real executions).
        """
        n = self.num_processes
        base = list(view.cut)
        target = list(entry.cut)
        ranges = [target[j] - base[j] for j in range(n)]
        letters_at_target = [
            entry.scanned_letters.get(j, {}).get(target[j], view.letters[j])
            if target[j] > base[j]
            else view.letters[j]
            for j in range(n)
        ]

        cells = 1
        for r in ranges:
            cells *= r + 1
        if cells > _BOX_CELL_LIMIT:
            return self._box_reachable_linear(view, entry), letters_at_target

        # Precompute, per (process, offset): the letter at that position and
        # the vector clock expressed relative to the base cut.  The inner
        # consistency check then reduces to integer comparisons on small
        # tuples, which dominates the cost of large boxes.
        letters_by: list[list[Letter]] = []
        rel_vc: list[list[tuple[int, ...] | None]] = []
        for j in range(n):
            col_letters = [view.letters[j]]
            col_vcs: list[tuple[int, ...] | None] = [None]
            for off in range(1, ranges[j] + 1):
                position = base[j] + off
                col_letters.append(entry.scanned_letters[j][position])
                vc = entry.scanned_vcs[j][position]
                col_vcs.append(tuple(vc[k] - base[k] for k in range(n)))
            letters_by.append(col_letters)
            rel_vc.append(col_vcs)
        active = [j for j in range(n) if ranges[j] > 0]
        automaton_step = self.automaton.step
        is_final = self.automaton.is_final
        n_range = range(n)
        compiled = self._compiled
        if compiled is not None:
            # per-(process, offset) bitmask columns: combining the letters of
            # a cell is an integer OR and stepping is one dense-table load
            mask_of = self._mask_of
            masks_by = [[mask_of(letter) for letter in col] for col in letters_by]
            table = compiled.table
            n_letters = compiled.n_letters

        # Level-synchronous BFS over the *reachable consistent* cells of the
        # box (all predecessors of a cell sit exactly one level below it, so
        # each level is complete before it is expanded).  Compared to
        # enumerating the full product this skips unreachable regions and
        # touches each cell once, with no predecessor reconstruction.
        origin = tuple([0] * n)
        final_offsets = tuple(ranges)
        final_states: set[int] = {view.state} if final_offsets == origin else set()
        inconsistent: set[tuple[int, ...]] = set()
        current: dict[tuple[int, ...], set[int]] = {origin: {view.state}}
        while current:
            nxt: dict[tuple[int, ...], set[int]] = {}
            letters_at: dict[tuple[int, ...], Letter | int] = {}
            for offsets, states in current.items():
                for j in active:
                    oj = offsets[j]
                    if oj >= ranges[j]:
                        continue
                    succ = offsets[:j] + (oj + 1,) + offsets[j + 1 :]
                    bucket = nxt.get(succ)
                    if bucket is None:
                        if succ in inconsistent:
                            continue
                        consistent = True
                        for i in active:
                            oi = succ[i]
                            if oi == 0:
                                continue
                            rel = rel_vc[i][oi]
                            for k in n_range:
                                if rel[k] > succ[k]:  # type: ignore[index]
                                    consistent = False
                                    break
                            if not consistent:
                                break
                        if not consistent:
                            inconsistent.add(succ)
                            continue
                        bucket = nxt[succ] = set()
                        if compiled is not None:
                            cell_mask = 0
                            for i in n_range:
                                cell_mask |= masks_by[i][succ[i]]
                            letters_at[succ] = cell_mask
                        else:
                            letters_at[succ] = self._combine(
                                letters_by[i][succ[i]] for i in n_range
                            )
                    letter = letters_at[succ]
                    if compiled is not None:
                        for state in states:
                            bucket.add(table[state * n_letters + letter])
                    else:
                        for state in states:
                            bucket.add(automaton_step(state, letter))
            if compiled is not None:
                final_flags = compiled.final_flags
                for states in nxt.values():
                    for state in states:
                        if final_flags[state]:
                            self._declare(state)
            else:
                for states in nxt.values():
                    for state in states:
                        if is_final(state):
                            self._declare(state)
            if final_offsets in nxt:
                final_states = nxt[final_offsets]
            current = nxt
        return set(final_states), letters_at_target

    def _box_reachable_linear(self, view: GlobalView, entry: TokenEntry) -> set[int]:
        """Fallback for oversized boxes: replay one causally-consistent
        linearisation of the box events (sound, possibly incomplete)."""
        n = self.num_processes
        base = list(view.cut)
        target = list(entry.cut)
        events: list[tuple[tuple[int, ...], int, int]] = []
        for j in range(n):
            for sn in range(base[j] + 1, target[j] + 1):
                events.append((entry.scanned_vcs[j][sn], j, sn))
        events.sort(key=lambda item: (sum(item[0]), item[0], item[1]))
        letters = list(view.letters)
        state = view.state
        compiled = self._compiled
        if compiled is not None:
            mask_of = self._mask_of
            masks = [mask_of(letter) for letter in letters]
            table = compiled.table
            n_letters = compiled.n_letters
            final_flags = compiled.final_flags
            for _, j, sn in events:
                masks[j] = mask_of(entry.scanned_letters[j][sn])
                mask = 0
                for m in masks:
                    mask |= m
                state = table[state * n_letters + mask]
                if final_flags[state]:
                    self._declare(state)
            return {state}
        for _, j, sn in events:
            letters[j] = entry.scanned_letters[j][sn]
            state = self.automaton.step(state, self._combine(letters))
            if self.automaton.is_final(state):
                self._declare(state)
        return {state}

    # ------------------------------------------------------------------
    # merging (MERGESIMILARGLOBALVIEWS)
    # ------------------------------------------------------------------
    def _merge_views(self) -> None:
        """MERGESIMILARGLOBALVIEWS.

        Two reductions are applied to unblocked views (views waiting for a
        token are left alone):

        * exact duplicates — same automaton state and same cut — are merged;
        * a view whose cut componentwise dominates another view with the same
          automaton state is merged into the smaller one: the smaller view
          subsumes its exploration (it will reach every cut the larger one
          can reach), which is the slice-based merging of Section 4.3 and
          keeps the number of live views bounded by the number of automaton
          states in the common case.
        """
        waiting = [view for view in self.views if view.is_waiting()]
        active = [view for view in self.views if not view.is_waiting()]

        # exact duplicates first
        seen: dict[tuple[int, tuple[int, ...]], GlobalView] = {}
        deduped: list[GlobalView] = []
        for view in active:
            signature = view.signature()
            if signature in seen:
                self.metrics.views_merged += 1
                continue
            seen[signature] = view
            deduped.append(view)

        # dominance merging per automaton state: keep the minimal antichain
        by_state: dict[int, list[GlobalView]] = {}
        for view in deduped:
            by_state.setdefault(view.state, []).append(view)
        kept: list[GlobalView] = []
        for state_views in by_state.values():
            minimal: list[GlobalView] = []
            for view in sorted(state_views, key=lambda v: sum(v.cut)):
                if any(
                    all(small <= big for small, big in zip(other.cut, view.cut))
                    for other in minimal
                ):
                    self.metrics.views_merged += 1
                    continue
                minimal.append(view)
            kept.extend(minimal)

        self.views = waiting + kept
        self._enforce_view_budget()
        self.metrics.max_active_views = max(
            self.metrics.max_active_views, len(self.views)
        )

    def _enforce_view_budget(self) -> None:
        """Apply the optional per-state bound on live views.

        When the bound is exceeded the views with the largest cuts are
        dropped (the remaining smaller-cut views re-cover their exploration
        space); outstanding tokens of dropped views are disowned so their
        eventual return is ignored.
        """
        if self.max_views_per_state is None:
            return
        by_state: dict[int, list[GlobalView]] = {}
        for view in self.views:
            by_state.setdefault(view.state, []).append(view)
        kept: list[GlobalView] = []
        for state_views in by_state.values():
            state_views.sort(key=lambda v: (sum(v.cut), tuple(v.cut)))
            kept.extend(state_views[: self.max_views_per_state])
            for dropped in state_views[self.max_views_per_state :]:
                self.metrics.views_merged += 1
                if dropped.outstanding_token is not None:
                    self._outstanding.pop(dropped.outstanding_token, None)
        self.views = kept

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecentralizedMonitor(process={self.process}, views={len(self.views)}, "
            f"declared={sorted(str(v) for v in self.declared_verdicts)})"
        )
