"""Global views: a monitor's exploration state along one lattice path.

A global view is the decentralized counterpart of one node of the
computation lattice: it records the consistent cut reached so far, the last
known letter (set of true propositions) of every process at that cut, and the
LTL3 monitor automaton state reached by the traced path.  A monitor keeps a
*set* of views because concurrency may make several lattice paths — and hence
several automaton states — possible at the same time (Chapter 3).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

from ..distributed.events import Event

__all__ = ["ViewStatus", "GlobalView"]

Letter = frozenset[str]

_view_ids = itertools.count(1)


class ViewStatus:
    """Lifecycle states of a global view (Section 4.2)."""

    UNBLOCKED = "unblocked"
    WAITING = "waiting"  # a token is outstanding; local events are queued
    FINAL = "final"      # the view reached a conclusive verdict


@dataclass
class GlobalView:
    """One traced lattice path of a monitor process.

    Attributes
    ----------
    cut:
        Event counts per process of the consistent cut reached.
    state:
        Current monitor automaton state.
    letters:
        Last known letter of every process at ``cut`` (``letters[j]`` is the
        set of true propositions owned by process ``j``).
    status:
        ``unblocked``, ``waiting`` (token outstanding) or ``final``.
    pending_events:
        Local events received while the view was waiting.
    outstanding_token:
        Identifier of the token the view is waiting for, if any.
    keep_after_fork:
        Whether the view remains useful after forking children (views that
        became stale are dropped once their token returns — Section 4.2).
    """

    cut: list[int]
    state: int
    letters: list[Letter]
    view_id: int = field(default_factory=lambda: next(_view_ids))
    status: str = ViewStatus.UNBLOCKED
    pending_events: deque[Event] = field(default_factory=deque)
    outstanding_token: int | None = None
    keep_after_fork: bool = True
    forked_from: int | None = None

    # ------------------------------------------------------------------
    def global_letter(self) -> Letter:
        """The letter of the global state at the view's cut."""
        result: set = set()
        for letter in self.letters:
            result |= letter
        return frozenset(result)

    def letter_with(self, process: int, letter: Letter) -> Letter:
        """The global letter with *process*'s component replaced."""
        result: set = set()
        for j, existing in enumerate(self.letters):
            result |= letter if j == process else existing
        return frozenset(result)

    def signature(self) -> tuple[int, tuple[int, ...]]:
        """Merging key: views with equal signatures are duplicates."""
        return (self.state, tuple(self.cut))

    def clone(self) -> "GlobalView":
        """A fresh view at the same cut/state (used when forking)."""
        return GlobalView(
            cut=list(self.cut),
            state=self.state,
            letters=list(self.letters),
            forked_from=self.view_id,
        )

    def is_waiting(self) -> bool:
        """Whether the view is parked on an outstanding token."""
        return self.status == ViewStatus.WAITING

    def __repr__(self) -> str:
        return (
            f"GlobalView(id={self.view_id}, cut={tuple(self.cut)}, "
            f"q={self.state}, status={self.status})"
        )
