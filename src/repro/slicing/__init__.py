"""Computation slicing for conjunctive predicate detection.

Public API
----------
* :func:`least_consistent_cut` — least consistent cut at/above a start cut
  satisfying a conjunctive guard (the slicing primitive used by the monitor).
* :func:`satisfying_cuts` — enumeration-based reference implementation.
* :class:`Slice` — compact slice representation via join-irreducible cuts.
"""

from .slicer import Slice, least_consistent_cut, satisfying_cuts

__all__ = ["Slice", "least_consistent_cut", "satisfying_cuts"]
