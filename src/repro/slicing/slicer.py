"""Computation slicing for conjunctive global predicates (Mittal–Garg).

A *slice* of a computation with respect to a predicate is the smallest
sub-computation containing every consistent global state that satisfies the
predicate (Definition 13).  For **conjunctive** predicates — conjunctions of
per-process local propositions, the only kind labelling LTL3 monitor
transitions after disjunction splitting — the satisfying consistent cuts form
a sublattice, and the slice can be represented compactly by its
join-irreducible elements.

The decentralized algorithm of the paper needs one core operation from this
theory: given a conjunctive guard and a starting cut, find the **least
consistent cut at or above the start that satisfies the guard** (or establish
that none exists).  :func:`least_consistent_cut` implements the classic
advance-to-fixpoint algorithm; :class:`Slice` packages the per-event
join-irreducible cuts.
"""

from __future__ import annotations

from collections.abc import Mapping

from dataclasses import dataclass, field

from ..distributed.computation import Computation, Cut
from ..distributed.lattice import ComputationLattice
from ..ltl.predicates import PropositionRegistry

__all__ = ["least_consistent_cut", "satisfying_cuts", "Slice"]


def _conjunct_holds(
    computation: Computation,
    registry: PropositionRegistry,
    process: int,
    count: int,
    conjunct: Mapping[str, bool],
) -> bool:
    if not conjunct:
        return True
    state = computation.local_state(process, count)
    return registry.local_conjunct_holds(process, conjunct, state)


def least_consistent_cut(
    computation: Computation,
    registry: PropositionRegistry,
    guard: Mapping[str, bool],
    start: Cut | None = None,
) -> Cut | None:
    """The least consistent cut ``>= start`` whose global state satisfies *guard*.

    Parameters
    ----------
    computation:
        The finished computation to search in.
    registry:
        Binding of the guard's atomic propositions to processes.
    guard:
        A conjunctive predicate: mapping from proposition name to required
        truth value.  The empty guard is satisfied by every cut.
    start:
        The cut from which the search starts (defaults to the empty cut).

    Returns
    -------
    The least satisfying consistent cut, or ``None`` when no consistent cut at
    or above *start* satisfies the guard.

    Notes
    -----
    This is the standard conjunctive-predicate detection loop: repeatedly
    advance any process whose frontier state falsifies its local conjunct, and
    repair consistency by advancing processes the frontier depends on.  Each
    step advances at least one component, so the loop terminates after at most
    ``|events|`` iterations.
    """
    n = computation.num_processes
    limits = computation.final_cut()
    cut = list(start) if start is not None else [0] * n
    if len(cut) != n:
        raise ValueError("start cut arity must match the number of processes")
    # same memoized per-process decomposition the decentralized monitors use
    conjuncts = registry.conjuncts_by_process(guard, n)

    changed = True
    while changed:
        changed = False
        # 1. repair consistency: if the frontier event of process i knows about
        #    more events of process j than the cut contains, advance j.
        for process in range(n):
            if cut[process] == 0:
                continue
            clock = computation.event(process, cut[process]).vc
            for other in range(n):
                if clock[other] > cut[other]:
                    cut[other] = clock[other]
                    changed = True
        if changed:
            continue
        # 2. advance any process whose local conjunct does not hold.
        for process in range(n):
            if _conjunct_holds(computation, registry, process, cut[process], conjuncts[process]):
                continue
            if cut[process] >= limits[process]:
                return None  # no further event can ever satisfy the conjunct
            cut[process] += 1
            changed = True
    result = tuple(cut)
    if any(result[i] > limits[i] for i in range(n)):
        return None
    return result


def satisfying_cuts(
    computation: Computation,
    registry: PropositionRegistry,
    guard: Mapping[str, bool],
) -> list[Cut]:
    """All consistent cuts whose global state satisfies *guard*.

    Enumerates the full lattice; intended for validation and small inputs.
    """
    lattice = ComputationLattice.from_computation(computation)
    result = []
    for cut in lattice.cuts():
        state = computation.global_state(cut)
        letter = registry.letter_of(state)
        if all((atom in letter) == value for atom, value in guard.items()):
            result.append(cut)
    return result


@dataclass
class Slice:
    """The slice of a computation with respect to a conjunctive predicate.

    The slice is stored as its join-irreducible consistent cuts plus the
    least satisfying cut; every satisfying cut is a join of a subset of the
    join-irreducible cuts with the least cut.
    """

    computation: Computation
    registry: PropositionRegistry
    guard: Mapping[str, bool]
    least: Cut | None
    join_irreducibles: list[Cut] = field(default_factory=list)

    @classmethod
    def compute(
        cls,
        computation: Computation,
        registry: PropositionRegistry,
        guard: Mapping[str, bool],
    ) -> "Slice":
        """Compute the slice of *computation* with respect to *guard*.

        The join-irreducible elements are obtained, as in the distributed
        abstraction algorithm of Chauhan et al., as the least satisfying
        consistent cuts containing each individual event.
        """
        least = least_consistent_cut(computation, registry, guard)
        irreducibles: list[Cut] = []
        if least is not None:
            seen = set()
            for process in range(computation.num_processes):
                for sn in range(1, len(computation.events_of(process)) + 1):
                    start = [0] * computation.num_processes
                    start[process] = sn
                    cut = least_consistent_cut(
                        computation, registry, guard, tuple(start)
                    )
                    if cut is not None and cut not in seen:
                        seen.add(cut)
                        irreducibles.append(cut)
        return cls(
            computation=computation,
            registry=registry,
            guard=dict(guard),
            least=least,
            join_irreducibles=irreducibles,
        )

    @property
    def is_empty(self) -> bool:
        """Whether no consistent cut satisfies the predicate."""
        return self.least is None

    def cuts(self) -> list[Cut]:
        """All consistent cuts that satisfy the predicate (by enumeration)."""
        return satisfying_cuts(self.computation, self.registry, self.guard)

    def contains(self, cut: Cut) -> bool:
        """Whether *cut* is a satisfying consistent cut of the slice."""
        if not self.computation.is_consistent_cut(cut):
            return False
        state = self.computation.global_state(cut)
        letter = self.registry.letter_of(state)
        return all((atom in letter) == value for atom, value in self.guard.items())

    def __repr__(self) -> str:
        return (
            f"Slice(guard={self.guard}, least={self.least}, "
            f"irreducibles={len(self.join_irreducibles)})"
        )
