"""Ready-made distributed computations used in the paper and the examples.

The most important one is :func:`running_example`, the two-process program of
Fig. 2.1 whose lattice (Fig. 2.2b) and monitored lattice (Fig. 3.1) are used
throughout the paper's exposition.
"""

from __future__ import annotations


from ..ltl.predicates import Proposition, PropositionRegistry
from .computation import Computation, ComputationBuilder

__all__ = [
    "running_example",
    "running_example_registry",
    "two_phase_commit_example",
    "token_ring_example",
]


def running_example() -> Computation:
    """The distributed program of Fig. 2.1.

    ::

        {x1=0}                      {x2=0}
        Process P1()                Process P2()
        {                           {
          send(P2, "hello");          recv(m1);
          x1 = 5;                     x2 = 15;
          x1 = 10;                    x2 = 20;
          recv(m2);                   send(P1, "world");
        }                           }
    """
    builder = ComputationBuilder([{"x1": 0}, {"x2": 0}])
    builder.send(0, to=1, message_id=1)  # e1_1: send "hello"
    builder.internal(0, {"x1": 5})       # e1_2
    builder.internal(0, {"x1": 10})      # e1_3
    builder.receive(1, frm=0, message_id=1)  # e2_1: recv "hello"
    builder.internal(1, {"x2": 15})      # e2_2
    builder.internal(1, {"x2": 20})      # e2_3
    builder.send(1, to=0, message_id=2)  # e2_4: send "world"
    builder.receive(0, frm=1, message_id=2)  # e1_4: recv "world"
    return builder.build()


def running_example_registry() -> PropositionRegistry:
    """The propositions of the running-example property ψ (Fig. 2.3):
    ``x1 >= 5``, ``x1 = 10`` (owned by P1) and ``x2 >= 15`` (owned by P2)."""
    return PropositionRegistry(
        [
            Proposition.comparison("x1>=5", 0, "x1", ">=", 5),
            Proposition.comparison("x1=10", 0, "x1", "==", 10),
            Proposition.comparison("x2>=15", 1, "x2", ">=", 15),
        ]
    )


def two_phase_commit_example(num_participants: int = 2) -> Computation:
    """A coordinator running one round of two-phase commit with *num_participants*.

    Process 0 is the coordinator; processes ``1 .. n`` are participants.  The
    coordinator sends ``prepare`` to everyone, each participant votes yes
    (setting its local ``voted`` / ``committed`` flags), and the coordinator
    commits after collecting every vote.  Useful as a realistic workload with
    both causal chains and concurrency between participants.
    """
    if num_participants < 1:
        raise ValueError("need at least one participant")
    n = num_participants + 1
    initial = [{"phase": "init", "committed": False, "voted": False} for _ in range(n)]
    builder = ComputationBuilder(initial)
    message_id = 0

    # phase 1: prepare
    prepare_ids: list[int] = []
    for participant in range(1, n):
        message_id += 1
        prepare_ids.append(message_id)
        builder.send(0, to=participant, message_id=message_id)
    builder.internal(0, {"phase": "waiting"})

    vote_ids: list[int] = []
    for participant in range(1, n):
        builder.receive(participant, frm=0, message_id=prepare_ids[participant - 1])
        builder.internal(participant, {"phase": "prepared", "voted": True})
        message_id += 1
        vote_ids.append(message_id)
        builder.send(participant, to=0, message_id=message_id)

    # phase 2: commit
    for participant in range(1, n):
        builder.receive(0, frm=participant, message_id=vote_ids[participant - 1])
    builder.internal(0, {"phase": "committed", "committed": True})
    commit_ids: list[int] = []
    for participant in range(1, n):
        message_id += 1
        commit_ids.append(message_id)
        builder.send(0, to=participant, message_id=message_id)
    for participant in range(1, n):
        builder.receive(participant, frm=0, message_id=commit_ids[participant - 1])
        builder.internal(participant, {"phase": "committed", "committed": True})
    return builder.build()


def token_ring_example(num_processes: int = 3, rounds: int = 1) -> Computation:
    """A token circulating around a ring; the token holder is in its critical
    section (local flag ``cs``).  Mutual exclusion of ``cs`` flags is the
    natural safety property to monitor on this computation."""
    if num_processes < 2:
        raise ValueError("a ring needs at least two processes")
    initial = [{"cs": False, "token": i == 0} for i in range(num_processes)]
    builder = ComputationBuilder(initial)
    message_id = 0
    for _ in range(rounds):
        for holder in range(num_processes):
            successor = (holder + 1) % num_processes
            builder.internal(holder, {"cs": True})
            builder.internal(holder, {"cs": False, "token": False})
            message_id += 1
            builder.send(holder, to=successor, message_id=message_id)
            builder.receive(successor, frm=holder, message_id=message_id)
            builder.internal(successor, {"token": True})
    return builder.build()
