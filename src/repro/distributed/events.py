"""Events of an asynchronous message-passing computation.

Following Chapter 2 of the paper, an event of process ``P_i`` is either an
*internal* event (a local state change), a *send* or a *receive*.  Send and
receive events do not change the local state (they are modelled as
self-loops on the local state), but they do advance the vector clock and —
for receives — merge the sender's clock.

Every event records the full valuation of its process's local variables
*after* the event, its vector clock and its per-process sequence number,
exactly the tuple ``e = 〈T, D, VC, sn〉`` used by the monitoring algorithm.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping
from dataclasses import dataclass, field

from .clocks import VectorClock

__all__ = ["EventKind", "Event"]


class EventKind(enum.Enum):
    """The type ``T`` of an event."""

    INTERNAL = "internal"
    SEND = "send"
    RECEIVE = "receive"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Event:
    """A single event of one process.

    Attributes
    ----------
    process:
        Index of the process the event belongss to.
    sn:
        Sequence number of the event within its process (the first event has
        ``sn == 1``; ``sn == 0`` is reserved for the initial state).
    kind:
        Internal, send or receive.
    vc:
        The process's vector clock immediately after the event.
    state:
        Valuation of the process's local variables after the event.
    peer:
        For send events the destination process, for receive events the
        sender; ``None`` for internal events.
    message_id:
        Correlates a send event with its matching receive event.
    timestamp:
        Physical/simulated occurrence time (used by the metrics of
        Chapter 5); ``0.0`` when not simulated.
    """

    process: int
    sn: int
    kind: EventKind
    vc: VectorClock
    state: Mapping[str, object] = field(default_factory=dict)
    peer: int | None = None
    message_id: int | None = None
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if self.sn < 0:
            raise ValueError("sequence numbers must be non-negative")
        if self.kind in (EventKind.SEND, EventKind.RECEIVE) and self.peer is None:
            raise ValueError(f"{self.kind} events require a peer process")
        if self.vc[self.process] != self.sn:
            raise ValueError(
                "vector clock local component must equal the sequence number "
                f"(got VC={self.vc!r}, sn={self.sn}, process={self.process})"
            )

    # -- ordering helpers --------------------------------------------------
    def happened_before(self, other: "Event") -> bool:
        """Lamport's happened-before, decided via vector clocks."""
        return self.vc < other.vc

    def concurrent_with(self, other: "Event") -> bool:
        """Whether this event and *other* are causally unordered."""
        return self.vc.concurrent_with(other.vc)

    @property
    def is_internal(self) -> bool:
        """Whether this is an internal (non-communication) event."""
        return self.kind is EventKind.INTERNAL

    @property
    def is_send(self) -> bool:
        """Whether this event sends an application message."""
        return self.kind is EventKind.SEND

    @property
    def is_receive(self) -> bool:
        """Whether this event receives an application message."""
        return self.kind is EventKind.RECEIVE

    def local_copy(self) -> dict[str, object]:
        """A mutable copy of the local state after the event."""
        return dict(self.state)

    def __str__(self) -> str:
        return f"e{self.process}_{self.sn}({self.kind})"
