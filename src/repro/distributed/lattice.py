"""The computation lattice of consistent cuts (Definition 6, Fig. 2.2b).

The set of consistent cuts of a distributed computation, ordered by
inclusion, forms a distributive lattice.  The lattice is the "oracle"
structure of the paper: every maximal path from the empty cut to the final
cut is one possible total order of the execution, and running each path
through the LTL3 monitor yields the reference verdict set against which the
decentralized algorithm's soundness and completeness are stated (Chapter 3).

The implementation enumerates cuts explicitly (breadth-first from the empty
cut), which is exactly what the paper's oracle does; it is meant for the
moderate event counts of tests and experiments, not for monitoring itself —
the whole point of the decentralized algorithm is to avoid building this
lattice.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from dataclasses import dataclass

from .computation import Computation, Cut

__all__ = ["ComputationLattice"]


@dataclass
class ComputationLattice:
    """Explicit lattice of the consistent cuts of a computation."""

    computation: Computation
    _cuts: list[Cut]
    _successors: dict[Cut, list[Cut]]
    _predecessors: dict[Cut, list[Cut]]

    # -- construction -----------------------------------------------------
    @classmethod
    def from_computation(cls, computation: Computation) -> "ComputationLattice":
        """Enumerate all consistent cuts reachable from the empty cut."""
        bottom: Cut = (0,) * computation.num_processes
        cuts: list[Cut] = [bottom]
        seen: set[Cut] = {bottom}
        successors: dict[Cut, list[Cut]] = {}
        predecessors: dict[Cut, list[Cut]] = {bottom: []}
        frontier: list[Cut] = [bottom]
        limits = computation.final_cut()
        while frontier:
            cut = frontier.pop(0)
            successors[cut] = []
            for process in range(computation.num_processes):
                if cut[process] >= limits[process]:
                    continue
                candidate = tuple(
                    c + 1 if i == process else c for i, c in enumerate(cut)
                )
                if not computation.is_consistent_cut(candidate):
                    continue
                successors[cut].append(candidate)
                predecessors.setdefault(candidate, []).append(cut)
                if candidate not in seen:
                    seen.add(candidate)
                    cuts.append(candidate)
                    frontier.append(candidate)
        return cls(
            computation=computation,
            _cuts=cuts,
            _successors=successors,
            _predecessors=predecessors,
        )

    # -- structure ----------------------------------------------------------
    def cuts(self) -> list[Cut]:
        """All consistent cuts, in breadth-first (level) order."""
        return list(self._cuts)

    def __len__(self) -> int:
        return len(self._cuts)

    def __contains__(self, cut: Cut) -> bool:
        return tuple(cut) in self._successors

    @property
    def bottom(self) -> Cut:
        """The empty cut (no events of any process) — the lattice minimum."""
        return (0,) * self.computation.num_processes

    @property
    def top(self) -> Cut:
        """The final cut (every event of every process) — the maximum."""
        return self.computation.final_cut()

    def successors(self, cut: Cut) -> list[Cut]:
        """Immediate successors (one more event of exactly one process)."""
        return list(self._successors.get(tuple(cut), ()))

    def predecessors(self, cut: Cut) -> list[Cut]:
        """Immediate predecessors (one fewer event of exactly one process)."""
        return list(self._predecessors.get(tuple(cut), ()))

    # -- lattice operations ---------------------------------------------------
    @staticmethod
    def join(first: Cut, second: Cut) -> Cut:
        """Least upper bound: component-wise maximum (Definition 14)."""
        return tuple(max(a, b) for a, b in zip(first, second))

    @staticmethod
    def meet(first: Cut, second: Cut) -> Cut:
        """Greatest lower bound: component-wise minimum (Definition 14)."""
        return tuple(min(a, b) for a, b in zip(first, second))

    def is_join_irreducible(self, cut: Cut) -> bool:
        """Definition 15: the cut is not the bottom element and is not the
        join of two strictly smaller consistent cuts."""
        cut = tuple(cut)
        if cut == self.bottom:
            return False
        others = [c for c in self._cuts if c != cut and self.meet(c, cut) == c]
        for i, first in enumerate(others):
            for second in others[i:]:
                if self.join(first, second) == cut:
                    return False
        return True

    # -- paths -----------------------------------------------------------------
    def paths(
        self, start: Cut | None = None, end: Cut | None = None
    ) -> Iterator[list[Cut]]:
        """Enumerate all paths from *start* (default bottom) to *end* (default top).

        Every path is a total-order interpretation of the computation: each
        step appends exactly one event.  The number of paths can be
        exponential; the generator is lazy.
        """
        start = tuple(start) if start is not None else self.bottom
        end = tuple(end) if end is not None else self.top
        if start not in self or end not in self:
            raise ValueError("start and end must be consistent cuts of the lattice")

        path: list[Cut] = [start]

        def backtrack(cut: Cut) -> Iterator[list[Cut]]:
            if cut == end:
                yield list(path)
                return
            for successor in self._successors[cut]:
                if self.meet(successor, end) != successor:
                    continue  # successor not below the requested end
                path.append(successor)
                yield from backtrack(successor)
                path.pop()

        return backtrack(start)

    def count_paths(self) -> int:
        """The number of maximal paths (computed by dynamic programming)."""
        counts: dict[Cut, int] = {self.top: 1}
        for cut in sorted(self._cuts, key=sum, reverse=True):
            if cut == self.top:
                continue
            counts[cut] = sum(counts[s] for s in self._successors[cut])
        return counts.get(self.bottom, 0)

    def global_states_on_path(self, path: Sequence[Cut]) -> list[list[dict]]:
        """The global-state trace corresponding to a lattice path (Definition 7)."""
        return [self.computation.global_state(cut) for cut in path]

    # -- levels ------------------------------------------------------------------
    def levels(self) -> list[list[Cut]]:
        """Cuts grouped by the number of events they contain."""
        by_level: dict[int, list[Cut]] = {}
        for cut in self._cuts:
            by_level.setdefault(sum(cut), []).append(cut)
        return [by_level[k] for k in sorted(by_level)]

    def width(self) -> int:
        """Maximum number of mutually concurrent cuts at the same level."""
        return max(len(level) for level in self.levels())

    def __repr__(self) -> str:
        return (
            f"ComputationLattice(cuts={len(self._cuts)}, "
            f"paths={self.count_paths()})"
        )
