"""Distributed-computation substrate: clocks, events, computations, lattices.

Public API
----------
* :class:`VectorClock` — immutable vector clocks (happened-before).
* :class:`Event` / :class:`EventKind` — internal, send and receive events.
* :class:`Computation` / :class:`ComputationBuilder` — partially ordered
  executions with correct-by-construction clock assignment.
* :class:`ComputationLattice` — the lattice of consistent cuts (the oracle
  structure of Chapter 3).
* :func:`running_example` — the two-process program of Fig. 2.1.
"""

from .clocks import VectorClock
from .computation import Computation, ComputationBuilder, Cut
from .events import Event, EventKind
from .lattice import ComputationLattice
from .programs import (
    running_example,
    running_example_registry,
    token_ring_example,
    two_phase_commit_example,
)

__all__ = [
    "VectorClock",
    "Computation",
    "ComputationBuilder",
    "Cut",
    "Event",
    "EventKind",
    "ComputationLattice",
    "running_example",
    "running_example_registry",
    "token_ring_example",
    "two_phase_commit_example",
]
