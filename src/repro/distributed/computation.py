"""Distributed computations: partially ordered sets of process events.

A :class:`Computation` is the *finished* record of one execution of a
distributed program — for every process its initial state and the ordered
list of events it produced, with vector clocks already assigned.  It is the
structure the lattice (:mod:`repro.distributed.lattice`), the slicer
(:mod:`repro.slicing`) and the oracle monitor reason about, and the
simulation layer (:mod:`repro.sim`) produces computations as a by-product of
running programs.

:class:`ComputationBuilder` provides a convenient, correct-by-construction
way to write small computations by hand (used by the running example of
Fig. 2.1 and throughout the tests): it assigns sequence numbers and vector
clocks and checks FIFO consistency of message matching.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from dataclasses import dataclass

from .clocks import VectorClock
from .events import Event, EventKind

__all__ = ["Cut", "Computation", "ComputationBuilder"]

#: A cut is identified by how many events of each process it contains.
Cut = tuple[int, ...]


@dataclass
class Computation:
    """A complete asynchronous computation of ``n`` processes."""

    initial_states: list[dict[str, object]]
    events: list[list[Event]]

    def __post_init__(self) -> None:
        if len(self.initial_states) != len(self.events):
            raise ValueError("one initial state per process is required")
        for process, process_events in enumerate(self.events):
            for position, event in enumerate(process_events, start=1):
                if event.process != process:
                    raise ValueError(
                        f"event {event} stored under process {process}"
                    )
                if event.sn != position:
                    raise ValueError(
                        f"event {event} has sn {event.sn}, expected {position}"
                    )

    # -- basic accessors -----------------------------------------------------
    @property
    def num_processes(self) -> int:
        """How many processes the computation spans."""
        return len(self.events)

    @property
    def num_events(self) -> int:
        """Total event count across every process."""
        return sum(len(evts) for evts in self.events)

    def events_of(self, process: int) -> list[Event]:
        """The local event sequence of *process*, in sequence-number order."""
        return self.events[process]

    def event(self, process: int, sn: int) -> Event:
        """The ``sn``-th event of *process* (1-based)."""
        return self.events[process][sn - 1]

    def all_events(self) -> Iterable[Event]:
        """Every event, grouped by process and ordered locally by sn."""
        for process_events in self.events:
            yield from process_events

    def final_cut(self) -> Cut:
        """The cut containing every event."""
        return tuple(len(evts) for evts in self.events)

    # -- states ----------------------------------------------------------------
    def local_state(self, process: int, count: int) -> dict[str, object]:
        """Local state of *process* after its first *count* events."""
        if count == 0:
            return dict(self.initial_states[process])
        return dict(self.events[process][count - 1].state)

    def global_state(self, cut: Cut) -> list[dict[str, object]]:
        """The global state corresponding to a cut (one local state each)."""
        if len(cut) != self.num_processes:
            raise ValueError("cut arity must equal the number of processes")
        return [self.local_state(i, cut[i]) for i in range(self.num_processes)]

    def cut_clock(self, cut: Cut) -> VectorClock:
        """Vector clock of a cut: component ``i`` is the count of ``P_i`` events."""
        return VectorClock(cut)

    # -- order ------------------------------------------------------------------
    def happened_before(self, first: Event, second: Event) -> bool:
        """Whether *first* happened-before *second* (vector-clock order)."""
        return first.happened_before(second)

    def concurrent(self, first: Event, second: Event) -> bool:
        """Whether the two events are causally unordered."""
        return first.concurrent_with(second)

    def is_consistent_cut(self, cut: Cut) -> bool:
        """Definition 4: a cut is consistent when it is closed under
        happened-before — each included event's vector clock is dominated by
        the cut."""
        if len(cut) != self.num_processes:
            raise ValueError("cut arity must equal the number of processes")
        for process, count in enumerate(cut):
            if count < 0 or count > len(self.events[process]):
                raise ValueError(f"cut {cut} out of range for process {process}")
            if count == 0:
                continue
            clock = self.events[process][count - 1].vc
            for other in range(self.num_processes):
                if clock[other] > cut[other]:
                    return False
        return True

    def consistent_cuts(self) -> list[Cut]:
        """All consistent cuts (the vertex set of the computation lattice)."""
        from .lattice import ComputationLattice  # local import to avoid a cycle

        return ComputationLattice.from_computation(self).cuts()

    # -- convenience -------------------------------------------------------------
    def frontier_events(self, cut: Cut) -> list[Event | None]:
        """The last event of each process inside the cut (``None`` if none)."""
        return [
            self.events[i][cut[i] - 1] if cut[i] > 0 else None
            for i in range(self.num_processes)
        ]

    def __repr__(self) -> str:
        return (
            f"Computation(processes={self.num_processes}, events={self.num_events})"
        )


class ComputationBuilder:
    """Incrementally construct a :class:`Computation` with correct clocks.

    Example — the running example of Fig. 2.1::

        builder = ComputationBuilder([{"x1": 0}, {"x2": 0}])
        builder.send(0, to=1, message_id=1)      # e1_1: send "hello"
        builder.internal(0, {"x1": 5})           # e1_2
        builder.internal(0, {"x1": 10})          # e1_3
        builder.receive(1, frm=0, message_id=1)  # e2_1: recv "hello"
        builder.internal(1, {"x2": 15})          # e2_2
        builder.internal(1, {"x2": 20})          # e2_3
        builder.send(1, to=0, message_id=2)      # e2_4: send "world"
        builder.receive(0, frm=1, message_id=2)  # e1_4: recv "world"
        computation = builder.build()
    """

    def __init__(self, initial_states: Sequence[Mapping[str, object]]):
        if not initial_states:
            raise ValueError("at least one process is required")
        self._initial = [dict(s) for s in initial_states]
        self._n = len(self._initial)
        self._events: list[list[Event]] = [[] for _ in range(self._n)]
        self._clocks = [VectorClock.zero(self._n) for _ in range(self._n)]
        self._states = [dict(s) for s in self._initial]
        self._pending_messages: dict[int, VectorClock] = {}
        self._message_sender: dict[int, int] = {}
        self._time = 0.0

    def _next_timestamp(self, timestamp: float | None) -> float:
        if timestamp is None:
            self._time += 1.0
            return self._time
        self._time = max(self._time, timestamp)
        return timestamp

    def _append(self, process: int, event: Event) -> Event:
        self._events[process].append(event)
        return event

    # -- event constructors -------------------------------------------------
    def internal(
        self,
        process: int,
        updates: Mapping[str, object],
        timestamp: float | None = None,
    ) -> Event:
        """An internal event applying *updates* to the local state."""
        clock = self._clocks[process].increment(process)
        self._clocks[process] = clock
        self._states[process] = {**self._states[process], **updates}
        return self._append(
            process,
            Event(
                process=process,
                sn=clock[process],
                kind=EventKind.INTERNAL,
                vc=clock,
                state=dict(self._states[process]),
                timestamp=self._next_timestamp(timestamp),
            ),
        )

    def send(
        self,
        process: int,
        to: int,
        message_id: int,
        timestamp: float | None = None,
    ) -> Event:
        """A send event to process *to* with a fresh *message_id*."""
        if message_id in self._message_sender:
            raise ValueError(f"message id {message_id} already used")
        if to == process or not (0 <= to < self._n):
            raise ValueError(f"invalid destination process {to}")
        clock = self._clocks[process].increment(process)
        self._clocks[process] = clock
        self._pending_messages[message_id] = clock
        self._message_sender[message_id] = process
        return self._append(
            process,
            Event(
                process=process,
                sn=clock[process],
                kind=EventKind.SEND,
                vc=clock,
                state=dict(self._states[process]),
                peer=to,
                message_id=message_id,
                timestamp=self._next_timestamp(timestamp),
            ),
        )

    def receive(
        self,
        process: int,
        frm: int,
        message_id: int,
        timestamp: float | None = None,
    ) -> Event:
        """A receive event consuming *message_id* previously sent by *frm*."""
        if message_id not in self._pending_messages:
            raise ValueError(f"message id {message_id} was never sent")
        if self._message_sender[message_id] != frm:
            raise ValueError(
                f"message id {message_id} was sent by process "
                f"{self._message_sender[message_id]}, not {frm}"
            )
        sender_clock = self._pending_messages.pop(message_id)
        clock = self._clocks[process].merge(sender_clock).increment(process)
        self._clocks[process] = clock
        return self._append(
            process,
            Event(
                process=process,
                sn=clock[process],
                kind=EventKind.RECEIVE,
                vc=clock,
                state=dict(self._states[process]),
                peer=frm,
                message_id=message_id,
                timestamp=self._next_timestamp(timestamp),
            ),
        )

    # -- result ------------------------------------------------------------------
    def build(self, allow_in_flight: bool = True) -> Computation:
        """Finish and return the computation.

        With ``allow_in_flight=False`` a pending (sent but unreceived)
        message raises, which is convenient to catch incomplete test set-ups.
        """
        if not allow_in_flight and self._pending_messages:
            raise ValueError(
                f"messages never received: {sorted(self._pending_messages)}"
            )
        return Computation(
            initial_states=[dict(s) for s in self._initial],
            events=[list(evts) for evts in self._events],
        )
