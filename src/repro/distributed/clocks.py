"""Logical clocks for asynchronous distributed computations.

Vector clocks (Mattern / Fidge) realise Lamport's happened-before relation:
event ``a`` happened before event ``b`` iff ``VC(a) < VC(b)`` component-wise
with at least one strict inequality.  The decentralized monitoring algorithm
relies on vector clocks both to order events and to detect *inconsistent*
global cuts (a cut is inconsistent when some collected event knows about a
later event of another process than the cut does).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence


__all__ = ["VectorClock"]


class VectorClock:
    """An immutable vector clock for a system of ``n`` processes."""

    __slots__ = ("_components",)

    def __init__(self, components: Iterable[int]):
        components = tuple(int(c) for c in components)
        if any(c < 0 for c in components):
            raise ValueError("vector clock components must be non-negative")
        object.__setattr__(self, "_components", components)

    def __setattr__(self, key, value):  # immutability guard
        raise AttributeError("VectorClock is immutable")

    # -- constructors ----------------------------------------------------
    @classmethod
    def zero(cls, num_processes: int) -> "VectorClock":
        """The all-zero clock of a fresh computation."""
        if num_processes <= 0:
            raise ValueError("number of processes must be positive")
        return cls((0,) * num_processes)

    # -- accessors --------------------------------------------------------
    def __getitem__(self, index: int) -> int:
        return self._components[index]

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[int]:
        return iter(self._components)

    @property
    def components(self) -> tuple[int, ...]:
        return self._components

    def as_list(self) -> list[int]:
        return list(self._components)

    # -- updates (returning new clocks) ------------------------------------
    def increment(self, process: int) -> "VectorClock":
        """Tick the local component of *process*."""
        components = list(self._components)
        components[process] += 1
        return VectorClock(components)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum (used on message receive)."""
        self._check_compatible(other)
        return VectorClock(
            max(a, b) for a, b in zip(self._components, other._components)
        )

    def receive(self, other: "VectorClock", process: int) -> "VectorClock":
        """Merge with the sender's clock and tick the local component."""
        return self.merge(other).increment(process)

    def with_component(self, process: int, value: int) -> "VectorClock":
        """A copy with one component replaced."""
        components = list(self._components)
        components[process] = int(value)
        return VectorClock(components)

    # -- comparisons --------------------------------------------------------
    def _check_compatible(self, other: "VectorClock") -> None:
        if len(self) != len(other):
            raise ValueError(
                f"incompatible vector clock sizes: {len(self)} vs {len(other)}"
            )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorClock) and self._components == other._components

    def __hash__(self) -> int:
        return hash(self._components)

    def __le__(self, other: "VectorClock") -> bool:
        self._check_compatible(other)
        return all(a <= b for a, b in zip(self._components, other._components))

    def __lt__(self, other: "VectorClock") -> bool:
        """Strict happened-before order on clocks."""
        return self <= other and self != other

    def __ge__(self, other: "VectorClock") -> bool:
        return other <= self

    def __gt__(self, other: "VectorClock") -> bool:
        return other < self

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock dominates the other."""
        return not (self <= other) and not (other <= self)

    def __repr__(self) -> str:
        return f"VC{list(self._components)}"

    # -- helpers used by the monitoring algorithm ---------------------------
    def dominates_on(self, other: "VectorClock", indices: Sequence[int]) -> bool:
        """Whether ``self[i] >= other[i]`` for every index in *indices*."""
        return all(self._components[i] >= other[i] for i in indices)

    def lagging_components(self, other: "VectorClock") -> list[int]:
        """Indices where *self* knows strictly less than *other*.

        These are exactly the processes whose state must be refreshed before
        a global cut containing *other*'s knowledge becomes consistent.
        """
        self._check_compatible(other)
        return [
            i
            for i, (a, b) in enumerate(zip(self._components, other._components))
            if a < b
        ]
