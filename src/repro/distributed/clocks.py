"""Logical clocks for asynchronous distributed computations.

Vector clocks (Mattern / Fidge) realise Lamport's happened-before relation:
event ``a`` happened before event ``b`` iff ``VC(a) < VC(b)`` component-wise
with at least one strict inequality.  The decentralized monitoring algorithm
relies on vector clocks both to order events and to detect *inconsistent*
global cuts (a cut is inconsistent when some collected event knows about a
later event of another process than the cut does).
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Iterator, Sequence


__all__ = ["VectorClock", "ClockSkew"]


class VectorClock:
    """An immutable vector clock for a system of ``n`` processes."""

    __slots__ = ("_components",)

    def __init__(self, components: Iterable[int]):
        components = tuple(int(c) for c in components)
        if any(c < 0 for c in components):
            raise ValueError("vector clock components must be non-negative")
        object.__setattr__(self, "_components", components)

    def __setattr__(self, key, value):  # immutability guard
        raise AttributeError("VectorClock is immutable")

    # -- constructors ----------------------------------------------------
    @classmethod
    def zero(cls, num_processes: int) -> "VectorClock":
        """The all-zero clock of a fresh computation."""
        if num_processes <= 0:
            raise ValueError("number of processes must be positive")
        return cls((0,) * num_processes)

    # -- accessors --------------------------------------------------------
    def __getitem__(self, index: int) -> int:
        return self._components[index]

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[int]:
        return iter(self._components)

    @property
    def components(self) -> tuple[int, ...]:
        """The clock's components as an immutable tuple."""
        return self._components

    def as_list(self) -> list[int]:
        """The clock's components as a fresh mutable list."""
        return list(self._components)

    # -- updates (returning new clocks) ------------------------------------
    def increment(self, process: int) -> "VectorClock":
        """Tick the local component of *process*."""
        components = list(self._components)
        components[process] += 1
        return VectorClock(components)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum (used on message receive)."""
        self._check_compatible(other)
        return VectorClock(
            max(a, b) for a, b in zip(self._components, other._components)
        )

    def receive(self, other: "VectorClock", process: int) -> "VectorClock":
        """Merge with the sender's clock and tick the local component."""
        return self.merge(other).increment(process)

    def with_component(self, process: int, value: int) -> "VectorClock":
        """A copy with one component replaced."""
        components = list(self._components)
        components[process] = int(value)
        return VectorClock(components)

    # -- comparisons --------------------------------------------------------
    def _check_compatible(self, other: "VectorClock") -> None:
        if len(self) != len(other):
            raise ValueError(
                f"incompatible vector clock sizes: {len(self)} vs {len(other)}"
            )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorClock) and self._components == other._components

    def __hash__(self) -> int:
        return hash(self._components)

    def __le__(self, other: "VectorClock") -> bool:
        self._check_compatible(other)
        return all(a <= b for a, b in zip(self._components, other._components))

    def __lt__(self, other: "VectorClock") -> bool:
        """Strict happened-before order on clocks."""
        return self <= other and self != other

    def __ge__(self, other: "VectorClock") -> bool:
        return other <= self

    def __gt__(self, other: "VectorClock") -> bool:
        return other < self

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock dominates the other."""
        return not (self <= other) and not (other <= self)

    def __repr__(self) -> str:
        return f"VC{list(self._components)}"

    # -- helpers used by the monitoring algorithm ---------------------------
    def dominates_on(self, other: "VectorClock", indices: Sequence[int]) -> bool:
        """Whether ``self[i] >= other[i]`` for every index in *indices*."""
        return all(self._components[i] >= other[i] for i in indices)

    def lagging_components(self, other: "VectorClock") -> list[int]:
        """Indices where *self* knows strictly less than *other*.

        These are exactly the processes whose state must be refreshed before
        a global cut containing *other*'s knowledge becomes consistent.
        """
        self._check_compatible(other)
        return [
            i
            for i, (a, b) in enumerate(zip(self._components, other._components))
            if a < b
        ]


#: dedicated RNG salt so skew streams are independent of workload/fault RNGs
_SKEW_SEED_SALT = 0x5C1F_0C7E


class ClockSkew:
    """Deterministic perturbation of a computation's vector-clock assignment.

    Feeds on the *true* per-event clocks of one process at a time (in
    sequence-number order) and emits skewed clocks that keep every
    structural invariant an :class:`~repro.distributed.events.Event`
    requires: the local component stays exactly the event's sequence number
    and each process's clock sequence stays component-wise monotone.

    Two modes, on either side of the happened-before boundary:

    * ``"sound"`` only *inflates* what an event appears to know about other
      processes (capped at each process's final event count).  Every cut
      consistent under inflated clocks is consistent under the true clocks
      — the skewed consistency predicate is strictly stronger — so monitors
      explore a sub-lattice of the real computation lattice and any verdict
      they declare corresponds to a real execution path: soundness is
      preserved by construction, only completeness may suffer.
    * ``"unsound"`` *deflates* received knowledge, hiding happened-before
      edges, so cuts that are inconsistent in reality may look consistent —
      monitors can explore impossible interleavings and declare verdicts no
      real execution supports.  Deliberately soundness-breaking; exists so
      the fuzzing oracle has a known-divergent regime to calibrate against.

    Perturbation draws come from per-process salted RNG streams derived
    from ``seed`` alone, so the transform is deterministic and independent
    of the order in which processes are skewed.
    """

    def __init__(
        self,
        num_processes: int,
        maxima: Sequence[int],
        *,
        mode: str = "sound",
        rate: float = 0.25,
        magnitude: int = 1,
        seed: int = 0,
    ):
        if mode not in ("sound", "unsound"):
            raise ValueError(f"unknown skew mode {mode!r}")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be within [0, 1], got {rate}")
        if magnitude < 1:
            raise ValueError(f"magnitude must be >= 1, got {magnitude}")
        if len(maxima) != num_processes:
            raise ValueError(
                f"need one component maximum per process: "
                f"{len(maxima)} maxima for {num_processes} processes"
            )
        self.num_processes = num_processes
        self.maxima = tuple(int(m) for m in maxima)
        self.mode = mode
        self.rate = rate
        self.magnitude = magnitude
        self.seed = seed
        self._rngs = [
            random.Random(((seed ^ _SKEW_SEED_SALT) << 8) | process)
            for process in range(num_processes)
        ]
        self._carry: list[list[int]] = [
            [0] * num_processes for _ in range(num_processes)
        ]
        #: events whose clock the skew actually changed
        self.perturbed_events = 0
        #: total component distortion applied (absolute value, summed)
        self.distortion = 0

    def perturb(
        self, process: int, sn: int, components: Sequence[int]
    ) -> tuple[int, ...]:
        """The skewed clock of event ``(process, sn)``.

        Must be called in sequence-number order per process (the carry
        vector that preserves monotonicity is keyed on it).
        """
        n = self.num_processes
        rng = self._rngs[process]
        skewed = list(int(c) for c in components)
        if rng.random() < self.rate and n > 1:
            victim = rng.randrange(n - 1)
            if victim >= process:
                victim += 1  # never touch the local component
            amount = rng.randint(1, self.magnitude)
            if self.mode == "sound":
                skewed[victim] = min(skewed[victim] + amount, self.maxima[victim])
            else:
                skewed[victim] = max(skewed[victim] - amount, 0)
        carry = self._carry[process]
        result = []
        for k in range(n):
            if k == process:
                value = sn  # the Event invariant: local component == sn
            else:
                value = max(skewed[k], carry[k])
                if self.mode == "unsound":
                    # deflation must never *add* knowledge: the carry keeps
                    # monotonicity, the true clock caps it from above
                    value = min(value, int(components[k]))
            result.append(value)
        self._carry[process] = result
        changed = sum(abs(a - int(b)) for a, b in zip(result, components))
        if changed:
            self.perturbed_events += 1
            self.distortion += changed
        return tuple(result)

    def stats(self) -> dict[str, float]:
        """Flat ``fault_skew_*`` counters merged into run reports."""
        return {
            "fault_skew_perturbed_events": float(self.perturbed_events),
            "fault_skew_distortion": float(self.distortion),
        }
