"""Backend-agnostic crash/restart injection around the shared monitor.

The whole stack drives monitors exclusively through the
:class:`repro.core.transport.MonitorNode` entry points, so fault injection
needs exactly one mechanism for every backend: :class:`MonitorFaultProxy`
wraps a :class:`repro.core.monitor.DecentralizedMonitor` (or any other
``MonitorNode``) and interposes on the same four entry points.  The
discrete-event simulator registers proxies with its
:class:`~repro.sim.network.SimulatedNetwork`; the asyncio runtime hands them
to :class:`~repro.runtime.node.StreamMonitorNode` — neither backend contains
any fault logic of its own.

Crash triggers count *processed local events* (see
:mod:`repro.faults.plan` for why that makes plans deterministic across
backends).  While down, the proxy buffers local events, holds inbound
messages and, at restart, applies the spec's recovery policy before draining
both queues (held messages first — they are older — then buffered events,
preserving per-channel FIFO and local order).  A termination signal arriving
during downtime force-restarts the monitor so a crash can never swallow the
end of a run.

``rejoin`` recovery rebuilds the monitor through the factory supplied by the
runner: the fresh incarnation inherits only the durable facts (declared
verdicts, peer-termination knowledge), replays the retained local event log
and re-explores from there; tokens created by the old incarnation are
silently dropped when they return (the fresh monitor does not know them),
which is exactly the cost the fault scenarios measure.

The same proxy hosts the adversarial :class:`~repro.faults.plan.ByzantineSpec`
behaviours: inbound behaviours (duplication, progression-state corruption,
stale-token replay) interpose on ``receive_message`` counting the monitor's
inbound monitoring messages, while drop-on-send wraps the inner monitor's
``transport`` attribute — the single outbound seam every backend shares.
Byzantine counters land in ``FaultStats.extra`` (as ``fault_byz_*``), so
crash-only runs keep their historical counter shape.
"""

from __future__ import annotations

import copy
from collections.abc import Callable
from dataclasses import fields

from ..core.messages import Token
from ..core.monitor import DecentralizedMonitor, MonitorMetrics
from .plan import RECOVERY_REJOIN, ByzantineSpec, CrashSpec, FaultPlan, FaultStats

__all__ = ["MonitorFaultProxy", "FaultInjector", "unwrap_monitor", "wrap_monitors"]


class _DropOnSendTransport:
    """Transport facade that silently drops every k-th outbound send.

    Installed as the inner monitor's ``transport`` attribute by its fault
    proxy, so the drop happens *before* the real transport sees the frame —
    neither backend counts a dropped message as sent or in flight, which
    keeps quiescence detection honest while the receiver simply never
    learns the message existed (the reliable-channel assumption broken in
    the most literal way).
    """

    def __init__(self, inner: object, proxy: "MonitorFaultProxy") -> None:
        self._inner = inner
        self._proxy = proxy
        self._sends = 0

    def send(self, sender: int, target: int, message: object) -> None:
        """Forward to the real transport, swallowing every k-th frame."""
        self._sends += 1
        byzantine = self._proxy.byzantine
        assert byzantine is not None and byzantine.drop_every
        if self._sends % byzantine.drop_every == 0:
            self._proxy.stats.extra["fault_byz_dropped"] += 1.0
            return
        self._inner.send(sender, target, message)  # type: ignore[attr-defined]

    def __getattr__(self, name: str) -> object:
        return getattr(self._inner, name)


class MonitorFaultProxy:
    """A :class:`MonitorNode` that crashes and restarts its inner monitor.

    The proxy is a plain synchronous wrapper: it never spawns tasks or
    schedules callbacks, so it behaves identically under the discrete-event
    simulator and the asyncio runtime.  All mutable fault state
    (down/up, buffers, the durable local log) lives here; the inner monitor
    is replaced wholesale on ``rejoin`` recoveries.
    """

    def __init__(
        self,
        factory: Callable[[], DecentralizedMonitor],
        specs: tuple[CrashSpec, ...],
        stats: FaultStats,
        byzantine: ByzantineSpec | None = None,
    ) -> None:
        self._factory = factory
        self._specs = list(specs)
        self.stats = stats
        self.byzantine = byzantine
        self.monitor = factory()
        self._down = False
        self._active_spec: CrashSpec | None = None
        self._events_processed = 0
        self._inbound_messages = 0
        self._stale_token: Token | None = None
        self._log: list[object] = []
        self._buffered_events: list[object] = []
        self._held_messages: list[object] = []
        self._retired_metrics: list[MonitorMetrics] = []
        self._install_interceptor()

    # -- MonitorNode protocol -------------------------------------------
    @property
    def process(self) -> int:
        """Index of the program process the wrapped monitor serves."""
        return self.monitor.process

    @property
    def is_down(self) -> bool:
        """Whether the monitor is currently crashed."""
        return self._down

    def start(self) -> None:
        """Process the initial global state (delegated)."""
        self.monitor.start()

    def local_event(self, event: object) -> None:
        """Feed one local program event, buffering it during downtime."""
        if self._down:
            self._buffered_events.append(event)
            self.stats.buffered_events += 1
            assert self._active_spec is not None
            if len(self._buffered_events) > self._active_spec.down_events:
                self._restart()
        else:
            self._process_event(event)

    def local_termination(self) -> None:
        """Handle the termination signal, force-restarting a down monitor."""
        if self._down:
            self._restart(forced=True)
        self.monitor.local_termination()

    def receive_message(self, message: object) -> None:
        """Deliver a monitoring message, holding it during downtime."""
        if self._down:
            self._held_messages.append(message)
            self.stats.held_messages += 1
        else:
            self._deliver(message)

    # -- verdicts and metrics -------------------------------------------
    @property
    def declared_verdicts(self) -> set:
        """Conclusive verdicts declared so far (durable across crashes)."""
        return self.monitor.declared_verdicts

    def reported_verdicts(self) -> set:
        """Verdicts reported at the end of the run (delegated)."""
        return self.monitor.reported_verdicts()

    @property
    def metrics(self) -> MonitorMetrics:
        """Counters merged across every incarnation of the monitor.

        Additive counters are summed; ``max_active_views`` takes the
        maximum, matching its meaning.
        """
        merged = MonitorMetrics()
        for metrics in [*self._retired_metrics, self.monitor.metrics]:
            for spec in fields(MonitorMetrics):
                if spec.name == "max_active_views":
                    value = max(getattr(merged, spec.name), getattr(metrics, spec.name))
                else:
                    value = getattr(merged, spec.name) + getattr(metrics, spec.name)
                setattr(merged, spec.name, value)
        return merged

    # -- Byzantine behaviours -------------------------------------------
    def _install_interceptor(self) -> None:
        """Wrap the inner monitor's outbound seam when drop-on-send is armed.

        Re-invoked after ``rejoin`` recoveries: the fresh incarnation gets
        its own interceptor (its send counter restarts, like the rest of
        its volatile state).
        """
        if self.byzantine is not None and self.byzantine.drop_every:
            self.monitor.transport = _DropOnSendTransport(self.monitor.transport, self)

    def _deliver(self, message: object) -> None:
        """Hand one inbound message to the monitor, applying behaviours.

        Inbound behaviours trigger on every k-th *delivered* message (held
        messages count when drained, keeping one deterministic stream per
        backend).  The duplicate and the stale replay are deep copies, as
        re-sent frames would be; corruption forges a deep copy and leaves
        the original untouched, so in-process backends never see shared
        mutated state.
        """
        byzantine = self.byzantine
        if byzantine is None:
            self.monitor.receive_message(message)
            return
        self._inbound_messages += 1
        count = self._inbound_messages
        inbound = message
        if byzantine.corrupt_every and count % byzantine.corrupt_every == 0:
            corrupted = self._corrupt(message)
            if corrupted is not None:
                inbound = corrupted
        if self._stale_token is None and isinstance(inbound, Token):
            # remember the first token this monitor ever saw, for replays
            self._stale_token = copy.deepcopy(inbound)
        self.monitor.receive_message(inbound)
        if byzantine.duplicate_every and count % byzantine.duplicate_every == 0:
            self.stats.extra["fault_byz_duplicated"] += 1.0
            self.monitor.receive_message(copy.deepcopy(inbound))
        if (
            byzantine.replay_every
            and count % byzantine.replay_every == 0
            and self._stale_token is not None
        ):
            self.stats.extra["fault_byz_replayed"] += 1.0
            self.monitor.receive_message(copy.deepcopy(self._stale_token))

    def _corrupt(self, message: object) -> Token | None:
        """A forged copy of *message*, or ``None`` when nothing to forge.

        Corruption marks every undecided entry of a token conclusively
        evaluated (``eval=True``) without its guard ever having been
        checked — the receiving parent will fork global views for
        transitions no real execution took, which is exactly the forged
        progression state the soundness oracle must catch.  Only positions
        the token genuinely scanned are touched downstream (the box replay
        reads ``scanned_letters``), so the attack perturbs verdicts, not
        the monitor's internal invariants.
        """
        if not isinstance(message, Token):
            return None
        if not any(entry.eval is None for entry in message.entries):
            return None
        forged = copy.deepcopy(message)
        for entry in forged.entries:
            if entry.eval is None:
                entry.eval = True
        self.stats.extra["fault_byz_corrupted"] += 1.0
        return forged

    # -- crash / restart machinery --------------------------------------
    def _process_event(self, event: object) -> None:
        """Run one live local event through the monitor, then check triggers."""
        self._log.append(event)
        self.monitor.local_event(event)
        self._events_processed += 1
        if self._specs and self._specs[0].after_events == self._events_processed:
            self._crash(self._specs.pop(0))

    def _crash(self, spec: CrashSpec) -> None:
        # a zero-length outage (down_events == 0) restarts on the very next
        # local item; the recovery policy (state loss under rejoin) applies
        self._down = True
        self._active_spec = spec
        self.stats.crashes += 1

    def _restart(self, forced: bool = False) -> None:
        """Bring the monitor back up: recover state, then drain the queues."""
        spec = self._active_spec
        assert spec is not None
        self._down = False
        self._active_spec = None
        self.stats.restarts += 1
        if forced:
            self.stats.forced_restarts += 1
        if spec.recovery == RECOVERY_REJOIN:
            self._rejoin_from_scratch()
        held, self._held_messages = self._held_messages, []
        for message in held:
            self._deliver(message)
        buffered, self._buffered_events = self._buffered_events, []
        for event in buffered:
            self._process_event(event)

    def _rejoin_from_scratch(self) -> None:
        """Replace the monitor with a fresh incarnation and replay the log.

        Durable facts carried over: declared verdicts (already announced,
        cannot be retracted) and peer-termination knowledge (stable).  The
        volatile exploration state — views, outstanding and parked tokens —
        is rebuilt by replaying the local event log; re-exploration traffic
        is the measurable cost of this policy.
        """
        old = self.monitor
        self._retired_metrics.append(old.metrics)
        fresh = self._factory()
        fresh.declared_verdicts |= old.declared_verdicts
        fresh.declared_states |= old.declared_states
        for peer, final_sn in old.terminated.items():
            if final_sn is not None and peer != old.process:
                fresh.terminated[peer] = final_sn
        self.monitor = fresh
        self._install_interceptor()
        fresh.start()
        for event in self._log:
            fresh.local_event(event)
        self.stats.replayed_events += len(self._log)


class FaultInjector:
    """Per-run coordinator building fault proxies from a plan.

    One injector exists per monitored run; it owns the shared
    :class:`FaultStats` the run report exposes and decides which monitors
    need wrapping at all (monitors without crash cycles stay unwrapped, so
    a no-op plan leaves the run byte-identical).
    """

    def __init__(self, plan: FaultPlan, num_processes: int) -> None:
        self.plan = plan
        self.num_processes = num_processes
        self.stats = FaultStats()
        # pre-seed the counter of every armed Byzantine behaviour so a dead
        # injection path shows up as an explicit 0.0 in sweep rows (the
        # mutation-style observability tests assert on these keys)
        for spec in plan.byzantine:
            if spec.process >= num_processes or spec.is_noop:
                continue
            if spec.duplicate_every:
                self.stats.extra.setdefault("fault_byz_duplicated", 0.0)
            if spec.corrupt_every:
                self.stats.extra.setdefault("fault_byz_corrupted", 0.0)
            if spec.replay_every:
                self.stats.extra.setdefault("fault_byz_replayed", 0.0)
            if spec.drop_every:
                self.stats.extra.setdefault("fault_byz_dropped", 0.0)

    def wrap(
        self, process: int, factory: Callable[[], DecentralizedMonitor]
    ):
        """The endpoint for *process*: a fault proxy or the bare monitor."""
        specs = self.plan.specs_for(process)
        byzantine = self.plan.byzantine_for(process)
        if not specs and byzantine is None:
            return factory()
        return MonitorFaultProxy(factory, specs, self.stats, byzantine=byzantine)

    def fault_stats(self) -> dict[str, float]:
        """Flat ``fault_*`` counters for the run report."""
        return self.stats.as_dict()


def unwrap_monitor(endpoint: object) -> DecentralizedMonitor:
    """The current inner monitor of an endpoint (proxy or bare monitor)."""
    if isinstance(endpoint, MonitorFaultProxy):
        return endpoint.monitor
    return endpoint


def wrap_monitors(
    plan: FaultPlan | None,
    num_processes: int,
    factory: Callable[[int], DecentralizedMonitor],
) -> tuple[list, FaultInjector | None]:
    """Build the per-process monitor endpoints of one run under *plan*.

    The single entry point both backends' runners use: returns the endpoint
    list plus the run's :class:`FaultInjector`, or ``None`` when *plan* is
    absent or a no-op — in which case every endpoint is a bare monitor and
    the run takes the exact fault-free code path (byte-identical outputs).
    """
    if plan is None or plan.is_noop(num_processes):
        return [factory(i) for i in range(num_processes)], None
    injector = FaultInjector(plan, num_processes)
    monitors = [
        injector.wrap(i, lambda i=i: factory(i)) for i in range(num_processes)
    ]
    return monitors, injector
