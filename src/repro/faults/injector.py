"""Backend-agnostic crash/restart injection around the shared monitor.

The whole stack drives monitors exclusively through the
:class:`repro.core.transport.MonitorNode` entry points, so fault injection
needs exactly one mechanism for every backend: :class:`MonitorFaultProxy`
wraps a :class:`repro.core.monitor.DecentralizedMonitor` (or any other
``MonitorNode``) and interposes on the same four entry points.  The
discrete-event simulator registers proxies with its
:class:`~repro.sim.network.SimulatedNetwork`; the asyncio runtime hands them
to :class:`~repro.runtime.node.StreamMonitorNode` — neither backend contains
any fault logic of its own.

Crash triggers count *processed local events* (see
:mod:`repro.faults.plan` for why that makes plans deterministic across
backends).  While down, the proxy buffers local events, holds inbound
messages and, at restart, applies the spec's recovery policy before draining
both queues (held messages first — they are older — then buffered events,
preserving per-channel FIFO and local order).  A termination signal arriving
during downtime force-restarts the monitor so a crash can never swallow the
end of a run.

``rejoin`` recovery rebuilds the monitor through the factory supplied by the
runner: the fresh incarnation inherits only the durable facts (declared
verdicts, peer-termination knowledge), replays the retained local event log
and re-explores from there; tokens created by the old incarnation are
silently dropped when they return (the fresh monitor does not know them),
which is exactly the cost the fault scenarios measure.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import fields

from ..core.monitor import DecentralizedMonitor, MonitorMetrics
from .plan import RECOVERY_REJOIN, CrashSpec, FaultPlan, FaultStats

__all__ = ["MonitorFaultProxy", "FaultInjector", "unwrap_monitor", "wrap_monitors"]


class MonitorFaultProxy:
    """A :class:`MonitorNode` that crashes and restarts its inner monitor.

    The proxy is a plain synchronous wrapper: it never spawns tasks or
    schedules callbacks, so it behaves identically under the discrete-event
    simulator and the asyncio runtime.  All mutable fault state
    (down/up, buffers, the durable local log) lives here; the inner monitor
    is replaced wholesale on ``rejoin`` recoveries.
    """

    def __init__(
        self,
        factory: Callable[[], DecentralizedMonitor],
        specs: tuple[CrashSpec, ...],
        stats: FaultStats,
    ) -> None:
        self._factory = factory
        self._specs = list(specs)
        self.stats = stats
        self.monitor = factory()
        self._down = False
        self._active_spec: CrashSpec | None = None
        self._events_processed = 0
        self._log: list[object] = []
        self._buffered_events: list[object] = []
        self._held_messages: list[object] = []
        self._retired_metrics: list[MonitorMetrics] = []

    # -- MonitorNode protocol -------------------------------------------
    @property
    def process(self) -> int:
        """Index of the program process the wrapped monitor serves."""
        return self.monitor.process

    @property
    def is_down(self) -> bool:
        """Whether the monitor is currently crashed."""
        return self._down

    def start(self) -> None:
        """Process the initial global state (delegated)."""
        self.monitor.start()

    def local_event(self, event: object) -> None:
        """Feed one local program event, buffering it during downtime."""
        if self._down:
            self._buffered_events.append(event)
            self.stats.buffered_events += 1
            assert self._active_spec is not None
            if len(self._buffered_events) > self._active_spec.down_events:
                self._restart()
        else:
            self._process_event(event)

    def local_termination(self) -> None:
        """Handle the termination signal, force-restarting a down monitor."""
        if self._down:
            self._restart(forced=True)
        self.monitor.local_termination()

    def receive_message(self, message: object) -> None:
        """Deliver a monitoring message, holding it during downtime."""
        if self._down:
            self._held_messages.append(message)
            self.stats.held_messages += 1
        else:
            self.monitor.receive_message(message)

    # -- verdicts and metrics -------------------------------------------
    @property
    def declared_verdicts(self) -> set:
        """Conclusive verdicts declared so far (durable across crashes)."""
        return self.monitor.declared_verdicts

    def reported_verdicts(self) -> set:
        """Verdicts reported at the end of the run (delegated)."""
        return self.monitor.reported_verdicts()

    @property
    def metrics(self) -> MonitorMetrics:
        """Counters merged across every incarnation of the monitor.

        Additive counters are summed; ``max_active_views`` takes the
        maximum, matching its meaning.
        """
        merged = MonitorMetrics()
        for metrics in [*self._retired_metrics, self.monitor.metrics]:
            for spec in fields(MonitorMetrics):
                if spec.name == "max_active_views":
                    value = max(getattr(merged, spec.name), getattr(metrics, spec.name))
                else:
                    value = getattr(merged, spec.name) + getattr(metrics, spec.name)
                setattr(merged, spec.name, value)
        return merged

    # -- crash / restart machinery --------------------------------------
    def _process_event(self, event: object) -> None:
        """Run one live local event through the monitor, then check triggers."""
        self._log.append(event)
        self.monitor.local_event(event)
        self._events_processed += 1
        if self._specs and self._specs[0].after_events == self._events_processed:
            self._crash(self._specs.pop(0))

    def _crash(self, spec: CrashSpec) -> None:
        # a zero-length outage (down_events == 0) restarts on the very next
        # local item; the recovery policy (state loss under rejoin) applies
        self._down = True
        self._active_spec = spec
        self.stats.crashes += 1

    def _restart(self, forced: bool = False) -> None:
        """Bring the monitor back up: recover state, then drain the queues."""
        spec = self._active_spec
        assert spec is not None
        self._down = False
        self._active_spec = None
        self.stats.restarts += 1
        if forced:
            self.stats.forced_restarts += 1
        if spec.recovery == RECOVERY_REJOIN:
            self._rejoin_from_scratch()
        held, self._held_messages = self._held_messages, []
        for message in held:
            self.monitor.receive_message(message)
        buffered, self._buffered_events = self._buffered_events, []
        for event in buffered:
            self._process_event(event)

    def _rejoin_from_scratch(self) -> None:
        """Replace the monitor with a fresh incarnation and replay the log.

        Durable facts carried over: declared verdicts (already announced,
        cannot be retracted) and peer-termination knowledge (stable).  The
        volatile exploration state — views, outstanding and parked tokens —
        is rebuilt by replaying the local event log; re-exploration traffic
        is the measurable cost of this policy.
        """
        old = self.monitor
        self._retired_metrics.append(old.metrics)
        fresh = self._factory()
        fresh.declared_verdicts |= old.declared_verdicts
        fresh.declared_states |= old.declared_states
        for peer, final_sn in old.terminated.items():
            if final_sn is not None and peer != old.process:
                fresh.terminated[peer] = final_sn
        self.monitor = fresh
        fresh.start()
        for event in self._log:
            fresh.local_event(event)
        self.stats.replayed_events += len(self._log)


class FaultInjector:
    """Per-run coordinator building fault proxies from a plan.

    One injector exists per monitored run; it owns the shared
    :class:`FaultStats` the run report exposes and decides which monitors
    need wrapping at all (monitors without crash cycles stay unwrapped, so
    a no-op plan leaves the run byte-identical).
    """

    def __init__(self, plan: FaultPlan, num_processes: int) -> None:
        self.plan = plan
        self.num_processes = num_processes
        self.stats = FaultStats()

    def wrap(
        self, process: int, factory: Callable[[], DecentralizedMonitor]
    ):
        """The endpoint for *process*: a fault proxy or the bare monitor."""
        specs = self.plan.specs_for(process)
        if not specs:
            return factory()
        return MonitorFaultProxy(factory, specs, self.stats)

    def fault_stats(self) -> dict[str, float]:
        """Flat ``fault_*`` counters for the run report."""
        return self.stats.as_dict()


def unwrap_monitor(endpoint: object) -> DecentralizedMonitor:
    """The current inner monitor of an endpoint (proxy or bare monitor)."""
    if isinstance(endpoint, MonitorFaultProxy):
        return endpoint.monitor
    return endpoint


def wrap_monitors(
    plan: FaultPlan | None,
    num_processes: int,
    factory: Callable[[int], DecentralizedMonitor],
) -> tuple[list, FaultInjector | None]:
    """Build the per-process monitor endpoints of one run under *plan*.

    The single entry point both backends' runners use: returns the endpoint
    list plus the run's :class:`FaultInjector`, or ``None`` when *plan* is
    absent or a no-op — in which case every endpoint is a bare monitor and
    the run takes the exact fault-free code path (byte-identical outputs).
    """
    if plan is None or plan.is_noop(num_processes):
        return [factory(i) for i in range(num_processes)], None
    injector = FaultInjector(plan, num_processes)
    monitors = [
        injector.wrap(i, lambda i=i: factory(i)) for i in range(num_processes)
    ]
    return monitors, injector
