"""Fault injection: crash/restart of monitor processes, on every backend.

The paper evaluates the decentralized monitoring protocol only under
well-behaved nodes; this package asks what happens when monitors actually
fail.  It provides:

* :class:`FaultPlan` / :class:`CrashSpec` — declarative crash/restart
  schedules in local-event space (deterministic across backends; see
  :mod:`repro.faults.plan` for the design rationale).
* :class:`MonitorFaultProxy` / :class:`FaultInjector` — the single
  backend-agnostic injection mechanism, wrapping the shared
  :class:`repro.core.monitor.DecentralizedMonitor` behind the
  :class:`repro.core.transport.MonitorNode` protocol.
* :class:`FaultModel` implementations (:class:`ExplicitFaults`,
  :class:`SingleCrashFaults`, :class:`RollingCrashFaults`) — per-seed
  schedule generators scenarios carry in their ``faults`` field.
* :func:`parse_fault_plan` / :func:`format_fault_plan` — the compact
  ``run --fault-plan`` grammar.

Network-level fault conditions (asymmetric per-link latency matrices,
multi-partition schedules) live with the other delay models in
:mod:`repro.core.delays` and their scenario bindings in
:mod:`repro.scenarios.network`.
"""

from .injector import FaultInjector, MonitorFaultProxy, unwrap_monitor, wrap_monitors
from .models import (
    ExplicitFaults,
    FaultModel,
    RollingCrashFaults,
    SingleCrashFaults,
)
from .plan import (
    RECOVERY_POLICIES,
    RECOVERY_REJOIN,
    RECOVERY_REPLAY,
    CrashSpec,
    FaultPlan,
    FaultStats,
    format_fault_plan,
    parse_fault_plan,
)

__all__ = [
    "RECOVERY_POLICIES",
    "RECOVERY_REPLAY",
    "RECOVERY_REJOIN",
    "CrashSpec",
    "FaultPlan",
    "FaultStats",
    "parse_fault_plan",
    "format_fault_plan",
    "MonitorFaultProxy",
    "FaultInjector",
    "unwrap_monitor",
    "wrap_monitors",
    "FaultModel",
    "ExplicitFaults",
    "SingleCrashFaults",
    "RollingCrashFaults",
]
