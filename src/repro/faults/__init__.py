"""Fault injection: crash/restart, Byzantine monitors, clock skew.

The paper evaluates the decentralized monitoring protocol only under
well-behaved nodes; this package asks what happens when monitors actually
fail — or lie.  It provides:

* :class:`FaultPlan` / :class:`CrashSpec` — declarative crash/restart
  schedules in local-event space (deterministic across backends; see
  :mod:`repro.faults.plan` for the design rationale).
* :class:`ByzantineSpec` — adversarial monitor behaviours (message
  duplication, progression-state corruption, stale-token replay,
  drop-on-send) attacking the paper's soundness claims at their boundary.
* :class:`ClockSkewSpec` / :func:`apply_clock_skew` — deterministic
  perturbation of the monitored computation's vector clocks, within
  (``sound``) or beyond (``unsound``, explicitly flagged) happened-before
  consistency.
* :class:`MonitorFaultProxy` / :class:`FaultInjector` — the single
  backend-agnostic injection mechanism, wrapping the shared
  :class:`repro.core.monitor.DecentralizedMonitor` behind the
  :class:`repro.core.transport.MonitorNode` protocol.
* :class:`FaultModel` implementations (:class:`ExplicitFaults`,
  :class:`SingleCrashFaults`, :class:`RollingCrashFaults`,
  :class:`ChurnFaults`, :class:`ByzantineFaults`,
  :class:`ClockSkewFaults`) — per-seed schedule generators scenarios
  carry in their ``faults`` field.
* :func:`parse_fault_plan` / :func:`format_fault_plan` — the compact
  ``run --fault-plan`` grammar.

Network-level fault conditions (asymmetric per-link latency matrices,
multi-partition schedules) live with the other delay models in
:mod:`repro.core.delays` and their scenario bindings in
:mod:`repro.scenarios.network`.
"""

from .injector import FaultInjector, MonitorFaultProxy, unwrap_monitor, wrap_monitors
from .models import (
    ByzantineFaults,
    ChurnFaults,
    ClockSkewFaults,
    ExplicitFaults,
    FaultModel,
    RollingCrashFaults,
    SingleCrashFaults,
)
from .plan import (
    RECOVERY_POLICIES,
    RECOVERY_REJOIN,
    RECOVERY_REPLAY,
    SKEW_MODES,
    SKEW_SOUND,
    SKEW_UNSOUND,
    ByzantineSpec,
    ClockSkewSpec,
    CrashSpec,
    FaultPlan,
    FaultStats,
    format_fault_plan,
    parse_fault_plan,
)
from .skew import apply_clock_skew

__all__ = [
    "RECOVERY_POLICIES",
    "RECOVERY_REPLAY",
    "RECOVERY_REJOIN",
    "SKEW_MODES",
    "SKEW_SOUND",
    "SKEW_UNSOUND",
    "CrashSpec",
    "ByzantineSpec",
    "ClockSkewSpec",
    "FaultPlan",
    "FaultStats",
    "parse_fault_plan",
    "format_fault_plan",
    "apply_clock_skew",
    "MonitorFaultProxy",
    "FaultInjector",
    "unwrap_monitor",
    "wrap_monitors",
    "FaultModel",
    "ExplicitFaults",
    "SingleCrashFaults",
    "RollingCrashFaults",
    "ChurnFaults",
    "ByzantineFaults",
    "ClockSkewFaults",
]
