"""Declarative fault models: per-seed crash schedules for scenarios.

A :class:`FaultModel` is the fault-injection counterpart of
:class:`repro.scenarios.NetworkModel`: a small frozen dataclass a
:class:`~repro.scenarios.Scenario` carries in its ``faults`` field, turned
into a concrete :class:`~repro.faults.plan.FaultPlan` per sweep cell by
:meth:`~FaultModel.build`.  Models derive everything random (which monitor
crashes, when) from the cell's seed, so schedules are deterministic per
seed, shard cleanly into worker processes and are identical on both
monitoring backends.

Six models are provided:

* :class:`ExplicitFaults` — wraps a literal plan unchanged (also what the
  CLI's ``run --fault-plan`` override uses).
* :class:`SingleCrashFaults` — one seed-chosen monitor crashes once at a
  seed-chosen point of its trace.
* :class:`RollingCrashFaults` — every monitor crashes once, at staggered
  seed-chosen points (a rolling outage across the whole system).
* :class:`ChurnFaults` — mid-run node churn: seed-chosen monitors leave
  (long rejoin-from-scratch outages) and rejoin as fresh incarnations.
* :class:`ByzantineFaults` — a seed-chosen subset of monitors turns
  adversarial (duplicating / corrupting / replaying / dropping messages).
* :class:`ClockSkewFaults` — perturbs the computation's vector clocks
  (soundly or, explicitly flagged, unsoundly).
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Protocol, runtime_checkable

from .plan import (
    RECOVERY_REJOIN,
    RECOVERY_REPLAY,
    SKEW_SOUND,
    ByzantineSpec,
    ClockSkewSpec,
    CrashSpec,
    FaultPlan,
)

__all__ = [
    "FaultModel",
    "ExplicitFaults",
    "SingleCrashFaults",
    "RollingCrashFaults",
    "ChurnFaults",
    "ByzantineFaults",
    "ClockSkewFaults",
]

#: mixed into cell seeds so fault schedules draw from their own RNG stream,
#: independent of the workload/network randomness of the same cell
_FAULT_SEED_SALT = 0x5EEDFA17


def _fault_rng(seed: int | None) -> random.Random:
    """The dedicated fault-schedule RNG for one cell seed."""
    return random.Random((seed or 0) ^ _FAULT_SEED_SALT)


@runtime_checkable
class FaultModel(Protocol):
    """Declarative description of monitor faults, buildable per sweep cell."""

    def build(
        self, num_processes: int, events_per_process: int, seed: int | None
    ) -> FaultPlan:
        """The concrete crash schedule for one run at this system size."""

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""


def _describe(kind: str, model: object) -> dict[str, object]:
    """Render *model* as a ``{"kind": ..., **fields}`` metadata dictionary."""
    description: dict[str, object] = {"kind": kind}
    description.update(asdict(model))
    return description


@dataclass(frozen=True)
class ExplicitFaults:
    """A literal, seed-independent fault plan."""

    plan: FaultPlan = FaultPlan()

    def build(
        self, num_processes: int, events_per_process: int, seed: int | None
    ) -> FaultPlan:
        """Return the wrapped plan unchanged."""
        return self.plan

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return {"kind": "explicit", **self.plan.describe()}


@dataclass(frozen=True)
class SingleCrashFaults:
    """One seed-chosen monitor crashes once mid-trace."""

    down_events: int = 1
    recovery: str = RECOVERY_REPLAY

    def build(
        self, num_processes: int, events_per_process: int, seed: int | None
    ) -> FaultPlan:
        """Pick the crashing monitor and its trigger point from the seed."""
        rng = _fault_rng(seed)
        process = rng.randrange(num_processes)
        after_events = rng.randint(1, max(1, events_per_process - 1))
        return FaultPlan(
            (
                CrashSpec(
                    process=process,
                    after_events=after_events,
                    down_events=self.down_events,
                    recovery=self.recovery,
                ),
            )
        )

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return _describe("single-crash", self)


@dataclass(frozen=True)
class RollingCrashFaults:
    """Every monitor crashes once, at staggered seed-chosen points."""

    down_events: int = 1
    recovery: str = RECOVERY_REPLAY

    def build(
        self, num_processes: int, events_per_process: int, seed: int | None
    ) -> FaultPlan:
        """One seed-derived crash cycle per monitor."""
        rng = _fault_rng(seed)
        specs = tuple(
            CrashSpec(
                process=process,
                after_events=rng.randint(1, max(1, events_per_process - 1)),
                down_events=self.down_events,
                recovery=self.recovery,
            )
            for process in range(num_processes)
        )
        return FaultPlan(specs)

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return _describe("rolling-crash", self)


@dataclass(frozen=True)
class ChurnFaults:
    """Mid-run node churn: monitors leave and rejoin as fresh incarnations.

    A seed-chosen subset of monitors (``leave_fraction`` of the system,
    at least one) *leaves* early in its trace — a long outage of at least
    ``min_down_events`` buffered events — and later *rejoins from scratch*,
    inheriting only durable facts and replaying its local log.  An outage
    reaching past the end of the trace models a node that rejoins only at
    shutdown (the termination signal force-restarts it, so the run still
    concludes).  Triggers live in local-event space, so churn is
    deterministic across all backends.
    """

    leave_fraction: float = 0.5
    min_down_events: int = 2

    def build(
        self, num_processes: int, events_per_process: int, seed: int | None
    ) -> FaultPlan:
        """Pick the leaving monitors and their outage windows from the seed."""
        rng = _fault_rng(seed)
        leavers = max(1, round(num_processes * self.leave_fraction))
        leavers = min(leavers, num_processes)
        chosen = sorted(rng.sample(range(num_processes), leavers))
        specs = []
        for process in chosen:
            after_events = rng.randint(1, max(1, events_per_process // 2))
            down_events = rng.randint(
                self.min_down_events, max(self.min_down_events, events_per_process)
            )
            specs.append(
                CrashSpec(
                    process=process,
                    after_events=after_events,
                    down_events=down_events,
                    recovery=RECOVERY_REJOIN,
                )
            )
        return FaultPlan(tuple(specs))

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return _describe("churn", self)


@dataclass(frozen=True)
class ByzantineFaults:
    """A seed-chosen subset of monitors turns adversarial.

    Every chosen monitor gets the same behaviour cadence (the ``*_every``
    fields, 0 disabling a behaviour); which monitors are adversarial is
    drawn from the cell seed.  Message-space triggers are deterministic
    per backend but not across backends (arrival orders differ), so
    Byzantine scenarios are exercised on the simulator and compared
    against the centralized oracle rather than across backends.
    """

    duplicate_every: int = 0
    corrupt_every: int = 0
    replay_every: int = 0
    drop_every: int = 0
    num_adversaries: int = 1

    def build(
        self, num_processes: int, events_per_process: int, seed: int | None
    ) -> FaultPlan:
        """Pick the adversarial monitors from the seed."""
        rng = _fault_rng(seed)
        count = max(1, min(self.num_adversaries, num_processes))
        chosen = sorted(rng.sample(range(num_processes), count))
        specs = tuple(
            ByzantineSpec(
                process=process,
                duplicate_every=self.duplicate_every,
                corrupt_every=self.corrupt_every,
                replay_every=self.replay_every,
                drop_every=self.drop_every,
            )
            for process in chosen
        )
        return FaultPlan(byzantine=specs)

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return _describe("byzantine", self)


@dataclass(frozen=True)
class ClockSkewFaults:
    """Perturbs the monitored computation's vector-clock assignment.

    The skew seed is derived from the cell seed through the dedicated
    fault salt, so the perturbation is deterministic per cell and — since
    it transforms the computation *before* any monitor runs — identical
    on every backend (see :mod:`repro.faults.skew`).
    """

    mode: str = SKEW_SOUND
    rate: float = 0.25
    magnitude: int = 1

    def build(
        self, num_processes: int, events_per_process: int, seed: int | None
    ) -> FaultPlan:
        """Derive the concrete skew spec for one cell."""
        return FaultPlan(
            clock_skew=ClockSkewSpec(
                mode=self.mode,
                rate=self.rate,
                magnitude=self.magnitude,
                seed=(seed or 0) ^ _FAULT_SEED_SALT,
            )
        )

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return _describe("clock-skew", self)
