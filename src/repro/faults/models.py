"""Declarative fault models: per-seed crash schedules for scenarios.

A :class:`FaultModel` is the fault-injection counterpart of
:class:`repro.scenarios.NetworkModel`: a small frozen dataclass a
:class:`~repro.scenarios.Scenario` carries in its ``faults`` field, turned
into a concrete :class:`~repro.faults.plan.FaultPlan` per sweep cell by
:meth:`~FaultModel.build`.  Models derive everything random (which monitor
crashes, when) from the cell's seed, so schedules are deterministic per
seed, shard cleanly into worker processes and are identical on both
monitoring backends.

Three models are provided:

* :class:`ExplicitFaults` — wraps a literal plan unchanged (also what the
  CLI's ``run --fault-plan`` override uses).
* :class:`SingleCrashFaults` — one seed-chosen monitor crashes once at a
  seed-chosen point of its trace.
* :class:`RollingCrashFaults` — every monitor crashes once, at staggered
  seed-chosen points (a rolling outage across the whole system).
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Protocol, runtime_checkable

from .plan import RECOVERY_REPLAY, CrashSpec, FaultPlan

__all__ = [
    "FaultModel",
    "ExplicitFaults",
    "SingleCrashFaults",
    "RollingCrashFaults",
]

#: mixed into cell seeds so fault schedules draw from their own RNG stream,
#: independent of the workload/network randomness of the same cell
_FAULT_SEED_SALT = 0x5EEDFA17


def _fault_rng(seed: int | None) -> random.Random:
    """The dedicated fault-schedule RNG for one cell seed."""
    return random.Random((seed or 0) ^ _FAULT_SEED_SALT)


@runtime_checkable
class FaultModel(Protocol):
    """Declarative description of monitor faults, buildable per sweep cell."""

    def build(
        self, num_processes: int, events_per_process: int, seed: int | None
    ) -> FaultPlan:
        """The concrete crash schedule for one run at this system size."""

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""


def _describe(kind: str, model: object) -> dict[str, object]:
    """Render *model* as a ``{"kind": ..., **fields}`` metadata dictionary."""
    description: dict[str, object] = {"kind": kind}
    description.update(asdict(model))
    return description


@dataclass(frozen=True)
class ExplicitFaults:
    """A literal, seed-independent fault plan."""

    plan: FaultPlan = FaultPlan()

    def build(
        self, num_processes: int, events_per_process: int, seed: int | None
    ) -> FaultPlan:
        """Return the wrapped plan unchanged."""
        return self.plan

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return {"kind": "explicit", **self.plan.describe()}


@dataclass(frozen=True)
class SingleCrashFaults:
    """One seed-chosen monitor crashes once mid-trace."""

    down_events: int = 1
    recovery: str = RECOVERY_REPLAY

    def build(
        self, num_processes: int, events_per_process: int, seed: int | None
    ) -> FaultPlan:
        """Pick the crashing monitor and its trigger point from the seed."""
        rng = _fault_rng(seed)
        process = rng.randrange(num_processes)
        after_events = rng.randint(1, max(1, events_per_process - 1))
        return FaultPlan(
            (
                CrashSpec(
                    process=process,
                    after_events=after_events,
                    down_events=self.down_events,
                    recovery=self.recovery,
                ),
            )
        )

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return _describe("single-crash", self)


@dataclass(frozen=True)
class RollingCrashFaults:
    """Every monitor crashes once, at staggered seed-chosen points."""

    down_events: int = 1
    recovery: str = RECOVERY_REPLAY

    def build(
        self, num_processes: int, events_per_process: int, seed: int | None
    ) -> FaultPlan:
        """One seed-derived crash cycle per monitor."""
        rng = _fault_rng(seed)
        specs = tuple(
            CrashSpec(
                process=process,
                after_events=rng.randint(1, max(1, events_per_process - 1)),
                down_events=self.down_events,
                recovery=self.recovery,
            )
            for process in range(num_processes)
        )
        return FaultPlan(specs)

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return _describe("rolling-crash", self)
