"""Declarative crash/restart fault plans for monitor processes.

A :class:`FaultPlan` describes *which monitors fail and how* for one
monitored run, independently of the backend that executes it.  Crash and
restart triggers are expressed in **local-event space** — "monitor ``p``
crashes right after processing its ``after_events``-th local event and stays
down for the next ``down_events`` local events" — rather than in wall-clock
or virtual time.  This is the design decision that makes fault injection
*differentially testable*: both monitoring backends (the discrete-event
simulator and the asyncio streaming runtime) feed each monitor its local
events in exactly the same order, so a plan triggers at the same logical
point on both, whereas timed triggers would fall differently into each
backend's message interleavings.

While a monitor is down, its local events are buffered (progression pauses)
and inbound monitoring messages are *held by the channel layer* and flushed
at restart — channels stay reliable, as the paper's algorithm assumes
(peers would retransmit into a crashed endpoint until it returns).  What a
crash actually destroys is the monitor's volatile state, governed by the
recovery policy:

* :data:`RECOVERY_REPLAY` ("replay-from-last-verdict") — the monitor
  recovers its full exploration state from a journal; the crash costs only
  downtime (delayed token service, queued events).
* :data:`RECOVERY_REJOIN` ("rejoin-from-scratch") — the monitor loses its
  global views and outstanding tokens and rebuilds by replaying its durable
  local event log from the initial state; already-declared verdicts and
  peer-termination knowledge are durable (a declared verdict was announced
  externally and cannot be retracted; termination of a peer is stable
  knowledge).  In-flight tokens of the old incarnation die on return.

The textual grammar accepted by ``run --fault-plan`` is
``<process>@<after_events>[+<down_events>][:<recovery>]``, comma-separated::

    1@4:replay            # monitor 1 crashes after its 4th event, replay
    0@2+3:rejoin,2@5      # monitor 0 rejoins after 3 buffered events; 2 blips
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "RECOVERY_REPLAY",
    "RECOVERY_REJOIN",
    "RECOVERY_POLICIES",
    "CrashSpec",
    "FaultPlan",
    "FaultStats",
    "parse_fault_plan",
    "format_fault_plan",
]

#: restart with the full pre-crash state (journal recovery): downtime only
RECOVERY_REPLAY = "replay"
#: restart from scratch, replaying the durable local event log
RECOVERY_REJOIN = "rejoin"
#: the recovery policies a :class:`CrashSpec` may name
RECOVERY_POLICIES = (RECOVERY_REPLAY, RECOVERY_REJOIN)


@dataclass(frozen=True)
class CrashSpec:
    """One crash/restart cycle of one monitor, in local-event space.

    The monitor crashes immediately after processing its
    ``after_events``-th local event.  The next ``down_events`` local events
    are buffered; the arrival of the following local item (event or the
    process's termination signal, whichever comes first) restarts the
    monitor, which applies its recovery policy, drains held messages and
    buffered events, and then processes the arriving item.
    """

    process: int
    after_events: int
    down_events: int = 1
    recovery: str = RECOVERY_REPLAY

    def __post_init__(self) -> None:
        if self.process < 0:
            raise ValueError(f"process must be non-negative, got {self.process}")
        if self.after_events < 1:
            raise ValueError(
                f"after_events must be >= 1 (a monitor cannot crash before "
                f"its first event), got {self.after_events}"
            )
        if self.down_events < 0:
            raise ValueError(f"down_events must be >= 0, got {self.down_events}")
        if self.recovery not in RECOVERY_POLICIES:
            raise ValueError(
                f"unknown recovery policy {self.recovery!r} "
                f"(known: {', '.join(RECOVERY_POLICIES)})"
            )

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return {
            "process": self.process,
            "after_events": self.after_events,
            "down_events": self.down_events,
            "recovery": self.recovery,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A full fault schedule: zero or more crash cycles across monitors.

    A plan is a plain frozen value — picklable into sweep workers and
    renderable into BENCH metadata.  Multiple crashes of the same monitor
    are allowed but must not overlap: each spec must trigger strictly after
    the previous cycle's restart point.
    """

    crashes: tuple[CrashSpec, ...] = ()

    def __post_init__(self) -> None:
        per_process: dict[int, list[CrashSpec]] = {}
        for spec in self.crashes:
            per_process.setdefault(spec.process, []).append(spec)
        ordered: list[CrashSpec] = []
        for process in sorted(per_process):
            specs = sorted(per_process[process], key=lambda s: s.after_events)
            for earlier, later in zip(specs, specs[1:]):
                if later.after_events <= earlier.after_events + earlier.down_events:
                    raise ValueError(
                        f"overlapping crash cycles for monitor {process}: "
                        f"{earlier} is still down at event {later.after_events}"
                    )
            ordered.extend(specs)
        object.__setattr__(self, "crashes", tuple(ordered))

    def specs_for(self, process: int) -> tuple[CrashSpec, ...]:
        """The crash cycles of *process*, ordered by trigger point."""
        return tuple(spec for spec in self.crashes if spec.process == process)

    def is_noop(self, num_processes: int) -> bool:
        """Whether the plan injects nothing into a *num_processes* system.

        Specs naming processes outside the system are clipped, so a plan
        that only targets out-of-range monitors is a no-op: the runners
        skip fault wrapping entirely and outputs are byte-identical to a
        run without any plan.
        """
        return not any(spec.process < num_processes for spec in self.crashes)

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return {"crashes": [spec.describe() for spec in self.crashes]}


@dataclass
class FaultStats:
    """Counters of what a fault plan actually did during one run."""

    crashes: int = 0
    restarts: int = 0
    #: restarts forced by the process's termination signal arriving while down
    forced_restarts: int = 0
    #: inbound monitoring messages held by the channel layer during downtime
    held_messages: int = 0
    #: local program events buffered while their monitor was down
    buffered_events: int = 0
    #: local events replayed from the durable log by rejoin recoveries
    replayed_events: int = 0
    #: extra per-run counters contributed by recovery policies
    extra: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, float]:
        """Flat ``fault_*`` metric row merged into run reports."""
        row = {
            "fault_crashes": float(self.crashes),
            "fault_restarts": float(self.restarts),
            "fault_forced_restarts": float(self.forced_restarts),
            "fault_held_messages": float(self.held_messages),
            "fault_buffered_events": float(self.buffered_events),
            "fault_replayed_events": float(self.replayed_events),
        }
        row.update(self.extra)
        return row


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse the compact ``run --fault-plan`` grammar into a plan.

    Grammar (comma-separated specs, whitespace ignored)::

        <process>@<after_events>[+<down_events>][:<recovery>]

    ``down_events`` defaults to 1 and ``recovery`` to ``replay``.
    """
    specs: list[CrashSpec] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        spec, _, recovery = chunk.partition(":")
        recovery = recovery.strip() or RECOVERY_REPLAY
        process_text, at, trigger = spec.partition("@")
        if not at:
            raise ValueError(
                f"invalid fault spec {chunk!r}: expected "
                f"'<process>@<after_events>[+<down_events>][:<recovery>]'"
            )
        trigger, _, down_text = trigger.partition("+")
        try:
            process = int(process_text)
            after_events = int(trigger)
            down_events = int(down_text) if down_text else 1
        except ValueError:
            raise ValueError(
                f"invalid fault spec {chunk!r}: process, after_events and "
                f"down_events must be integers"
            ) from None
        specs.append(
            CrashSpec(
                process=process,
                after_events=after_events,
                down_events=down_events,
                recovery=recovery,
            )
        )
    return FaultPlan(tuple(specs))


def format_fault_plan(plan: FaultPlan) -> str:
    """Render *plan* back into the ``run --fault-plan`` grammar."""
    return ",".join(
        f"{spec.process}@{spec.after_events}+{spec.down_events}:{spec.recovery}"
        for spec in plan.crashes
    )
