"""Declarative fault plans (crash/restart, Byzantine, clock skew).

A :class:`FaultPlan` describes *which monitors fail and how* for one
monitored run, independently of the backend that executes it.  Crash and
restart triggers are expressed in **local-event space** — "monitor ``p``
crashes right after processing its ``after_events``-th local event and stays
down for the next ``down_events`` local events" — rather than in wall-clock
or virtual time.  This is the design decision that makes fault injection
*differentially testable*: both monitoring backends (the discrete-event
simulator and the asyncio streaming runtime) feed each monitor its local
events in exactly the same order, so a plan triggers at the same logical
point on both, whereas timed triggers would fall differently into each
backend's message interleavings.

While a monitor is down, its local events are buffered (progression pauses)
and inbound monitoring messages are *held by the channel layer* and flushed
at restart — channels stay reliable, as the paper's algorithm assumes
(peers would retransmit into a crashed endpoint until it returns).  What a
crash actually destroys is the monitor's volatile state, governed by the
recovery policy:

* :data:`RECOVERY_REPLAY` ("replay-from-last-verdict") — the monitor
  recovers its full exploration state from a journal; the crash costs only
  downtime (delayed token service, queued events).
* :data:`RECOVERY_REJOIN` ("rejoin-from-scratch") — the monitor loses its
  global views and outstanding tokens and rebuilds by replaying its durable
  local event log from the initial state; already-declared verdicts and
  peer-termination knowledge are durable (a declared verdict was announced
  externally and cannot be retracted; termination of a peer is stable
  knowledge).  In-flight tokens of the old incarnation die on return.

Beyond fail-stop crashes, a plan can make monitors *adversarial*
(:class:`ByzantineSpec`: message duplication, progression-state corruption,
stale-token replay, drop-on-send — counted in inbound/outbound *message*
space, so they are deterministic per backend) and perturb the vector-clock
assignment of the monitored computation itself (:class:`ClockSkewSpec`,
applied before any monitor runs — see :mod:`repro.faults.skew`).

The textual grammar accepted by ``run --fault-plan`` is comma-separated
chunks of three kinds::

    1@4:replay            # crash: monitor 1 crashes after its 4th event
    0@2+3:rejoin,2@5      # monitor 0 rejoins after 3 buffered events; 2 blips
    1!dup3!drop5          # Byzantine: monitor 1 duplicates every 3rd inbound
                          # message and drops every 5th outbound one
    skew@sound~0.25~2~7   # clock skew: mode~rate~magnitude~seed
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "RECOVERY_REPLAY",
    "RECOVERY_REJOIN",
    "RECOVERY_POLICIES",
    "SKEW_SOUND",
    "SKEW_UNSOUND",
    "SKEW_MODES",
    "CrashSpec",
    "ByzantineSpec",
    "ClockSkewSpec",
    "FaultPlan",
    "FaultStats",
    "parse_fault_plan",
    "format_fault_plan",
]

#: restart with the full pre-crash state (journal recovery): downtime only
RECOVERY_REPLAY = "replay"
#: restart from scratch, replaying the durable local event log
RECOVERY_REJOIN = "rejoin"
#: the recovery policies a :class:`CrashSpec` may name
RECOVERY_POLICIES = (RECOVERY_REPLAY, RECOVERY_REJOIN)

#: clock skew that only *inflates* non-local vector-clock components — every
#: skewed-consistent cut is consistent under the true clocks, so monitors
#: explore a sub-lattice of the real computation and verdicts stay sound
SKEW_SOUND = "sound"
#: clock skew that *deflates* received knowledge, hiding happened-before
#: edges — monitors may explore impossible interleavings (deliberately
#: soundness-breaking; for attacking the algorithm, never for evaluation)
SKEW_UNSOUND = "unsound"
#: the skew modes a :class:`ClockSkewSpec` may name
SKEW_MODES = (SKEW_SOUND, SKEW_UNSOUND)


@dataclass(frozen=True)
class CrashSpec:
    """One crash/restart cycle of one monitor, in local-event space.

    The monitor crashes immediately after processing its
    ``after_events``-th local event.  The next ``down_events`` local events
    are buffered; the arrival of the following local item (event or the
    process's termination signal, whichever comes first) restarts the
    monitor, which applies its recovery policy, drains held messages and
    buffered events, and then processes the arriving item.
    """

    process: int
    after_events: int
    down_events: int = 1
    recovery: str = RECOVERY_REPLAY

    def __post_init__(self) -> None:
        if self.process < 0:
            raise ValueError(f"process must be non-negative, got {self.process}")
        if self.after_events < 1:
            raise ValueError(
                f"after_events must be >= 1 (a monitor cannot crash before "
                f"its first event), got {self.after_events}"
            )
        if self.down_events < 0:
            raise ValueError(f"down_events must be >= 0, got {self.down_events}")
        if self.recovery not in RECOVERY_POLICIES:
            raise ValueError(
                f"unknown recovery policy {self.recovery!r} "
                f"(known: {', '.join(RECOVERY_POLICIES)})"
            )

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return {
            "process": self.process,
            "after_events": self.after_events,
            "down_events": self.down_events,
            "recovery": self.recovery,
        }


@dataclass(frozen=True)
class ByzantineSpec:
    """Adversarial behaviours of one monitor, in local *message* space.

    Each ``*_every`` field arms one behaviour on every k-th trigger (0
    disables it).  Inbound behaviours count the monitor's received
    monitoring messages; ``drop_every`` counts its outbound sends.  Message
    arrival order is deterministic *per backend* but differs between
    backends, so Byzantine runs are reproducible on a fixed backend+seed
    while cross-backend comparisons are only meaningful for the crash/skew
    parts of a plan.

    * ``duplicate_every`` — deliver every k-th inbound message twice (the
      duplicate is a deep copy, as a re-sent frame would be).
    * ``corrupt_every`` — forge the progression state of every k-th inbound
      token: all undecided entries are marked conclusively evaluated
      (``eval=True``) without their guards ever having been checked, the
      most direct attack on the paper's soundness argument.
    * ``replay_every`` — on every k-th inbound message, additionally
      re-inject a stale deep copy of the *first* token this monitor ever
      saw, as an old incarnation or a confused peer would.
    * ``drop_every`` — silently drop every k-th outbound send (violating
      the reliable-channel assumption; attacks liveness, not soundness).
    """

    process: int
    duplicate_every: int = 0
    corrupt_every: int = 0
    replay_every: int = 0
    drop_every: int = 0

    def __post_init__(self) -> None:
        if self.process < 0:
            raise ValueError(f"process must be non-negative, got {self.process}")
        for name in ("duplicate_every", "corrupt_every", "replay_every", "drop_every"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0 (0 disables), got {value}")
            if value == 1:
                raise ValueError(
                    f"{name} cadence must be >= 2 (or 0 to disable), got 1: "
                    f"an every-message behaviour would trigger on the very "
                    f"first message, before any stale state exists to abuse"
                )

    @property
    def is_noop(self) -> bool:
        """Whether every behaviour is disabled (spec injects nothing)."""
        return not (
            self.duplicate_every
            or self.corrupt_every
            or self.replay_every
            or self.drop_every
        )

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return {
            "process": self.process,
            "duplicate_every": self.duplicate_every,
            "corrupt_every": self.corrupt_every,
            "replay_every": self.replay_every,
            "drop_every": self.drop_every,
        }


@dataclass(frozen=True)
class ClockSkewSpec:
    """A deterministic perturbation of the computation's vector clocks.

    Applied to the monitored :class:`~repro.distributed.computation.Computation`
    *before* any monitor runs (all backends monitor the identical skewed
    trace, so skew is differentially testable across backends, unlike the
    message-space Byzantine behaviours).  ``rate`` is the per-event
    perturbation probability, ``magnitude`` the maximum per-component
    distortion, drawn from a dedicated RNG seeded by ``seed`` (the run seed
    is *not* used: streaming runs have no seed of their own).

    ``mode`` selects which side of the happened-before boundary the skew
    lives on — :data:`SKEW_SOUND` only inflates what a process appears to
    know about others, :data:`SKEW_UNSOUND` deflates it.  Local components
    are never touched (an event's own component is its sequence number by
    construction) and per-process monotonicity is preserved.
    """

    mode: str = SKEW_SOUND
    rate: float = 0.25
    magnitude: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in SKEW_MODES:
            raise ValueError(
                f"unknown skew mode {self.mode!r} (known: {', '.join(SKEW_MODES)})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be within [0, 1], got {self.rate}")
        if self.magnitude < 1:
            raise ValueError(f"magnitude must be >= 1, got {self.magnitude}")

    @property
    def is_noop(self) -> bool:
        """Whether the spec perturbs nothing (zero perturbation rate)."""
        return self.rate == 0.0

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return {
            "mode": self.mode,
            "rate": self.rate,
            "magnitude": self.magnitude,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A full fault schedule: crash cycles, Byzantine monitors, clock skew.

    A plan is a plain frozen value — picklable into sweep workers and
    renderable into BENCH metadata.  Multiple crashes of the same monitor
    are allowed but must not overlap or leave an ambiguous schedule: each
    spec must trigger strictly after the previous cycle's restart has been
    *observed* (see ``__post_init__``).  At most one :class:`ByzantineSpec`
    per process.
    """

    crashes: tuple[CrashSpec, ...] = ()
    byzantine: tuple[ByzantineSpec, ...] = ()
    clock_skew: ClockSkewSpec | None = None

    def __post_init__(self) -> None:
        per_process: dict[int, list[CrashSpec]] = {}
        for spec in self.crashes:
            per_process.setdefault(spec.process, []).append(spec)
        ordered: list[CrashSpec] = []
        for process in sorted(per_process):
            specs = sorted(per_process[process], key=lambda s: s.after_events)
            for earlier, later in zip(specs, specs[1:]):
                if later.after_events <= earlier.after_events + earlier.down_events:
                    raise ValueError(
                        f"overlapping crash cycles for monitor {process}: "
                        f"{earlier} is still down at event {later.after_events}"
                    )
                if (
                    earlier.down_events == 0
                    and later.after_events == earlier.after_events + 1
                ):
                    # A zero-length outage restarts on the arrival of event
                    # after_events+1 — the very event whose processing would
                    # trigger the next cycle's crash.  Restart-then-crash vs
                    # crash-while-restarting is an ambiguous schedule.
                    raise ValueError(
                        f"ambiguous crash schedule for monitor {process}: "
                        f"{earlier} has down_events=0, so its restart trigger "
                        f"(arrival of event {later.after_events}) coincides "
                        f"with the crash trigger of {later}; separate the "
                        f"cycles by at least one event"
                    )
            ordered.extend(specs)
        object.__setattr__(self, "crashes", tuple(ordered))

        byz_seen: set[int] = set()
        for byz in self.byzantine:
            if byz.process in byz_seen:
                raise ValueError(
                    f"duplicate ByzantineSpec for monitor {byz.process}: "
                    f"merge the behaviours into one spec"
                )
            byz_seen.add(byz.process)
        object.__setattr__(
            self,
            "byzantine",
            tuple(sorted(self.byzantine, key=lambda s: s.process)),
        )

    def specs_for(self, process: int) -> tuple[CrashSpec, ...]:
        """The crash cycles of *process*, ordered by trigger point."""
        return tuple(spec for spec in self.crashes if spec.process == process)

    def byzantine_for(self, process: int) -> ByzantineSpec | None:
        """The Byzantine behaviours of *process*, if any are armed."""
        for spec in self.byzantine:
            if spec.process == process and not spec.is_noop:
                return spec
        return None

    def is_noop(self, num_processes: int) -> bool:
        """Whether the plan injects nothing into a *num_processes* system.

        Specs naming processes outside the system are clipped, so a plan
        that only targets out-of-range monitors is a no-op: the runners
        skip fault wrapping entirely and outputs are byte-identical to a
        run without any plan.  Behaviour-free Byzantine specs and
        zero-rate skew are likewise no-ops.
        """
        if any(spec.process < num_processes for spec in self.crashes):
            return False
        if any(
            spec.process < num_processes and not spec.is_noop
            for spec in self.byzantine
        ):
            return False
        if self.clock_skew is not None and not self.clock_skew.is_noop:
            return False
        return True

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI).

        Adversarial keys appear only when armed, so crash-only plans keep
        their historical shape byte-for-byte.
        """
        description: dict[str, object] = {
            "crashes": [spec.describe() for spec in self.crashes]
        }
        if self.byzantine:
            description["byzantine"] = [spec.describe() for spec in self.byzantine]
        if self.clock_skew is not None:
            description["clock_skew"] = self.clock_skew.describe()
        return description


@dataclass
class FaultStats:
    """Counters of what a fault plan actually did during one run."""

    crashes: int = 0
    restarts: int = 0
    #: restarts forced by the process's termination signal arriving while down
    forced_restarts: int = 0
    #: inbound monitoring messages held by the channel layer during downtime
    held_messages: int = 0
    #: local program events buffered while their monitor was down
    buffered_events: int = 0
    #: local events replayed from the durable log by rejoin recoveries
    replayed_events: int = 0
    #: extra per-run counters contributed by recovery policies and
    #: adversarial behaviours (kept out of the flat fields so crash-only
    #: runs keep their historical ``as_dict`` shape)
    extra: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, float]:
        """Flat ``fault_*`` metric row merged into run reports."""
        row = {
            "fault_crashes": float(self.crashes),
            "fault_restarts": float(self.restarts),
            "fault_forced_restarts": float(self.forced_restarts),
            "fault_held_messages": float(self.held_messages),
            "fault_buffered_events": float(self.buffered_events),
            "fault_replayed_events": float(self.replayed_events),
        }
        row.update(self.extra)
        return row


#: grammar keys of the Byzantine chunk, in emission order
_BYZANTINE_KEYS = (
    ("dup", "duplicate_every"),
    ("corrupt", "corrupt_every"),
    ("replay", "replay_every"),
    ("drop", "drop_every"),
)


def _parse_byzantine_chunk(chunk: str) -> ByzantineSpec:
    parts = chunk.split("!")
    try:
        process = int(parts[0])
    except ValueError:
        raise ValueError(
            f"invalid Byzantine spec {chunk!r}: expected "
            f"'<process>!dup<k>!corrupt<k>!replay<k>!drop<k>' (any subset)"
        ) from None
    fields: dict[str, int] = {}
    known = dict(_BYZANTINE_KEYS)
    for part in parts[1:]:
        for key, attr in known.items():
            if part.startswith(key):
                try:
                    value = int(part[len(key) :])
                except ValueError:
                    raise ValueError(
                        f"invalid Byzantine behaviour {part!r} in {chunk!r}: "
                        f"expected an integer after {key!r}"
                    ) from None
                if attr in fields:
                    raise ValueError(
                        f"repeated Byzantine behaviour {key!r} in {chunk!r}"
                    )
                fields[attr] = value
                break
        else:
            raise ValueError(
                f"unknown Byzantine behaviour {part!r} in {chunk!r} "
                f"(known: {', '.join(key for key, _ in _BYZANTINE_KEYS)})"
            )
    if not fields:
        raise ValueError(
            f"invalid Byzantine spec {chunk!r}: at least one behaviour "
            f"(dup/corrupt/replay/drop) is required"
        )
    return ByzantineSpec(process=process, **fields)


def _parse_skew_chunk(chunk: str) -> ClockSkewSpec:
    body = chunk[len("skew@") :]
    parts = body.split("~")
    if len(parts) != 4:
        raise ValueError(
            f"invalid clock-skew spec {chunk!r}: expected "
            f"'skew@<mode>~<rate>~<magnitude>~<seed>'"
        )
    mode = parts[0].strip()
    try:
        rate = float(parts[1])
        magnitude = int(parts[2])
        seed = int(parts[3])
    except ValueError:
        raise ValueError(
            f"invalid clock-skew spec {chunk!r}: rate must be a float, "
            f"magnitude and seed integers"
        ) from None
    return ClockSkewSpec(mode=mode, rate=rate, magnitude=magnitude, seed=seed)


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse the compact ``run --fault-plan`` grammar into a plan.

    Grammar (comma-separated chunks, whitespace ignored)::

        <process>@<after_events>[+<down_events>][:<recovery>]   # crash cycle
        <process>!dup<k>!corrupt<k>!replay<k>!drop<k>           # Byzantine
        skew@<mode>~<rate>~<magnitude>~<seed>                   # clock skew

    ``down_events`` defaults to 1 and ``recovery`` to ``replay``; a
    Byzantine chunk names any non-empty subset of behaviours; at most one
    ``skew@`` chunk is allowed.
    """
    specs: list[CrashSpec] = []
    byzantine: list[ByzantineSpec] = []
    clock_skew: ClockSkewSpec | None = None
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if chunk.startswith("skew@"):
            if clock_skew is not None:
                raise ValueError(
                    f"multiple clock-skew specs in {text!r}: at most one "
                    f"'skew@...' chunk is allowed"
                )
            clock_skew = _parse_skew_chunk(chunk)
            continue
        if "!" in chunk:
            byzantine.append(_parse_byzantine_chunk(chunk))
            continue
        spec, _, recovery = chunk.partition(":")
        recovery = recovery.strip() or RECOVERY_REPLAY
        process_text, at, trigger = spec.partition("@")
        if not at:
            raise ValueError(
                f"invalid fault spec {chunk!r}: expected "
                f"'<process>@<after_events>[+<down_events>][:<recovery>]'"
            )
        trigger, _, down_text = trigger.partition("+")
        try:
            process = int(process_text)
            after_events = int(trigger)
            down_events = int(down_text) if down_text else 1
        except ValueError:
            raise ValueError(
                f"invalid fault spec {chunk!r}: process, after_events and "
                f"down_events must be integers"
            ) from None
        specs.append(
            CrashSpec(
                process=process,
                after_events=after_events,
                down_events=down_events,
                recovery=recovery,
            )
        )
    return FaultPlan(tuple(specs), tuple(byzantine), clock_skew)


def format_fault_plan(plan: FaultPlan) -> str:
    """Render *plan* back into the ``run --fault-plan`` grammar."""
    chunks = [
        f"{spec.process}@{spec.after_events}+{spec.down_events}:{spec.recovery}"
        for spec in plan.crashes
    ]
    for byz in plan.byzantine:
        parts = [str(byz.process)]
        for key, attr in _BYZANTINE_KEYS:
            value = getattr(byz, attr)
            if value:
                parts.append(f"{key}{value}")
        if len(parts) > 1:
            chunks.append("!".join(parts))
    if plan.clock_skew is not None:
        skew = plan.clock_skew
        chunks.append(f"skew@{skew.mode}~{skew.rate}~{skew.magnitude}~{skew.seed}")
    return ",".join(chunks)
