"""Applying a :class:`ClockSkewSpec` to a finished computation.

Clock skew is the one fault in the plan that lives *below* the monitors: it
perturbs the vector-clock assignment of the monitored
:class:`~repro.distributed.computation.Computation` before any backend runs,
so the simulator, the asyncio runtime and the cluster workers all monitor
the identical skewed trace (each cluster worker regenerates the computation
from the :class:`~repro.cluster.spec.RunSpec` and applies the same
deterministic transform).  The clock mathematics — carry vectors, the
sound/unsound happened-before boundary — lives with the clocks themselves in
:class:`repro.distributed.clocks.ClockSkew`; this module only rebuilds the
event record around the skewed clocks.
"""

from __future__ import annotations

import dataclasses

from ..distributed.clocks import ClockSkew, VectorClock
from ..distributed.computation import Computation
from .plan import ClockSkewSpec

__all__ = ["apply_clock_skew"]


def apply_clock_skew(
    computation: Computation, spec: ClockSkewSpec | None
) -> tuple[Computation, dict[str, float]]:
    """A copy of *computation* with skewed clocks, plus ``fault_skew_*`` stats.

    Returns the input computation untouched (and no counters) when *spec*
    is ``None`` or a no-op, preserving object identity on the fault-free
    path.  The transform is deterministic in ``spec.seed`` alone.
    """
    if spec is None or spec.is_noop:
        return computation, {}
    n = computation.num_processes
    skew = ClockSkew(
        n,
        computation.final_cut(),
        mode=spec.mode,
        rate=spec.rate,
        magnitude=spec.magnitude,
        seed=spec.seed,
    )
    skewed_events = []
    for process in range(n):
        column = []
        for event in computation.events_of(process):
            components = skew.perturb(process, event.sn, tuple(event.vc))
            if components == event.vc.components:
                column.append(event)
            else:
                column.append(
                    dataclasses.replace(event, vc=VectorClock(components))
                )
        skewed_events.append(column)
    skewed = Computation(
        initial_states=[dict(state) for state in computation.initial_states],
        events=skewed_events,
    )
    return skewed, skew.stats()
