"""The property-fuzzing engine: random points, oracles, classification.

One fuzz *point* is a complete, replayable monitoring configuration — a
(formula × workload × network × fault-plan) sample serialized as the same
:class:`repro.cluster.spec.RunSpec` JSON the cluster distributes to workers,
so every point (and every shrunk repro) regenerates bit-for-bit from its
document alone.  Point generation is a pure function of ``(seed, index)``:
the same seed always produces the same points, outcomes and shrunk repros.

Each point runs through two oracles:

* **sim-vs-centralized (soundness)** — the simulator's decentralized
  monitors against the centralized reference monitor on the *true* (never
  skewed) computation, compared through
  :func:`repro.core.monitor.verdict_divergence`; a verdict the
  decentralized run declares that the oracle denies is a soundness
  violation.  Points arming a behaviour *designed* to break soundness
  (token corruption, unsound clock skew) are flagged ``attack`` — their
  divergence is the expected, recorded outcome; divergence anywhere else
  is a genuine finding.
* **sim-vs-asyncio (backend equivalence)** — declared verdicts must be
  identical across backends for every Byzantine-free point (Byzantine
  triggers count messages, whose arrival order is backend-specific, so
  cross-backend equality is only meaningful without them).

Outcomes classify as ``sound`` / ``divergent`` / ``crash`` / ``storm``
(the simulated run blew through its event budget — message-amplification
storms under duplication/replay plans are the expected cause); every
non-sound point is shrunk (:mod:`repro.fuzz.shrink`) to a minimal repro.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from ..cluster.spec import RunSpec
from ..core.centralized import CentralizedMonitor
from ..core.monitor import verdict_divergence
from ..experiments.properties import PROPERTY_NAMES
from ..faults import (
    SKEW_UNSOUND,
    ByzantineSpec,
    ClockSkewSpec,
    CrashSpec,
    FaultPlan,
    format_fault_plan,
)

__all__ = [
    "CLASS_SOUND",
    "CLASS_DIVERGENT",
    "CLASS_CRASH",
    "CLASS_STORM",
    "FuzzOutcome",
    "FuzzReport",
    "generate_point",
    "generate_points",
    "execute_point",
    "is_attack_plan",
    "run_fuzz",
]

CLASS_SOUND = "sound"
CLASS_DIVERGENT = "divergent"
CLASS_CRASH = "crash"
CLASS_STORM = "storm"

#: simulator-event budget per fuzz point.  Rejoin recovery combined with
#: message duplication can amplify token traffic without bound (each
#: re-exploration's sends are duplicated, each duplicate triggers more
#: service work) — a liveness storm, not a soundness break.  The heaviest
#: honest fuzz-scale points execute ~50k simulator events, so this budget
#: is ~3x headroom for them while cutting storms off deterministically in
#: a bounded minute or two instead of gigabytes of runaway state.
_SIM_EVENT_BUDGET = 150_000

#: mixed into the master seed so point streams are independent of every
#: other RNG family in the repo (workload, network, fault schedules)
_FUZZ_SEED_SALT = 0xF0_77_EE_D5


def _point_rng(seed: int, index: int) -> random.Random:
    """The dedicated RNG of point *index* under master seed *seed*."""
    return random.Random(((seed ^ _FUZZ_SEED_SALT) << 16) ^ index)


def _scenario_pool() -> tuple[str, ...]:
    """Names of the registered scenarios without a fault model of their own.

    The fuzzer owns the fault plan of every point, so it samples workload ×
    network conditions from the fault-free catalogue and composes its own
    adversarial schedule on top.
    """
    from ..scenarios import list_scenarios

    return tuple(s.name for s in list_scenarios() if s.faults is None)


def _random_fault_plan(rng: random.Random, num_processes: int) -> FaultPlan | None:
    """Sample a fault plan: crashes, Byzantine behaviours, clock skew."""
    crashes: list[CrashSpec] = []
    byzantine: list[ByzantineSpec] = []
    clock_skew: ClockSkewSpec | None = None

    for process in range(num_processes):
        if rng.random() < 0.25:
            crashes.append(
                CrashSpec(
                    process=process,
                    after_events=rng.randint(1, 4),
                    down_events=rng.randint(0, 3),
                    recovery=rng.choice(("replay", "rejoin")),
                )
            )
    for process in range(num_processes):
        if rng.random() < 0.3:
            spec = ByzantineSpec(
                process=process,
                duplicate_every=rng.choice((0, 0, 2, 3)),
                corrupt_every=rng.choice((0, 0, 2, 3, 4)),
                replay_every=rng.choice((0, 0, 3, 4)),
                drop_every=rng.choice((0, 0, 0, 4, 5)),
            )
            if not spec.is_noop:
                byzantine.append(spec)
    roll = rng.random()
    if roll < 0.2:
        clock_skew = ClockSkewSpec(
            mode="sound",
            rate=rng.choice((0.25, 0.5)),
            magnitude=rng.randint(1, 2),
            seed=rng.randrange(1 << 16),
        )
    elif roll < 0.3:
        clock_skew = ClockSkewSpec(
            mode=SKEW_UNSOUND,
            rate=rng.choice((0.25, 0.5)),
            magnitude=rng.randint(1, 2),
            seed=rng.randrange(1 << 16),
        )
    if not crashes and not byzantine and clock_skew is None:
        return None
    return FaultPlan(tuple(crashes), tuple(byzantine), clock_skew)


def generate_point(seed: int, index: int) -> RunSpec:
    """The deterministic fuzz point *index* of master seed *seed*."""
    rng = _point_rng(seed, index)
    pool = _scenario_pool()
    # points stay small: the cost of a point grows steeply with the lattice
    # (n=4 runs under partition networks can take minutes — an unbounded
    # tail for the CI smoke job), and small points cover the adversarial
    # behaviour space just as well; larger scales are pinned by the
    # fixed-seed cross-backend equivalence suite instead
    num_processes = rng.choice((2, 2, 3))
    events_cap = {2: 6, 3: 5}[num_processes]
    plan = _random_fault_plan(rng, num_processes)
    return RunSpec(
        scenario=rng.choice(pool),
        property_name=rng.choice(PROPERTY_NAMES),
        num_processes=num_processes,
        events_per_process=rng.randint(3, events_cap),
        evt_mu=rng.choice((2.0, 3.0, 5.0)),
        evt_sigma=1.0,
        comm_mu=rng.choice((None, 2.0, 3.0)),
        comm_sigma=1.0,
        seed=rng.randrange(1 << 30),
        max_views_per_state=rng.choice((2, 3)),
        fault_plan=None if plan is None else format_fault_plan(plan),
        compiled_kernel=rng.random() < 0.8,
    )


def generate_points(seed: int, count: int) -> list[RunSpec]:
    """The first *count* fuzz points of master seed *seed*."""
    return [generate_point(seed, index) for index in range(count)]


def is_attack_plan(plan: FaultPlan | None) -> bool:
    """Whether the plan arms a behaviour *designed* to break soundness.

    Token corruption forges progression state and unsound clock skew hides
    happened-before edges — divergence under either is the expected,
    recorded outcome.  Everything else (crashes, churn, duplication, stale
    replay, drop-on-send, sound skew) must keep verdicts sound; divergence
    there is a genuine finding.
    """
    if plan is None:
        return False
    if any(spec.corrupt_every for spec in plan.byzantine):
        return True
    return plan.clock_skew is not None and plan.clock_skew.mode == SKEW_UNSOUND


def can_storm(plan: FaultPlan | None) -> bool:
    """Whether the plan arms a message-amplifying behaviour.

    Duplication and stale replay inject extra messages, each of which can
    trigger further monitor work (and further injected messages) — the
    only behaviours that can exhaust the simulator's event budget on an
    otherwise healthy protocol.  A ``storm`` outcome under such a plan is
    an expected liveness cost; a storm under any other plan would mean the
    protocol itself fails to quiesce, which is a genuine finding.
    """
    if plan is None:
        return False
    return any(
        spec.duplicate_every or spec.replay_every for spec in plan.byzantine
    )


@dataclass
class FuzzOutcome:
    """What one fuzz point did under both oracles."""

    index: int
    spec: RunSpec
    classification: str
    #: whether the point arms a deliberately soundness-breaking behaviour
    #: (divergence is then expected rather than a finding)
    attack: bool = False
    #: verdicts the decentralized run declared but the oracle denies
    soundness_violations: tuple[str, ...] = ()
    #: whether sim and asyncio declared different verdict sets
    backend_divergence: bool = False
    #: ``repr`` of the exception for ``crash`` outcomes
    error: str | None = None
    #: monitoring-overhead metrics of the simulated run
    overhead: dict[str, float] = field(default_factory=dict)
    #: wall-clock seconds the point took end to end (oracles included)
    seconds: float = 0.0

    @property
    def is_finding(self) -> bool:
        """Whether this outcome is a genuine (unexpected) failure."""
        if self.classification == CLASS_SOUND:
            return False
        if self.classification == CLASS_STORM:
            # budget exhaustion is the expected cost of message-amplifying
            # behaviours; anywhere else it means the protocol won't quiesce
            return not can_storm(self.spec.faults())
        return not self.attack

    def as_dict(self) -> dict[str, object]:
        """JSON-ready summary row (the spec travels as its own document)."""
        return {
            "index": self.index,
            "classification": self.classification,
            "attack": self.attack,
            "soundness_violations": list(self.soundness_violations),
            "backend_divergence": self.backend_divergence,
            "error": self.error,
            "overhead": dict(self.overhead),
            "is_finding": self.is_finding,
            "spec": self.spec.to_json(),
        }


def execute_point(spec: RunSpec, index: int = 0) -> FuzzOutcome:
    """Run one fuzz point through both oracles and classify the outcome.

    Everything is regenerated from *spec* alone, so executing the same
    spec (including one loaded back from its JSON document) reproduces
    the identical classification.
    """
    from ..cluster.spec import build_cell_inputs
    from ..runtime.runner import run_streaming
    from ..scenarios import get_scenario
    from ..sim.engine import SimulationBudgetExceeded
    from ..sim.runner import simulate_monitored_run

    started = time.perf_counter()
    plan = spec.faults()
    attack = is_attack_plan(plan)
    try:
        computation, automaton, registry = build_cell_inputs(spec)
        scenario = get_scenario(spec.scenario)
        simulated = simulate_monitored_run(
            computation,
            automaton,
            registry,
            seed=spec.seed,
            max_views_per_state=spec.max_views_per_state,
            network=scenario.network,
            faults=plan,
            compiled_kernel=spec.compiled_kernel,
            max_sim_events=_SIM_EVENT_BUDGET,
        )
        # the soundness reference always sees the *true* computation: under
        # unsound skew the monitors work on distorted clocks, and the whole
        # question is whether they still only declare real verdicts
        oracle = CentralizedMonitor.monitor_computation_declared(
            computation,
            automaton,
            registry,
            use_compiled_kernel=spec.compiled_kernel,
        )
        violations = verdict_divergence(simulated.declared_verdicts, oracle)
        backend_divergence = False
        if plan is None or not plan.byzantine:
            streamed = run_streaming(
                computation,
                automaton,
                registry,
                delay=scenario.network.delay_model(spec.seed),
                max_views_per_state=spec.max_views_per_state,
                faults=plan,
                compiled_kernel=spec.compiled_kernel,
            )
            backend_divergence = (
                streamed.declared_verdicts != simulated.declared_verdicts
            )
    except SimulationBudgetExceeded as error:
        return FuzzOutcome(
            index=index,
            spec=spec,
            classification=CLASS_STORM,
            attack=attack,
            error=repr(error),
            seconds=time.perf_counter() - started,
        )
    except Exception as error:  # noqa: BLE001 - crashes are an outcome class
        return FuzzOutcome(
            index=index,
            spec=spec,
            classification=CLASS_CRASH,
            attack=attack,
            error=repr(error),
            seconds=time.perf_counter() - started,
        )
    events = max(1, simulated.total_events)
    overhead = {
        "messages_per_event": simulated.monitor_messages / events,
        "token_messages": float(simulated.token_messages),
        "global_views": float(simulated.total_global_views),
        "delay_time_pct_per_view": simulated.delay_time_percentage_per_view,
    }
    divergent = bool(violations) or backend_divergence
    return FuzzOutcome(
        index=index,
        spec=spec,
        classification=CLASS_DIVERGENT if divergent else CLASS_SOUND,
        attack=attack,
        soundness_violations=tuple(sorted(str(v) for v in violations)),
        backend_divergence=backend_divergence,
        overhead=overhead,
        seconds=time.perf_counter() - started,
    )


@dataclass
class FuzzReport:
    """The full result of one fuzzing run."""

    seed: int
    outcomes: list[FuzzOutcome]
    #: minimal repros of the non-sound outcomes, keyed by point index
    shrunk: dict[int, RunSpec] = field(default_factory=dict)

    @property
    def counts(self) -> dict[str, int]:
        """Outcome counts by classification."""
        counts = {
            CLASS_SOUND: 0,
            CLASS_DIVERGENT: 0,
            CLASS_CRASH: 0,
            CLASS_STORM: 0,
        }
        for outcome in self.outcomes:
            counts[outcome.classification] += 1
        return counts

    @property
    def findings(self) -> list[FuzzOutcome]:
        """Unexpected (non-attack) divergences and crashes."""
        return [outcome for outcome in self.outcomes if outcome.is_finding]

    def worst_overhead(self) -> FuzzOutcome | None:
        """The point with the highest messages-per-event overhead."""
        scored = [o for o in self.outcomes if o.overhead]
        if not scored:
            return None
        return max(scored, key=lambda o: o.overhead["messages_per_event"])

    def bench_timings(self, total_seconds: float) -> dict[str, dict[str, object]]:
        """``repro-bench/1`` timing entries tracking fuzz overhead.

        One aggregate entry plus the worst-overhead point, so nightly
        artifacts track how expensive the adversarial space is getting.
        """
        counts = self.counts
        timings: dict[str, dict[str, object]] = {
            "fuzz_sweep": {
                "seconds": total_seconds,
                "group": "fuzz",
                "backend": "sim",
                "points": len(self.outcomes),
                "sound": counts[CLASS_SOUND],
                "divergent": counts[CLASS_DIVERGENT],
                "crashed": counts[CLASS_CRASH],
                "storms": counts[CLASS_STORM],
                "findings": len(self.findings),
                "fuzz_seed": self.seed,
            }
        }
        worst = self.worst_overhead()
        if worst is not None:
            timings["fuzz_worst_overhead"] = {
                "seconds": worst.seconds,
                "group": "fuzz",
                "backend": "sim",
                "point_index": worst.index,
                "scenario": worst.spec.scenario,
                "property": worst.spec.property_name,
                **worst.overhead,
            }
        return timings

    def as_dict(self) -> dict[str, object]:
        """JSON-ready document of the whole run."""
        return {
            "seed": self.seed,
            "points": len(self.outcomes),
            "counts": self.counts,
            "findings": [outcome.index for outcome in self.findings],
            "outcomes": [outcome.as_dict() for outcome in self.outcomes],
            "shrunk": {
                str(index): spec.to_json() for index, spec in self.shrunk.items()
            },
        }


def run_fuzz(
    seed: int,
    points: int,
    *,
    shrink: bool = True,
    progress=None,
) -> FuzzReport:
    """Fuzz *points* configurations under master seed *seed*.

    Deterministic end to end: the same ``(seed, points)`` produces the same
    specs, classifications and shrunk repros.  *progress* is an optional
    ``callable(outcome)`` invoked per point (the CLI uses it for
    line-by-line reporting).
    """
    from .shrink import shrink_point

    report = FuzzReport(seed=seed, outcomes=[])
    for index in range(points):
        spec = generate_point(seed, index)
        outcome = execute_point(spec, index)
        report.outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    if shrink:
        for outcome in report.outcomes:
            if outcome.classification == CLASS_SOUND:
                continue
            if outcome.classification == CLASS_STORM and not outcome.is_finding:
                # an expected amplification storm: every shrink candidate
                # would burn the full event budget again for a point whose
                # cause (duplication/replay) is already named by its plan
                continue
            report.shrunk[outcome.index] = shrink_point(
                outcome.spec, outcome.classification
            )
    return report
