"""Property fuzzing of the monitoring stack's soundness claims.

The fuzzer samples random but fully deterministic (formula × workload ×
network × fault-plan) points — each one a replayable
:class:`repro.cluster.spec.RunSpec` — runs them through the
sim-vs-centralized soundness oracle and the sim-vs-asyncio backend oracle,
classifies the outcome (``sound`` / ``divergent`` / ``crash``), and shrinks
every failure to a minimal repro document.  ``python -m repro.experiments
fuzz --seed N --points K`` is the command-line front end.
"""

from .engine import (
    CLASS_CRASH,
    CLASS_DIVERGENT,
    CLASS_SOUND,
    CLASS_STORM,
    can_storm,
    FuzzOutcome,
    FuzzReport,
    execute_point,
    generate_point,
    generate_points,
    is_attack_plan,
    run_fuzz,
)
from .shrink import shrink_candidates, shrink_point

__all__ = [
    "CLASS_SOUND",
    "CLASS_DIVERGENT",
    "CLASS_CRASH",
    "CLASS_STORM",
    "can_storm",
    "FuzzOutcome",
    "FuzzReport",
    "execute_point",
    "generate_point",
    "generate_points",
    "is_attack_plan",
    "run_fuzz",
    "shrink_candidates",
    "shrink_point",
]
