"""Greedy shrinking of failing fuzz points to minimal repros.

A divergent or crashing point is rarely minimal — it usually carries more
processes, more events and more armed fault behaviours than the failure
needs.  :func:`shrink_point` walks a fixed candidate order (smaller trace
first, then dropped fault-plan pieces, then normalized knobs), re-executes
each candidate, and keeps it whenever the original classification
survives.  The walk is deterministic (no randomness, fixed order, bounded
execution budget), so the same failing spec always shrinks to the same
repro — which is then serialized as a replayable ``RunSpec`` JSON document
next to the fuzz report.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

from ..cluster.spec import RunSpec
from ..faults import ByzantineSpec, FaultPlan, format_fault_plan

__all__ = ["shrink_point", "shrink_candidates"]

#: total point executions one shrink is allowed to spend
_SHRINK_BUDGET = 48

_BYZANTINE_FIELDS = ("duplicate_every", "corrupt_every", "replay_every", "drop_every")


def _with_plan(spec: RunSpec, plan: FaultPlan | None) -> RunSpec:
    """Re-serialize *plan* into *spec* (``None``/empty plans erase the field)."""
    if plan is not None and plan.is_noop(spec.num_processes):
        plan = None
    serialised = None if plan is None else format_fault_plan(plan)
    return dataclasses.replace(spec, fault_plan=serialised)


def shrink_candidates(spec: RunSpec) -> Iterator[RunSpec]:
    """Yield one-step reductions of *spec*, most aggressive first."""
    if spec.events_per_process > 2:
        yield dataclasses.replace(
            spec, events_per_process=max(2, spec.events_per_process // 2)
        )
        yield dataclasses.replace(spec, events_per_process=spec.events_per_process - 1)
    if spec.num_processes > 2:
        yield dataclasses.replace(spec, num_processes=spec.num_processes - 1)
    plan = spec.faults()
    if plan is not None:
        for index in range(len(plan.crashes)):
            crashes = plan.crashes[:index] + plan.crashes[index + 1 :]
            yield _with_plan(spec, dataclasses.replace(plan, crashes=crashes))
        for index in range(len(plan.byzantine)):
            byzantine = plan.byzantine[:index] + plan.byzantine[index + 1 :]
            yield _with_plan(spec, dataclasses.replace(plan, byzantine=byzantine))
        for index, byz in enumerate(plan.byzantine):
            for field in _BYZANTINE_FIELDS:
                if getattr(byz, field) == 0:
                    continue
                reduced = dataclasses.replace(byz, **{field: 0})
                byzantine = list(plan.byzantine)
                if reduced.is_noop:
                    del byzantine[index]
                else:
                    byzantine[index] = reduced
                yield _with_plan(
                    spec, dataclasses.replace(plan, byzantine=tuple(byzantine))
                )
        if plan.clock_skew is not None:
            yield _with_plan(spec, dataclasses.replace(plan, clock_skew=None))
            if plan.clock_skew.magnitude > 1:
                skew = dataclasses.replace(plan.clock_skew, magnitude=1)
                yield _with_plan(spec, dataclasses.replace(plan, clock_skew=skew))
    if spec.comm_mu is not None:
        yield dataclasses.replace(spec, comm_mu=None)
    if not spec.compiled_kernel:
        yield dataclasses.replace(spec, compiled_kernel=True)


def shrink_point(spec: RunSpec, classification: str) -> RunSpec:
    """Greedily shrink *spec* while it keeps reproducing *classification*.

    Restarts the candidate walk after every accepted reduction (a smaller
    trace often unlocks further plan reductions) until a full pass accepts
    nothing or the execution budget runs out.
    """
    from .engine import execute_point

    budget = _SHRINK_BUDGET
    current = spec
    improved = True
    while improved and budget > 0:
        improved = False
        for candidate in shrink_candidates(current):
            if budget <= 0:
                break
            budget -= 1
            if execute_point(candidate).classification == classification:
                current = candidate
                improved = True
                break
    return current
