"""``python -m repro.experiments`` — alias of :mod:`repro.experiments.cli`."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
