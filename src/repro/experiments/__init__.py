"""Case-study properties and the harness regenerating Chapter 5's results.

Public API
----------
* :func:`property_formula` / :func:`case_study_monitor` /
  :func:`case_study_registry` — properties A–F of Section 5.1.
* ``run_table_5_1`` … ``run_fig_5_9`` — one function per table/figure, each
  a thin scenario+grid declaration.
* :class:`ExperimentScale` — workload size knobs.
* :func:`format_table` — plain-text rendering of result rows.

The engine entry points previously re-exported here (``run_scenario``,
``execute_sweep``, ``execute_points``, ``BACKENDS``) moved to the curated
:mod:`repro.api` surface; importing them from this package still works for
one release but emits a :class:`DeprecationWarning` (PEP 562 shim below).
"""

import warnings
from importlib import import_module

from .harness import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    run_fig_5_1,
    run_fig_5_2_5_3,
    run_fig_5_4_5_5,
    run_fig_5_6,
    run_fig_5_7,
    run_fig_5_8,
    run_fig_5_9,
    run_monitoring_experiment,
    run_table_5_1,
)
from .properties import (
    PROPERTY_NAMES,
    case_study_monitor,
    case_study_registry,
    property_formula,
)

#: engine names kept importable from this package behind a deprecation shim;
#: the supported spellings live in :mod:`repro.api`
_DEPRECATED_ENGINE_NAMES = (
    "BACKENDS",
    "run_scenario",
    "execute_sweep",
    "execute_points",
    "trace_design",
)

__all__ = [
    "BACKENDS",
    "DEFAULT_SCALE",
    "ExperimentScale",
    "format_table",
    "run_fig_5_1",
    "run_fig_5_2_5_3",
    "run_fig_5_4_5_5",
    "run_fig_5_6",
    "run_fig_5_7",
    "run_fig_5_8",
    "run_fig_5_9",
    "run_monitoring_experiment",
    "run_scenario",
    "execute_sweep",
    "execute_points",
    "trace_design",
    "run_table_5_1",
    "PROPERTY_NAMES",
    "case_study_monitor",
    "case_study_registry",
    "property_formula",
]


def __getattr__(name: str) -> object:
    """Resolve deprecated engine re-exports with a :class:`DeprecationWarning`.

    The names keep working (they resolve to the same objects in
    :mod:`repro.experiments.engine`) so existing scripts run unchanged,
    but each access points callers at the stable :mod:`repro.api` home.
    """
    if name in _DEPRECATED_ENGINE_NAMES:
        home = (
            f"repro.api.{name}"
            if name in ("BACKENDS", "run_scenario")
            else f"repro.experiments.engine.{name}"
        )
        warnings.warn(
            f"importing {name!r} from repro.experiments is deprecated; "
            f"use {home}",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(import_module(".engine", __name__), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
