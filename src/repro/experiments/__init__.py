"""Case-study properties and the harness regenerating Chapter 5's results.

Public API
----------
* :func:`property_formula` / :func:`case_study_monitor` /
  :func:`case_study_registry` — properties A–F of Section 5.1.
* ``run_table_5_1`` … ``run_fig_5_9`` — one function per table/figure, each
  a thin scenario+grid declaration.
* :func:`run_scenario` / :func:`execute_sweep` — the generic sharded engine
  executing any :class:`repro.scenarios.Scenario`.
* :class:`ExperimentScale` — workload size knobs.
* :func:`format_table` — plain-text rendering of result rows.
"""

from .engine import BACKENDS, execute_points, execute_sweep, run_scenario, trace_design
from .harness import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    run_fig_5_1,
    run_fig_5_2_5_3,
    run_fig_5_4_5_5,
    run_fig_5_6,
    run_fig_5_7,
    run_fig_5_8,
    run_fig_5_9,
    run_monitoring_experiment,
    run_table_5_1,
)
from .properties import (
    PROPERTY_NAMES,
    case_study_monitor,
    case_study_registry,
    property_formula,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_SCALE",
    "ExperimentScale",
    "format_table",
    "run_fig_5_1",
    "run_fig_5_2_5_3",
    "run_fig_5_4_5_5",
    "run_fig_5_6",
    "run_fig_5_7",
    "run_fig_5_8",
    "run_fig_5_9",
    "run_monitoring_experiment",
    "run_scenario",
    "execute_sweep",
    "execute_points",
    "trace_design",
    "run_table_5_1",
    "PROPERTY_NAMES",
    "case_study_monitor",
    "case_study_registry",
    "property_formula",
]
