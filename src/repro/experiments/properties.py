"""The six LTL3 properties of the experimental evaluation (Section 5.1).

Each property is parameterised by the number of processes ``n``; every
process ``P_i`` owns two boolean propositions ``P<i>.p`` and ``P<i>.q``.
The definitions follow Section 5.1:

=========  ==================================================================
Property   Formula (for ``n`` processes)
=========  ==================================================================
A          ``G((P0.p & … & Pk.p) U (Pk+1.p & … & Pn-1.p))`` — the left block
           has two processes from ``n >= 4`` on, one before that (so that A
           and C coincide for 2 and 3 processes, as noted in the paper).
B          ``F(P0.p & … & Pn-1.p)``
C          ``G(P0.p U (P1.p & … & Pn-1.p))``
D          ``G((P0.p & … & Pn-1.p) U (P0.q & … & Pn-1.q))``
E          ``F(P0.p & … & Pn-1.p & P0.q & … & Pn-1.q)``
F          ``G((P0.p U (P1.p & … & Pn-1.p)) & (P0.q U (P1.q & … & Pn-1.q)))``
=========  ==================================================================
"""

from __future__ import annotations

from collections.abc import Sequence

from functools import lru_cache

from ..ltl.monitor import MonitorAutomaton, build_monitor
from ..ltl.predicates import PropositionRegistry

__all__ = [
    "PROPERTY_NAMES",
    "property_formula",
    "case_study_registry",
    "case_study_monitor",
]

PROPERTY_NAMES: tuple[str, ...] = ("A", "B", "C", "D", "E", "F")


def _conj(atoms: Sequence[str]) -> str:
    return " & ".join(atoms)


def property_formula(name: str, num_processes: int) -> str:
    """The LTL formula of case-study property *name* for *num_processes*."""
    if num_processes < 2:
        raise ValueError("the case study uses at least two processes")
    name = name.upper()
    p = [f"P{i}.p" for i in range(num_processes)]
    q = [f"P{i}.q" for i in range(num_processes)]
    if name == "A":
        split = 2 if num_processes >= 4 else 1
        return f"G(({_conj(p[:split])}) U ({_conj(p[split:])}))"
    if name == "B":
        return f"F({_conj(p)})"
    if name == "C":
        return f"G(({p[0]}) U ({_conj(p[1:])}))"
    if name == "D":
        return f"G(({_conj(p)}) U ({_conj(q)}))"
    if name == "E":
        return f"F({_conj(p + q)})"
    if name == "F":
        return (
            f"G((({p[0]}) U ({_conj(p[1:])})) & (({q[0]}) U ({_conj(q[1:])})))"
        )
    raise ValueError(f"unknown case-study property {name!r}")


def case_study_registry(num_processes: int) -> PropositionRegistry:
    """The proposition registry of the case study (``P<i>.p`` / ``P<i>.q``)."""
    return PropositionRegistry.boolean_grid(num_processes)


@lru_cache(maxsize=None)
def case_study_monitor(
    name: str, num_processes: int, paper_style: bool = True
) -> MonitorAutomaton:
    """The LTL3 monitor automaton of property *name* for *num_processes*.

    With ``paper_style=True`` (default) the automaton is built with the
    formula-progression method and left unminimised, reproducing the
    experimental automata of Table 5.1 / Figures 5.2–5.3; otherwise the
    Moore-minimal monitor is returned.
    """
    formula = property_formula(name, num_processes)
    # The alphabet is restricted to the formula's own atoms: propositions of
    # processes that do not participate are projected away automatically when
    # the monitor reads a letter of the full global state.
    if paper_style:
        return build_monitor(formula, method="progression", minimize=False)
    return build_monitor(formula)
