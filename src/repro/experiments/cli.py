"""Command-line entry point: regenerate the paper's tables and figures.

Usage (after installing the package)::

    python -m repro.experiments.cli table5.1
    python -m repro.experiments.cli fig5.2
    python -m repro.experiments.cli fig5.4 --processes 2 3 4 --events 6
    python -m repro.experiments.cli fig5.9
    python -m repro.experiments.cli list-scenarios
    python -m repro.experiments.cli list-scenarios --format json
    python -m repro.experiments.cli run --scenario lossy-retransmit --workers 4
    python -m repro.experiments.cli run --scenario paper-default --backend asyncio
    python -m repro.experiments.cli run --scenario paper-default --backend cluster
    python -m repro.experiments.cli run --backend cluster --manifest cluster.toml
    python -m repro.experiments.cli run --scenario crash-restart-rejoin
    python -m repro.experiments.cli run --scenario paper-default --fault-plan 1@3+2:rejoin
    python -m repro.experiments.cli run --scenario paper-default --topology gossip
    python -m repro.experiments.cli bench --json BENCH_local.json
    python -m repro.experiments.cli fuzz --seed 7 --points 200 --out fuzz-out
    python -m repro.experiments.cli fleet --tenants 200 --shards 2 --verify 5
    python -m repro.experiments.cli fleet --tenants 50 --backpressure drop-newest --inbox-limit 8
    python -m repro.experiments.cli all

Each sub-command prints the corresponding rows/series as an aligned text
table; the heavier sweeps accept ``--processes``, ``--events``,
``--replications`` and ``--workers`` to control the workload scale (with
``--workers`` the engine shards the full sweep-point × replication product
across a process pool).  ``list-scenarios`` shows the registered scenario
catalogue (with each scenario's fault condition and recovery policy; add
``--format json`` for tooling) and ``run --scenario NAME`` executes one of
them — ``--backend {sim,asyncio,cluster}`` selects the discrete-event
simulator (default), the asyncio streaming runtime (monitors as concurrent
tasks; add ``--stream-transport tcp`` for real loopback sockets), or the
multi-process cluster runtime of :mod:`repro.cluster` (one OS process per
monitor; add ``--manifest FILE`` to pin worker addresses instead of
auto-allocating loopback ports), and ``--fault-plan SPEC`` injects monitor
crash/restart faults on top of the scenario's own fault model (see
:mod:`repro.faults`), while ``--topology NAME`` routes tokens and digests
over an alternative coordination topology (see :mod:`repro.coordination`),
overriding the scenario's own.  ``--stream-transport`` requires the asyncio backend
and ``--manifest`` the cluster backend; mismatched combinations fail fast
with a clear error.  The ``bench``
sub-command times the kernel hot paths and the figure experiments and (with
``--json OUT``) writes the same ``repro-bench/1`` JSON document the CI
benchmark suite emits — embedding the resolved :class:`ExperimentScale` and
the scenario metadata, with every timing tagged by the backend it ran on,
so local and CI numbers are directly comparable and each BENCH file is
self-describing.  See ``docs/benchmarks.md`` for the full schema.  The
``fuzz`` sub-command runs the deterministic property fuzzer of
:mod:`repro.fuzz` — ``--seed``/``--points`` pick the point stream, every
divergent or crashing point is shrunk to a minimal repro, ``--out DIR``
writes the report plus each shrunk repro as a replayable ``RunSpec`` JSON
document, and the exit status is non-zero iff the run produced an
*unexpected* finding (a divergence outside the deliberately
soundness-breaking attack plans, or any crash).  The ``fleet`` sub-command
runs a synthetic multi-tenant monitoring fleet (:mod:`repro.fleet`):
``--tenants``/``--shards`` size it, ``--backpressure``/``--inbox-limit``
pick the per-tenant inbox policy, ``--sink jsonl --sink-path FILE`` streams
the per-tenant verdict records to a file, ``--verify K`` spot-checks K
tenants for byte-identical equivalence against standalone asyncio runs
(non-zero exit on mismatch), and ``--json OUT`` writes the fleet throughput
and saturation counters as a ``repro-bench/1`` document.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from ..coordination import TOPOLOGIES
from ..faults import format_fault_plan, parse_fault_plan
from ..scenarios import get_scenario, list_scenarios
from .engine import ExecutionConfig
from .harness import (
    ExperimentScale,
    format_table,
    run_fig_5_1,
    run_fig_5_2_5_3,
    run_fig_5_4_5_5,
    run_fig_5_9,
    run_scenario,
    run_table_5_1,
)

__all__ = ["main"]

#: result columns shared by every simulated sweep; scenario-specific network
#: counters (retransmissions, held_messages, ...) are appended dynamically
_SWEEP_COLUMNS = [
    "property",
    "processes",
    "events",
    "messages",
    "global_views",
    "delayed_events",
    "delay_time_pct_per_view",
]


def _scale_from_args(args: argparse.Namespace) -> ExperimentScale:
    return ExperimentScale(
        process_counts=tuple(args.processes),
        events_per_process=args.events,
        replications=args.replications,
        max_views_per_state=args.view_budget,
        workers=args.workers,
    )


def _emit_table_5_1(args: argparse.Namespace) -> None:
    print("Table 5.1 — transitions per automaton")
    print(format_table(run_table_5_1(process_counts=tuple(args.processes))))


def _emit_fig_5_1(args: argparse.Namespace) -> None:
    series = run_fig_5_1(process_counts=tuple(args.processes))
    print("Fig 5.1a — all transitions per property")
    for name, values in series["all_transitions"].items():
        print(f"  {name}: {values}")
    print("Fig 5.1b — outgoing transitions per property")
    for name, values in series["outgoing_transitions"].items():
        print(f"  {name}: {values}")


def _emit_fig_5_2_5_3(args: argparse.Namespace) -> None:
    for name, text in run_fig_5_2_5_3(min(args.processes)).items():
        print(f"--- property {name} ---")
        print(text)
        print()


def _emit_fig_5_4_5_8(args: argparse.Namespace) -> None:
    rows = run_fig_5_4_5_5(scale=_scale_from_args(args))
    print("Figures 5.4–5.8 — monitored workload sweep")
    print(format_table(rows, columns=_SWEEP_COLUMNS))


def _emit_fig_5_9(args: argparse.Namespace) -> None:
    rows = run_fig_5_9(
        num_processes=min(4, max(args.processes)),
        scale=_scale_from_args(args),
    )
    print("Fig 5.9 — varying the communication frequency (property C)")
    print(
        format_table(
            rows,
            columns=["comm_mu", "events", "messages", "delayed_events", "global_views"],
        )
    )


def _execution_config(args: argparse.Namespace) -> ExecutionConfig:
    """Validate the backend flag matrix and build the execution config.

    The error matrix is deliberately strict so a silently-ignored flag can
    never mislead a measurement:

    =====================  =======  =========  =========
    flag                   sim      asyncio    cluster
    =====================  =======  =========  =========
    ``--stream-transport``  error    used       error
    ``--manifest``          error    error      used
    =====================  =======  =========  =========
    """
    if args.stream_transport is not None and args.backend != "asyncio":
        raise SystemExit(
            f"error: --stream-transport only applies to --backend asyncio "
            f"(got --backend {args.backend})"
        )
    if args.manifest is not None and args.backend != "cluster":
        raise SystemExit(
            f"error: --manifest only applies to --backend cluster "
            f"(got --backend {args.backend})"
        )
    if args.manifest is not None and not Path(args.manifest).exists():
        raise SystemExit(f"error: cluster manifest not found: {args.manifest}")
    fault_plan = None
    if args.fault_plan:
        try:
            fault_plan = parse_fault_plan(args.fault_plan)
        except ValueError as error:
            raise SystemExit(f"error: {error}") from None
    return ExecutionConfig(
        backend=args.backend,
        stream_transport=args.stream_transport or "memory",
        fault_plan=fault_plan,
        manifest=args.manifest,
        compiled_kernel=not args.no_compiled_kernel,
        topology=getattr(args, "topology", None),
    )


def _emit_list_scenarios(args: argparse.Namespace) -> None:
    if args.format == "json":
        catalogue = [scenario.describe() for scenario in list_scenarios()]
        print(json.dumps(catalogue, indent=2, sort_keys=True))
        return
    rows = []
    for scenario in list_scenarios():
        description = scenario.describe()
        faults = description["faults"]
        rows.append(
            {
                "name": scenario.name,
                "workload": description["workload"]["kind"],
                "network": description["network"]["kind"],
                "faults": faults["kind"] if faults is not None else "-",
                "recovery": faults.get("recovery", "-") if faults is not None else "-",
                "topology": scenario.topology,
                "tags": ",".join(scenario.tags),
                "description": scenario.description,
            }
        )
    print(f"{len(rows)} registered scenarios")
    print(
        format_table(
            rows,
            columns=[
                "name",
                "workload",
                "network",
                "faults",
                "recovery",
                "topology",
                "tags",
                "description",
            ],
        )
    )


def _emit_run_scenario(args: argparse.Namespace) -> None:
    try:
        scenario = get_scenario(args.scenario)
    except KeyError as error:
        raise SystemExit(f"error: {error.args[0]}") from None
    config = _execution_config(args)
    scale = _scale_from_args(args)
    rows = run_scenario(scenario, scale, config=config)
    columns = list(_SWEEP_COLUMNS)
    for row in rows:
        for key in row:
            if key not in columns and key not in ("token_messages", "log_events", "log_messages"):
                columns.append(key)
    backend = config.backend
    if backend == "asyncio":
        backend = f"asyncio/{config.stream_transport}"
    topology = config.topology if config.topology is not None else scenario.topology
    print(
        f"scenario {scenario.name} [backend {backend}, topology {topology}] "
        f"— {scenario.description}"
    )
    if config.fault_plan is not None:
        print(
            f"fault plan override: {format_fault_plan(config.fault_plan) or '(empty)'}"
        )
    print(format_table(rows, columns=columns))


def _emit_bench(args: argparse.Namespace) -> None:
    from .benchjson import (
        SEED_BASELINE_SECONDS,
        collect_kernel_timings,
        make_document,
        write_bench_json,
    )

    scale = _scale_from_args(args)
    config = _execution_config(args)
    try:
        bench_scenario = get_scenario(args.scenario)
    except KeyError as error:
        raise SystemExit(f"error: {error.args[0]}") from None
    # The kernel hot paths are always timed at the default ExperimentScale /
    # full property sweep so the numbers stay comparable with the fixed seed
    # baseline and across machines; the CLI scale flags only govern the
    # figure-experiment timings below.
    timings = collect_kernel_timings()
    for label, runner in (
        ("table_5_1", lambda: run_table_5_1(process_counts=tuple(args.processes))),
        ("fig_5_4_5_5", lambda: run_fig_5_4_5_5(scale=scale)),
        ("fig_5_9", lambda: run_fig_5_9(
            num_processes=min(4, max(args.processes)), scale=scale
        )),
    ):
        start = time.perf_counter()
        runner()
        timings[label] = {
            "seconds": time.perf_counter() - start,
            "group": "figures",
            "scenario": "paper-default",
            "backend": "sim",
        }
    if bench_scenario.name != "paper-default":
        start = time.perf_counter()
        run_scenario(bench_scenario, scale)
        timings[f"scenario_{bench_scenario.name}"] = {
            "seconds": time.perf_counter() - start,
            "group": "scenarios",
            "scenario": bench_scenario.name,
            "backend": "sim",
        }
    if config.backend != "sim":
        # time the chosen scenario on the selected non-default backend as
        # well, so BENCH documents carry directly comparable backend pairs
        start = time.perf_counter()
        run_scenario(bench_scenario, scale, config=config)
        timing = {
            "seconds": time.perf_counter() - start,
            "group": "scenarios",
            "scenario": bench_scenario.name,
            "backend": config.backend,
        }
        if config.backend == "asyncio":
            timing["stream_transport"] = config.stream_transport
        timings[f"scenario_{bench_scenario.name}_{config.backend}"] = timing

    rows = []
    for name, record in timings.items():
        row = {"name": name, "seconds": record["seconds"], "seed_seconds": "-", "speedup": "-"}
        baseline = SEED_BASELINE_SECONDS.get(name)
        if baseline and record["seconds"]:
            row["seed_seconds"] = f"{baseline:.2f}"
            row["speedup"] = f"{baseline / record['seconds']:.2f}x"
        rows.append(row)
    print("Benchmark timings (wall-clock)")
    print(format_table(rows, columns=["name", "seconds", "seed_seconds", "speedup"]))

    scenarios = {bench_scenario.name: bench_scenario.describe()}
    if bench_scenario.name != "paper-default":
        scenarios["paper-default"] = get_scenario("paper-default").describe()
    if args.json:
        try:
            write_bench_json(args.json, timings, scale, scenarios=scenarios)
        except OSError as error:
            raise SystemExit(f"error: cannot write {args.json}: {error}") from None
        print(f"\nwrote {args.json}")
    else:
        # still validate that the document assembles
        make_document(timings, scale, scenarios=scenarios)


def _emit_fuzz(args: argparse.Namespace) -> None:
    from ..fuzz import CLASS_SOUND, run_fuzz
    from .benchjson import make_document, write_bench_json

    def progress(outcome) -> None:
        if outcome.classification == CLASS_SOUND:
            return
        if outcome.is_finding:
            tag = "UNEXPECTED FINDING"
        elif outcome.attack:
            tag = "attack point"
        else:
            tag = "expected storm"
        detail = outcome.error or ", ".join(outcome.soundness_violations) or (
            "backend divergence" if outcome.backend_divergence else ""
        )
        print(
            f"point {outcome.index}: {outcome.classification} ({tag}) "
            f"[{outcome.spec.scenario} n={outcome.spec.num_processes} "
            f"plan={outcome.spec.fault_plan}] {detail}",
            flush=True,
        )

    start = time.perf_counter()
    report = run_fuzz(
        args.seed, args.points, shrink=not args.no_shrink, progress=progress
    )
    total = time.perf_counter() - start
    counts = report.counts
    print(
        f"fuzzed {args.points} points (seed {args.seed}) in {total:.1f}s: "
        f"{counts['sound']} sound, {counts['divergent']} divergent, "
        f"{counts['crash']} crashed, {counts['storm']} storms; "
        f"{len(report.findings)} unexpected finding(s)"
    )
    worst = report.worst_overhead()
    if worst is not None:
        print(
            f"worst monitoring overhead: point {worst.index} "
            f"({worst.spec.scenario}, property {worst.spec.property_name}) — "
            f"{worst.overhead['messages_per_event']:.2f} messages/event, "
            f"{worst.overhead['global_views']:.0f} global views"
        )
    timings = report.bench_timings(total)
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        (out / "fuzz-report.json").write_text(
            json.dumps(report.as_dict(), indent=2) + "\n"
        )
        for index, spec in sorted(report.shrunk.items()):
            spec.save(out / f"repro-{index:04d}.json")
        write_bench_json(out / "fuzz-bench.json", timings)
        print(
            f"wrote {out}/fuzz-report.json, {len(report.shrunk)} shrunk "
            f"repro(s) and {out}/fuzz-bench.json"
        )
    elif args.json:
        write_bench_json(args.json, timings)
        print(f"wrote {args.json}")
    else:
        make_document(timings)  # still validate that the document assembles
    if report.findings:
        raise SystemExit(1)


def _emit_fleet(args: argparse.Namespace) -> None:
    from ..fleet import (
        FleetConfig,
        make_sink,
        run_fleet,
        standalone_tenant_result,
        synthetic_fleet,
    )
    from .benchjson import make_document, write_bench_json

    tenants = synthetic_fleet(
        args.tenants,
        num_processes=min(args.processes),
        events_per_process=args.events,
        base_seed=args.seed or 2015,
        topology=args.topology or "round-robin-token",
        compiled_kernel=not args.no_compiled_kernel,
    )
    config = FleetConfig(
        tenants=tenants,
        shards=args.shards,
        inbox_limit=args.inbox_limit,
        backpressure=args.backpressure,
    )
    sink = None
    if args.sink is not None:
        try:
            sink = make_sink(args.sink, args.sink_path)
        except ValueError as error:
            raise SystemExit(f"error: {error}") from None
    report = run_fleet(config, sink=sink)
    print(
        f"fleet: {report.tenants_admitted} tenants on {report.shards} shard(s), "
        f"backpressure {report.backpressure} (inbox limit {report.inbox_limit})"
    )
    rows = [
        {"metric": name, "value": f"{value:g}"}
        for name, value in report.as_dict().items()
        if name not in ("backpressure",)
    ]
    print(format_table(rows, columns=["metric", "value"]))
    if sink is not None:
        print(f"sink: {sink.describe()}")
    if args.verify:
        stride = max(1, len(report.results) // args.verify)
        picked = report.results[::stride][: args.verify]
        mismatches = 0
        for result in picked:
            spec = next(t for t in tenants if t.tenant_id == result.tenant_id)
            reference = standalone_tenant_result(spec)
            ok = reference.equivalence_key() == result.equivalence_key()
            mismatches += 0 if ok else 1
            print(
                f"verify {result.tenant_id} (property {result.property_name}): "
                f"{'ok' if ok else 'MISMATCH'}"
            )
        if mismatches:
            raise SystemExit(
                f"error: {mismatches}/{len(picked)} spot-checked tenant(s) "
                f"diverged from their standalone asyncio runs"
            )
        print(f"verified {len(picked)} tenant(s) against standalone runs")
    timings = report.bench_timings()
    if args.json:
        try:
            write_bench_json(args.json, timings)
        except OSError as error:
            raise SystemExit(f"error: cannot write {args.json}: {error}") from None
        print(f"wrote {args.json}")
    else:
        make_document(timings)  # still validate that the document assembles


_COMMANDS = {
    "table5.1": _emit_table_5_1,
    "fig5.1": _emit_fig_5_1,
    "fig5.2": _emit_fig_5_2_5_3,
    "fig5.3": _emit_fig_5_2_5_3,
    "fig5.4": _emit_fig_5_4_5_8,
    "fig5.5": _emit_fig_5_4_5_8,
    "fig5.6": _emit_fig_5_4_5_8,
    "fig5.7": _emit_fig_5_4_5_8,
    "fig5.8": _emit_fig_5_4_5_8,
    "fig5.9": _emit_fig_5_9,
    "list-scenarios": _emit_list_scenarios,
    "run": _emit_run_scenario,
    "bench": _emit_bench,
    "fuzz": _emit_fuzz,
    "fleet": _emit_fleet,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the paper's evaluation.",
    )
    parser.add_argument(
        "artefact",
        choices=sorted(_COMMANDS) + ["all"],
        help="which table/figure to regenerate ('all' runs everything), "
        "'list-scenarios' to show the scenario catalogue, or 'run' to "
        "execute one scenario",
    )
    parser.add_argument(
        "--scenario",
        default="paper-default",
        help="scenario name for 'run' (see list-scenarios); with 'bench' a "
        "non-default scenario is timed and tagged in addition to the figures",
    )
    parser.add_argument(
        "--backend",
        choices=["sim", "asyncio", "cluster"],
        default="sim",
        help="monitoring backend for 'run': the discrete-event simulator "
        "(default), the asyncio streaming runtime where monitors run as "
        "concurrent tasks, or the cluster runtime where every monitor is "
        "its own OS process; with 'bench' a non-sim backend is timed in "
        "addition to the simulator",
    )
    parser.add_argument(
        "--stream-transport",
        choices=["memory", "tcp"],
        default=None,
        help="asyncio backend only: exchange monitor messages through "
        "in-process queues (the default) or real loopback TCP sockets",
    )
    parser.add_argument(
        "--manifest",
        metavar="FILE",
        default=None,
        help="cluster backend only: TOML/JSON manifest pinning worker "
        "host:port addresses (default: auto-allocate loopback ports)",
    )
    parser.add_argument(
        "--format",
        choices=["table", "json"],
        default="table",
        help="list-scenarios only: aligned table (default) or a JSON "
        "catalogue for tooling",
    )
    parser.add_argument(
        "--no-compiled-kernel",
        action="store_true",
        help="step monitors with the interpreted Moore machine instead of "
        "the compiled bitmask/dense-table kernel (results are identical; "
        "this is an escape hatch and an A/B measurement aid)",
    )
    parser.add_argument(
        "--topology",
        choices=list(TOPOLOGIES),
        default=None,
        help="run only: coordination topology routing tokens and digests, "
        "overriding the scenario's own (default: the scenario's topology, "
        "usually round-robin-token)",
    )
    parser.add_argument(
        "--fault-plan",
        metavar="SPEC",
        default=None,
        help="run only: inject monitor crashes, overriding the scenario's "
        "own fault model; comma-separated "
        "'<process>@<after_events>[+<down_events>][:<recovery>]' specs, "
        "e.g. '1@4+2:rejoin' (recovery: replay|rejoin)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        nargs="+",
        default=[2, 3, 4],
        help="process counts to sweep (default: 2 3 4)",
    )
    parser.add_argument(
        "--events", type=int, default=6, help="internal events per process"
    )
    parser.add_argument(
        "--replications", type=int, default=2, help="replications per data point"
    )
    parser.add_argument(
        "--view-budget",
        type=int,
        default=2,
        help="per-state view budget of each monitor (0 disables the bound)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes sharding the sweep-point x replication product "
        "(default: 1, serial)",
    )
    parser.add_argument(
        "--json",
        metavar="OUT",
        default=None,
        help="bench/fuzz: write the repro-bench/1 JSON document to OUT",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="fuzz only: master seed of the deterministic point stream",
    )
    parser.add_argument(
        "--points",
        type=int,
        default=50,
        help="fuzz only: how many points to generate and execute",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="fuzz only: directory for the fuzz report, the shrunk repro "
        "RunSpec documents and the repro-bench/1 timings",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="fuzz only: skip shrinking divergent/crashing points",
    )
    parser.add_argument(
        "--tenants",
        type=int,
        default=50,
        help="fleet only: how many synthetic tenants to admit (properties "
        "round-robin over A-F; seeds stride from --seed, default 2015)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="fleet only: worker processes the tenants are hash-partitioned "
        "across (default: 1, one shared event loop)",
    )
    parser.add_argument(
        "--inbox-limit",
        type=int,
        default=1024,
        help="fleet only: per-tenant bound on unprocessed inbox items before "
        "the backpressure policy applies",
    )
    parser.add_argument(
        "--backpressure",
        choices=["block", "drop-newest"],
        default="block",
        help="fleet only: what a saturated tenant inbox does — stall the "
        "feeder losslessly (block) or shed the newest events (drop-newest)",
    )
    parser.add_argument(
        "--sink",
        choices=["memory", "jsonl"],
        default=None,
        help="fleet only: verdict sink receiving one record per tenant "
        "(jsonl requires --sink-path)",
    )
    parser.add_argument(
        "--sink-path",
        metavar="FILE",
        default=None,
        help="fleet only: output file of the jsonl verdict sink",
    )
    parser.add_argument(
        "--verify",
        type=int,
        default=0,
        metavar="K",
        help="fleet only: spot-check K tenants for byte-identical "
        "equivalence against standalone asyncio runs (non-zero exit on "
        "mismatch)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.view_budget == 0:
        args.view_budget = None
    if args.artefact == "all":
        artefacts: list[str] = [
            "table5.1", "fig5.1", "fig5.2", "fig5.4", "fig5.9", "list-scenarios",
        ]
    else:
        artefacts = [args.artefact]
    for artefact in artefacts:
        _COMMANDS[artefact](args)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
