"""Command-line entry point: regenerate the paper's tables and figures.

Usage (after installing the package)::

    python -m repro.experiments.cli table5.1
    python -m repro.experiments.cli fig5.2
    python -m repro.experiments.cli fig5.4 --processes 2 3 4 --events 6
    python -m repro.experiments.cli fig5.9
    python -m repro.experiments.cli bench --json BENCH_local.json
    python -m repro.experiments.cli all

Each sub-command prints the corresponding rows/series as an aligned text
table; the heavier figure sweeps accept ``--processes``, ``--events``,
``--replications`` and ``--workers`` to control the workload scale.  The
``bench`` sub-command times the kernel hot paths and the figure experiments
and (with ``--json OUT``) writes the same ``repro-bench/1`` JSON document the
CI benchmark suite emits, so local and CI numbers are directly comparable.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from .harness import (
    ExperimentScale,
    format_table,
    run_fig_5_1,
    run_fig_5_2_5_3,
    run_fig_5_4_5_5,
    run_fig_5_9,
    run_table_5_1,
)

__all__ = ["main"]


def _scale_from_args(args: argparse.Namespace) -> ExperimentScale:
    return ExperimentScale(
        process_counts=tuple(args.processes),
        events_per_process=args.events,
        replications=args.replications,
        max_views_per_state=args.view_budget,
        workers=args.workers,
    )


def _emit_table_5_1(args: argparse.Namespace) -> None:
    print("Table 5.1 — transitions per automaton")
    print(format_table(run_table_5_1(process_counts=tuple(args.processes))))


def _emit_fig_5_1(args: argparse.Namespace) -> None:
    series = run_fig_5_1(process_counts=tuple(args.processes))
    print("Fig 5.1a — all transitions per property")
    for name, values in series["all_transitions"].items():
        print(f"  {name}: {values}")
    print("Fig 5.1b — outgoing transitions per property")
    for name, values in series["outgoing_transitions"].items():
        print(f"  {name}: {values}")


def _emit_fig_5_2_5_3(args: argparse.Namespace) -> None:
    for name, text in run_fig_5_2_5_3(min(args.processes)).items():
        print(f"--- property {name} ---")
        print(text)
        print()


def _emit_fig_5_4_5_8(args: argparse.Namespace) -> None:
    rows = run_fig_5_4_5_5(scale=_scale_from_args(args))
    print("Figures 5.4–5.8 — monitored workload sweep")
    print(
        format_table(
            rows,
            columns=[
                "property",
                "processes",
                "events",
                "messages",
                "global_views",
                "delayed_events",
                "delay_time_pct_per_view",
            ],
        )
    )


def _emit_fig_5_9(args: argparse.Namespace) -> None:
    rows = run_fig_5_9(
        num_processes=min(4, max(args.processes)),
        scale=_scale_from_args(args),
    )
    print("Fig 5.9 — varying the communication frequency (property C)")
    print(
        format_table(
            rows,
            columns=["comm_mu", "events", "messages", "delayed_events", "global_views"],
        )
    )


def _emit_bench(args: argparse.Namespace) -> None:
    from .benchjson import (
        SEED_BASELINE_SECONDS,
        collect_kernel_timings,
        make_document,
        write_bench_json,
    )

    scale = _scale_from_args(args)
    # The kernel hot paths are always timed at the default ExperimentScale /
    # full property sweep so the numbers stay comparable with the fixed seed
    # baseline and across machines; the CLI scale flags only govern the
    # figure-experiment timings below.
    timings = collect_kernel_timings()
    for label, runner in (
        ("table_5_1", lambda: run_table_5_1(process_counts=tuple(args.processes))),
        ("fig_5_4_5_5", lambda: run_fig_5_4_5_5(scale=scale)),
        ("fig_5_9", lambda: run_fig_5_9(
            num_processes=min(4, max(args.processes)), scale=scale
        )),
    ):
        start = time.perf_counter()
        runner()
        timings[label] = {
            "seconds": time.perf_counter() - start,
            "group": "figures",
        }

    rows = []
    for name, record in timings.items():
        row = {"name": name, "seconds": record["seconds"], "seed_seconds": "-", "speedup": "-"}
        baseline = SEED_BASELINE_SECONDS.get(name)
        if baseline and record["seconds"]:
            row["seed_seconds"] = f"{baseline:.2f}"
            row["speedup"] = f"{baseline / record['seconds']:.2f}x"
        rows.append(row)
    print("Benchmark timings (wall-clock)")
    print(format_table(rows, columns=["name", "seconds", "seed_seconds", "speedup"]))

    if args.json:
        try:
            write_bench_json(args.json, timings, scale)
        except OSError as error:
            raise SystemExit(f"error: cannot write {args.json}: {error}")
        print(f"\nwrote {args.json}")
    else:
        # still validate that the document assembles
        make_document(timings, scale)


_COMMANDS = {
    "table5.1": _emit_table_5_1,
    "fig5.1": _emit_fig_5_1,
    "fig5.2": _emit_fig_5_2_5_3,
    "fig5.3": _emit_fig_5_2_5_3,
    "fig5.4": _emit_fig_5_4_5_8,
    "fig5.5": _emit_fig_5_4_5_8,
    "fig5.6": _emit_fig_5_4_5_8,
    "fig5.7": _emit_fig_5_4_5_8,
    "fig5.8": _emit_fig_5_4_5_8,
    "fig5.9": _emit_fig_5_9,
    "bench": _emit_bench,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the paper's evaluation.",
    )
    parser.add_argument(
        "artefact",
        choices=sorted(_COMMANDS) + ["all"],
        help="which table/figure to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        nargs="+",
        default=[2, 3, 4],
        help="process counts to sweep (default: 2 3 4)",
    )
    parser.add_argument(
        "--events", type=int, default=6, help="internal events per process"
    )
    parser.add_argument(
        "--replications", type=int, default=2, help="replications per data point"
    )
    parser.add_argument(
        "--view-budget",
        type=int,
        default=2,
        help="per-state view budget of each monitor (0 disables the bound)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for experiment replications (default: 1, serial)",
    )
    parser.add_argument(
        "--json",
        metavar="OUT",
        default=None,
        help="bench only: write the repro-bench/1 JSON document to OUT",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.view_budget == 0:
        args.view_budget = None
    if args.artefact == "all":
        artefacts: List[str] = ["table5.1", "fig5.1", "fig5.2", "fig5.4", "fig5.9"]
    else:
        artefacts = [args.artefact]
    for artefact in artefacts:
        _COMMANDS[artefact](args)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
