"""Machine-readable benchmark artifacts (``BENCH_*.json``).

Both the benchmark suite under ``benchmarks/`` (via its ``conftest``) and the
``repro.experiments.cli bench`` subcommand emit the same JSON document, so
local numbers and CI numbers are directly comparable and the speedup of the
LTL kernel can be tracked across PRs.

Document layout (schema ``repro-bench/1``)::

    {
      "schema": "repro-bench/1",
      "created_at": "2026-07-29T12:34:56+00:00",
      "environment": {"python": "3.11.7", "platform": "...", "cpu_count": 1},
      "scale": {"process_counts": [2, 3, 4], "events_per_process": 6, ...},
      "scenarios": {"paper-default": {"name": ..., "workload": ..., ...}},
      "timings": {
        "build_progression_machine": {"seconds": 0.24, "group": "kernel", ...},
        "run_monitoring_experiment": {"seconds": 1.02, "group": "kernel", ...},
        "<pytest benchmark name>":   {"seconds": ..., "group": "fig-5.4"},
        ...
      },
      "reference": {  # fixed baseline measured on the pre-interning kernel
        "build_progression_machine": 1.318,
        "run_monitoring_experiment": 4.773
      }
    }

``timings`` values carry wall-clock seconds; records of monitored sweeps are
tagged with their ``scenario`` name and the ``backend`` that executed them
(``"sim"`` for the discrete-event simulator, ``"asyncio"`` for the streaming
runtime, which also records its ``stream_transport``).  ``reference``
carries the seed baseline for the two acceptance hot paths so any consumer
can compute the speedup factor without digging through git history.
``scale`` embeds the resolved :class:`ExperimentScale` and ``scenarios`` the
metadata of every scenario exercised, so each document is fully
self-describing.  The field-by-field schema reference lives in
``docs/benchmarks.md``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from collections.abc import Sequence
from dataclasses import asdict

from .harness import DEFAULT_SCALE, ExperimentScale, run_monitoring_experiment
from .properties import PROPERTY_NAMES, property_formula

__all__ = [
    "SCHEMA_VERSION",
    "SEED_BASELINE_SECONDS",
    "collect_kernel_timings",
    "make_document",
    "write_bench_json",
]

SCHEMA_VERSION = "repro-bench/1"

#: Wall-clock seconds of the two acceptance hot paths measured on the seed
#: (pre-interning) kernel, single fresh process, on the reference dev
#: container (1 CPU).  Kept verbatim so every emitted artifact can report the
#: speedup relative to the same fixed point.
SEED_BASELINE_SECONDS: dict[str, float] = {
    "build_progression_machine": 1.318,
    "run_monitoring_experiment": 4.773,
}


def _environment() -> dict[str, object]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "executable": sys.executable,
    }


def collect_kernel_timings(
    process_counts: Sequence[int] = (2, 3, 4, 5),
    properties: Sequence[str] = PROPERTY_NAMES,
    experiment_point: tuple = ("C", 4),
    scale: ExperimentScale = DEFAULT_SCALE,
) -> dict[str, dict[str, object]]:
    """Time the two kernel hot paths of the acceptance criteria.

    ``build_progression_machine`` is timed over the full case-study sweep
    (every property at every process count); ``run_monitoring_experiment``
    over one representative experiment point at *scale*.
    """
    from ..ltl.parser import parse
    from ..ltl.progression import build_progression_machine

    start = time.perf_counter()
    machines = 0
    for name in properties:
        for n in process_counts:
            build_progression_machine(parse(property_formula(name, n)))
            machines += 1
    build_seconds = time.perf_counter() - start

    prop, n = experiment_point
    start = time.perf_counter()
    run_monitoring_experiment(prop, n, scale)
    experiment_seconds = time.perf_counter() - start

    return {
        "build_progression_machine": {
            "seconds": build_seconds,
            "group": "kernel",
            "machines": machines,
            "properties": list(properties),
            "process_counts": list(process_counts),
        },
        "run_monitoring_experiment": {
            "seconds": experiment_seconds,
            "group": "kernel",
            "property": prop,
            "processes": n,
            "replications": scale.replications,
            "workers": scale.workers,
            "scenario": "paper-default",
            "backend": "sim",
        },
    }


def make_document(
    timings: dict[str, dict[str, object]],
    scale: ExperimentScale | None = None,
    scenarios: dict[str, dict[str, object]] | None = None,
) -> dict[str, object]:
    """Assemble a schema ``repro-bench/1`` document from raw timings.

    *scale* embeds the resolved :class:`ExperimentScale` and *scenarios* the
    ``Scenario.describe()`` metadata of every scenario the timings exercise;
    when *scenarios* is omitted the paper-default scenario is recorded, since
    that is what the figure experiments run under.
    """
    if scenarios is None:
        from ..scenarios import get_scenario

        scenarios = {"paper-default": get_scenario("paper-default").describe()}
    document: dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "environment": _environment(),
        "timings": timings,
        "reference": dict(SEED_BASELINE_SECONDS),
        "scenarios": scenarios,
    }
    if scale is not None:
        document["scale"] = asdict(scale)
    return document


def write_bench_json(
    path: str,
    timings: dict[str, dict[str, object]],
    scale: ExperimentScale | None = None,
    scenarios: dict[str, dict[str, object]] | None = None,
) -> dict[str, object]:
    """Write a benchmark document to *path* and return it."""
    document = make_document(timings, scale, scenarios=scenarios)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document
