"""Machine-readable benchmark artifacts (``BENCH_*.json``).

Both the benchmark suite under ``benchmarks/`` (via its ``conftest``) and the
``repro.experiments.cli bench`` subcommand emit the same JSON document, so
local numbers and CI numbers are directly comparable and the speedup of the
LTL kernel can be tracked across PRs.

Document layout (schema ``repro-bench/1``)::

    {
      "schema": "repro-bench/1",
      "created_at": "2026-07-29T12:34:56+00:00",
      "environment": {"python": "3.11.7", "platform": "...", "cpu_count": 1},
      "scale": {"process_counts": [2, 3, 4], "events_per_process": 6, ...},
      "timings": {
        "build_progression_machine": {"seconds": 0.24, "group": "kernel", ...},
        "run_monitoring_experiment": {"seconds": 1.02, "group": "kernel", ...},
        "<pytest benchmark name>":   {"seconds": ..., "group": "fig-5.4"},
        ...
      },
      "reference": {  # fixed baseline measured on the pre-interning kernel
        "build_progression_machine": 1.318,
        "run_monitoring_experiment": 4.773
      }
    }

``timings`` values carry wall-clock seconds; ``reference`` carries the seed
baseline for the two acceptance hot paths so any consumer can compute the
speedup factor without digging through git history.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import asdict
from typing import Dict, Optional, Sequence

from .harness import DEFAULT_SCALE, ExperimentScale, run_monitoring_experiment
from .properties import PROPERTY_NAMES, property_formula

__all__ = [
    "SCHEMA_VERSION",
    "SEED_BASELINE_SECONDS",
    "collect_kernel_timings",
    "make_document",
    "write_bench_json",
]

SCHEMA_VERSION = "repro-bench/1"

#: Wall-clock seconds of the two acceptance hot paths measured on the seed
#: (pre-interning) kernel, single fresh process, on the reference dev
#: container (1 CPU).  Kept verbatim so every emitted artifact can report the
#: speedup relative to the same fixed point.
SEED_BASELINE_SECONDS: Dict[str, float] = {
    "build_progression_machine": 1.318,
    "run_monitoring_experiment": 4.773,
}


def _environment() -> Dict[str, object]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "executable": sys.executable,
    }


def collect_kernel_timings(
    process_counts: Sequence[int] = (2, 3, 4, 5),
    properties: Sequence[str] = PROPERTY_NAMES,
    experiment_point: tuple = ("C", 4),
    scale: ExperimentScale = DEFAULT_SCALE,
) -> Dict[str, Dict[str, object]]:
    """Time the two kernel hot paths of the acceptance criteria.

    ``build_progression_machine`` is timed over the full case-study sweep
    (every property at every process count); ``run_monitoring_experiment``
    over one representative experiment point at *scale*.
    """
    from ..ltl.parser import parse
    from ..ltl.progression import build_progression_machine

    start = time.perf_counter()
    machines = 0
    for name in properties:
        for n in process_counts:
            build_progression_machine(parse(property_formula(name, n)))
            machines += 1
    build_seconds = time.perf_counter() - start

    prop, n = experiment_point
    start = time.perf_counter()
    run_monitoring_experiment(prop, n, scale)
    experiment_seconds = time.perf_counter() - start

    return {
        "build_progression_machine": {
            "seconds": build_seconds,
            "group": "kernel",
            "machines": machines,
            "properties": list(properties),
            "process_counts": list(process_counts),
        },
        "run_monitoring_experiment": {
            "seconds": experiment_seconds,
            "group": "kernel",
            "property": prop,
            "processes": n,
            "replications": scale.replications,
            "workers": scale.workers,
        },
    }


def make_document(
    timings: Dict[str, Dict[str, object]],
    scale: Optional[ExperimentScale] = None,
) -> Dict[str, object]:
    """Assemble a schema ``repro-bench/1`` document from raw timings."""
    document: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "environment": _environment(),
        "timings": timings,
        "reference": dict(SEED_BASELINE_SECONDS),
    }
    if scale is not None:
        document["scale"] = asdict(scale)
    return document


def write_bench_json(
    path: str,
    timings: Dict[str, Dict[str, object]],
    scale: Optional[ExperimentScale] = None,
) -> Dict[str, object]:
    """Write a benchmark document to *path* and return it."""
    document = make_document(timings, scale)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document
