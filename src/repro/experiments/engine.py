"""The generic scenario-sweep engine: one executor for every experiment.

Every ``run_*`` artefact of the harness is now a thin declaration — a
:class:`~repro.scenarios.Scenario` plus a :class:`~repro.scenarios.SweepGrid`
— executed here.  The engine expands the grid into ordered sweep points,
multiplies them by the replication count, derives one RNG seed per cell as a
pure function of ``(base_seed, replication, point.seed_offset)``, and shards
the **full (point × replication) product** across a process pool.  Because
cell seeds are derived (never drawn) and aggregation walks cells in list
order, serial and sharded executions are byte-identical.

Cells are backend-agnostic, selected by an :class:`ExecutionConfig`:
``backend="sim"`` (the default) replays each cell on the discrete-event
simulator, ``backend="asyncio"`` on the streaming runtime of
:mod:`repro.runtime`, where monitors run as concurrent asyncio tasks (over
in-process queues or real TCP sockets, see ``stream_transport``), and
``backend="cluster"`` on the multi-process cluster runtime of
:mod:`repro.cluster`, where every monitor is its own OS process exchanging
wire protocol v2 frames.  All backends share one monitor implementation and
deliver reliably, so a cell's conclusive verdicts are identical for a fixed
seed — only timing/queuing metrics reflect the backend's nature.

The legacy per-call ``backend=`` / ``stream_transport=`` / ``fault_plan=``
keyword arguments are still accepted everywhere for one release, emitting a
:class:`DeprecationWarning`; pass ``config=ExecutionConfig(...)`` instead.

The per-cell task function is a module-level callable fed plain picklable
values (the scenario itself is a frozen dataclass of frozen dataclasses), so
it works under both fork and spawn start methods; monitor automata are
rebuilt lazily per worker through the ``case_study_monitor`` cache, and
asyncio cells spin a fresh event loop inside the worker.
"""

from __future__ import annotations

import math
import statistics
import warnings
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..coordination import TOPOLOGIES
from ..faults import FaultPlan
from ..scenarios import GridPoint, Scenario, SweepGrid, get_scenario
from ..sim.runner import simulate_monitored_run
from ..sim.workload import generate_computation
from .properties import PROPERTY_NAMES, case_study_monitor, case_study_registry

__all__ = [
    "BACKENDS",
    "ExecutionConfig",
    "trace_design",
    "run_scenario_cell",
    "execute_points",
    "execute_sweep",
    "run_scenario",
]

#: the monitoring backends a sweep cell can execute on
BACKENDS = ("sim", "asyncio", "cluster")


@dataclass(frozen=True)
class ExecutionConfig:
    """How sweep cells execute: backend, transport, faults, cluster layout.

    One frozen, picklable value threaded through every engine entrypoint
    (and across the sharding process pool) instead of loose keyword
    arguments.  Fields irrelevant to the chosen backend are ignored:
    ``stream_transport`` only matters to ``backend="asyncio"`` and
    ``manifest`` only to ``backend="cluster"``.

    Attributes
    ----------
    backend:
        ``"sim"``, ``"asyncio"`` or ``"cluster"`` (see :data:`BACKENDS`).
    stream_transport:
        Streaming medium of the asyncio backend: ``"memory"`` (in-process
        queues) or ``"tcp"`` (real loopback sockets).
    fault_plan:
        Optional :class:`repro.faults.FaultPlan` overriding the scenario's
        own fault model for every cell.
    manifest:
        Cluster backend only: a :class:`repro.cluster.ClusterManifest` or a
        manifest file path; ``None`` auto-allocates loopback workers.
    compiled_kernel:
        Step monitors with the compiled bitmask/dense-table kernel
        (:mod:`repro.ltl.compiled`).  Default on; the CLI exposes
        ``--no-compiled-kernel`` as the escape hatch.  Results are
        byte-identical either way — the flag only selects the stepping
        implementation.
    topology:
        Optional :mod:`repro.coordination` topology name overriding the
        scenario's own ``topology`` for every cell (the CLI's
        ``run --topology`` override); ``None`` defers to the scenario.
    """

    backend: str = "sim"
    stream_transport: str = "memory"
    fault_plan: FaultPlan | None = None
    manifest: object | None = None
    compiled_kernel: bool = True
    topology: str | None = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r} (known: {BACKENDS})"
            )
        if self.topology is not None and self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r} (known: {TOPOLOGIES})"
            )


def _resolve_config(
    config: ExecutionConfig | None,
    backend: str | None,
    stream_transport: str | None,
    fault_plan: FaultPlan | None,
) -> ExecutionConfig:
    """Fold the legacy keyword arguments into one :class:`ExecutionConfig`.

    Passing any legacy keyword emits a :class:`DeprecationWarning`; mixing
    them with an explicit *config* is an error (the call would be
    ambiguous).
    """
    legacy_used = (
        backend is not None or stream_transport is not None or fault_plan is not None
    )
    if config is not None:
        if legacy_used:
            raise TypeError(
                "pass either config=ExecutionConfig(...) or the legacy "
                "backend=/stream_transport=/fault_plan= keywords, not both"
            )
        return config
    if legacy_used:
        warnings.warn(
            "the backend=/stream_transport=/fault_plan= keyword arguments "
            "are deprecated; pass config=ExecutionConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return ExecutionConfig(
        backend=backend if backend is not None else "sim",
        stream_transport=stream_transport if stream_transport is not None else "memory",
        fault_plan=fault_plan,
    )


def trace_design(property_name: str) -> tuple[dict[str, bool], float]:
    """The paper's trace design for one property (Section 5.1).

    Traces keep the property "alive" for most of the run and reach a
    conclusive state near the end.  For the ``G(… U …)`` properties (A, C,
    D, F) the initial valuation satisfies the obligations and propositions
    are mostly true; for the ``F(…)`` properties (B, E) the target
    conjunction is rare until the forced all-true final events.
    """
    if property_name.upper() in ("B", "E"):
        return {"p": False, "q": False}, 0.3
    return {"p": True, "q": True}, 0.85


class _ScaleLike:
    """Structural subset of ``ExperimentScale`` the engine relies on.

    Typed loosely (not a Protocol instance check) to avoid a circular import
    with :mod:`repro.experiments.harness`, where the real dataclass lives.
    """

    process_counts: tuple[int, ...]
    events_per_process: int
    replications: int
    evt_mu: float
    evt_sigma: float
    comm_mu: float | None
    comm_sigma: float
    base_seed: int
    max_views_per_state: int | None
    workers: int


def run_scenario_cell(
    scenario: Scenario,
    point: GridPoint,
    scale: _ScaleLike,
    seed: int,
    backend: str | None = None,
    stream_transport: str | None = None,
    fault_plan: FaultPlan | None = None,
    *,
    config: ExecutionConfig | None = None,
) -> dict[str, float]:
    """Run one (sweep-point, replication) cell and return its slim metrics.

    ``config.backend`` selects the executor: ``"sim"`` replays the cell on
    the discrete-event simulator, ``"asyncio"`` streams it through
    concurrent monitor tasks (:func:`repro.runtime.runner.run_streaming`)
    over ``config.stream_transport``, with the scenario's network condition
    mapped onto the streaming transport via
    :meth:`repro.scenarios.NetworkModel.delay_model`, and ``"cluster"``
    runs it across one OS process per monitor via
    :func:`repro.cluster.cluster_monitored_run` (the scenario must be a
    registered one, since workers resolve it by name).

    Monitor faults come from ``config.fault_plan`` when given (the CLI's
    ``run --fault-plan`` override), otherwise from the scenario's own
    :class:`~repro.faults.FaultModel`, which derives one deterministic
    crash schedule per cell from the cell's seed.
    """
    config = _resolve_config(config, backend, stream_transport, fault_plan)
    comm_mu = scale.comm_mu if point.comm_mu == "default" else point.comm_mu
    topology = config.topology if config.topology is not None else scenario.topology
    faults = config.fault_plan
    if faults is None and scenario.faults is not None:
        faults = scenario.faults.build(
            point.num_processes, scale.events_per_process, seed
        )
    if config.backend == "cluster":
        from ..cluster.coordinator import cluster_monitored_run
        from ..cluster.spec import spec_for_cell

        try:
            registered = get_scenario(scenario.name)
        except KeyError:
            raise ValueError(
                f"the cluster backend needs a registered scenario (workers "
                f"resolve it by name), but {scenario.name!r} is not in the "
                f"registry"
            ) from None
        if registered != scenario:
            raise ValueError(
                f"scenario {scenario.name!r} differs from the registered "
                f"scenario of that name; the cluster backend distributes "
                f"scenarios by name, so register your variant first"
            )
        spec = spec_for_cell(
            scenario.name,
            point.property_name,
            point.num_processes,
            scale.events_per_process,
            scale.evt_mu,
            scale.evt_sigma,
            comm_mu,
            scale.comm_sigma,
            seed,
            scale.max_views_per_state,
            faults,
            compiled_kernel=config.compiled_kernel,
            topology=topology,
        )
        report = cluster_monitored_run(spec, manifest=config.manifest)
        return _cell_metrics(report)
    initial_valuation, truth_probability = trace_design(point.property_name)
    workload_config = scenario.workload.build_config(
        num_processes=point.num_processes,
        events_per_process=scale.events_per_process,
        evt_mu=scale.evt_mu,
        evt_sigma=scale.evt_sigma,
        comm_mu=comm_mu,
        comm_sigma=scale.comm_sigma,
        truth_probability=truth_probability,
        initial_valuation=dict(initial_valuation),
        seed=seed,
    )
    registry = case_study_registry(point.num_processes)
    automaton = case_study_monitor(point.property_name, point.num_processes)
    computation = generate_computation(workload_config)
    if config.backend == "sim":
        report = simulate_monitored_run(
            computation,
            automaton,
            registry,
            seed=seed,
            max_views_per_state=scale.max_views_per_state,
            network=scenario.network,
            faults=faults,
            compiled_kernel=config.compiled_kernel,
            topology=topology,
        )
    else:  # "asyncio" — ExecutionConfig validated the backend already
        from ..runtime.runner import run_streaming

        report = run_streaming(
            computation,
            automaton,
            registry,
            delay=scenario.network.delay_model(seed),
            max_views_per_state=scale.max_views_per_state,
            transport=config.stream_transport,
            faults=faults,
            compiled_kernel=config.compiled_kernel,
            topology=topology,
        )
    return _cell_metrics(report)


def _cell_metrics(report) -> dict[str, float]:
    """Extract the slim backend-agnostic metrics row of one cell report."""
    metrics = {
        "events": float(report.total_events),
        "messages": float(report.monitor_messages),
        "token_messages": float(report.token_messages),
        "termination_messages": float(report.termination_messages),
        "digest_messages": float(getattr(report, "digest_messages", 0)),
        "global_views": float(report.total_global_views),
        "delayed_events": float(report.delayed_events),
        "delay_time_pct_per_view": report.delay_time_percentage_per_view,
    }
    metrics.update(report.network_stats)
    metrics.update(report.fault_stats)
    return metrics


def _run_cell(
    task: tuple[Scenario | str, GridPoint, _ScaleLike, int, ExecutionConfig],
) -> dict[str, float]:
    """Process-pool task: resolve the scenario (by value or name) and run."""
    scenario, point, scale, seed, config = task
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    return run_scenario_cell(scenario, point, scale, seed, config=config)


def _mean(values: Iterable[float]) -> float:
    values = list(values)
    return statistics.fmean(values) if values else 0.0


def _aggregate(point: GridPoint, cells: Sequence[dict[str, float]]) -> dict[str, float]:
    """Average the replications of one point into a result row."""
    keys: list[str] = []
    for cell in cells:
        for key in cell:
            if key not in keys:
                keys.append(key)
    row: dict[str, float] = {
        "property": point.property_name,
        "processes": point.num_processes,
    }
    for key in keys:
        row[key] = _mean(cell[key] for cell in cells if key in cell)
    row["log_events"] = math.log10(max(1.0, row.get("events", 0.0)))
    row["log_messages"] = math.log10(max(1.0, row.get("messages", 0.0)))
    if point.comm_mu != "default":
        row["comm_mu"] = point.comm_mu if point.comm_mu is not None else "no-comm"
    return row


def execute_points(
    scenario: Scenario,
    points: Sequence[GridPoint],
    scale: _ScaleLike,
    pool: ProcessPoolExecutor | None = None,
    backend: str | None = None,
    stream_transport: str | None = None,
    fault_plan: FaultPlan | None = None,
    *,
    config: ExecutionConfig | None = None,
) -> list[dict[str, float]]:
    """Run every (point × replication) cell of *scenario* and aggregate.

    This is the sharding heart of the engine: the full cell product — not
    just the replications of one point — is mapped over the pool, so a sweep
    with P points and R replications keeps ``min(P*R, workers)`` workers
    busy.  Cell seeds are ``base_seed + 31*replication + point.seed_offset``
    (the scheme the pre-scenario harness used), so results are byte-identical
    to a serial run and to earlier releases.  *config* selects the per-cell
    executor — see :func:`run_scenario_cell`.
    """
    config = _resolve_config(config, backend, stream_transport, fault_plan)
    replications = max(1, scale.replications)
    cells = [
        (
            scenario,
            point,
            scale,
            scale.base_seed + 31 * rep + point.seed_offset,
            config,
        )
        for point in points
        for rep in range(replications)
    ]
    if pool is not None:
        results = list(pool.map(_run_cell, cells))
    elif scale.workers > 1 and len(cells) > 1:
        workers = min(scale.workers, len(cells))
        with ProcessPoolExecutor(max_workers=workers) as fresh_pool:
            results = list(fresh_pool.map(_run_cell, cells))
    else:
        results = [_run_cell(cell) for cell in cells]
    return [
        _aggregate(point, results[i * replications : (i + 1) * replications])
        for i, point in enumerate(points)
    ]


def execute_sweep(
    scenario: Scenario,
    scale: _ScaleLike,
    grid: SweepGrid | None = None,
    pool: ProcessPoolExecutor | None = None,
    backend: str | None = None,
    stream_transport: str | None = None,
    fault_plan: FaultPlan | None = None,
    *,
    config: ExecutionConfig | None = None,
) -> list[dict[str, float]]:
    """Expand *grid* (default: the scenario's own) and run every cell."""
    config = _resolve_config(config, backend, stream_transport, fault_plan)
    grid = grid if grid is not None else scenario.grid
    points = grid.points(PROPERTY_NAMES, scale.process_counts)
    return execute_points(scenario, points, scale, pool=pool, config=config)


def run_scenario(
    scenario: Scenario | str,
    scale: _ScaleLike,
    grid: SweepGrid | None = None,
    backend: str | None = None,
    stream_transport: str | None = None,
    fault_plan: FaultPlan | None = None,
    *,
    config: ExecutionConfig | None = None,
) -> list[dict[str, float]]:
    """Run a scenario (by value or registered name) over its sweep grid."""
    config = _resolve_config(config, backend, stream_transport, fault_plan)
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    return execute_sweep(scenario, scale, grid=grid, config=config)
