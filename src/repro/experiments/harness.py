"""Experiment harness regenerating every table and figure of Chapter 5.

Each ``run_*`` function reproduces one artefact of the paper's evaluation and
returns plain Python data (lists of dict rows / series) so that the benchmark
targets in ``benchmarks/`` can both time them and print them.  The
:func:`format_table` helper renders rows the way the paper's tables read.

The default experiment scale (events per process, replications) is reduced
with respect to the iOS testbed so that the full suite runs in seconds on a
laptop; the scale can be raised through :class:`ExperimentScale` without
touching the harness logic.
"""

from __future__ import annotations

import math
import statistics
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..sim.runner import simulate_monitored_run
from ..sim.workload import WorkloadConfig, generate_computation
from .properties import (
    PROPERTY_NAMES,
    case_study_monitor,
    case_study_registry,
)

__all__ = [
    "ExperimentScale",
    "run_table_5_1",
    "run_fig_5_1",
    "run_fig_5_2_5_3",
    "run_monitoring_experiment",
    "run_fig_5_4_5_5",
    "run_fig_5_6",
    "run_fig_5_7",
    "run_fig_5_8",
    "run_fig_5_9",
    "format_table",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling how heavy the simulated experiments are."""

    process_counts: Tuple[int, ...] = (2, 3, 4, 5)
    events_per_process: int = 6
    replications: int = 2
    evt_mu: float = 3.0
    evt_sigma: float = 1.0
    comm_mu: Optional[float] = 3.0
    comm_sigma: float = 1.0
    base_seed: int = 2015
    #: per-state exploration budget of each monitor; the bounded setting
    #: reproduces the paper's lightweight behaviour on long workloads (the
    #: unbounded setting is used by the correctness test-suite instead).
    max_views_per_state: Optional[int] = 2
    #: worker processes used to run replications in parallel.  ``1`` (the
    #: default) runs everything in-process; any higher value fans the
    #: replications of each experiment point out to a
    #: :class:`concurrent.futures.ProcessPoolExecutor`.  Every replication
    #: derives its own RNG seed from ``base_seed``, so results are
    #: byte-identical regardless of the worker count.
    workers: int = 1


DEFAULT_SCALE = ExperimentScale()


# ---------------------------------------------------------------------------
# Table 5.1 and Fig 5.1: automaton transition counts
# ---------------------------------------------------------------------------
def run_table_5_1(
    process_counts: Sequence[int] = (2, 3, 4, 5),
    properties: Sequence[str] = PROPERTY_NAMES,
) -> List[Dict[str, object]]:
    """Number of transitions per automaton (Table 5.1)."""
    rows: List[Dict[str, object]] = []
    for name in properties:
        for n in process_counts:
            monitor = case_study_monitor(name, n)
            counts = monitor.transition_counts()
            rows.append(
                {
                    "property": name,
                    "processes": n,
                    "states": monitor.num_states,
                    "total": counts["total"],
                    "outgoing": counts["outgoing"],
                    "self_loops": counts["self_loops"],
                }
            )
    return rows


def run_fig_5_1(
    process_counts: Sequence[int] = (2, 3, 4, 5),
    properties: Sequence[str] = PROPERTY_NAMES,
) -> Dict[str, Dict[str, List[int]]]:
    """Series for Fig 5.1a (all transitions) and Fig 5.1b (outgoing only)."""
    table = run_table_5_1(process_counts, properties)
    all_series: Dict[str, List[int]] = {name: [] for name in properties}
    outgoing_series: Dict[str, List[int]] = {name: [] for name in properties}
    for row in table:
        all_series[row["property"]].append(row["total"])
        outgoing_series[row["property"]].append(row["outgoing"])
    return {"all_transitions": all_series, "outgoing_transitions": outgoing_series}


def run_fig_5_2_5_3(num_processes: int = 2) -> Dict[str, str]:
    """Textual rendering of the monitor automata shown in Figures 5.2/5.3."""
    return {
        name: case_study_monitor(name, num_processes).describe()
        for name in ("A", "B", "D", "E", "F")
    }


# ---------------------------------------------------------------------------
# Simulated monitoring experiments (Figures 5.4 – 5.9)
# ---------------------------------------------------------------------------
def _replication_metrics(
    args: Tuple[str, int, Optional[float], int, float, float, float, float,
                Mapping[str, bool], Optional[int], int],
) -> Dict[str, float]:
    """Run one replication and return its slim metric record.

    Module-level (and fed plain picklable arguments) so it can serve as the
    task function of a :class:`~concurrent.futures.ProcessPoolExecutor`;
    the monitor automata are rebuilt lazily per worker process through the
    ``case_study_monitor`` cache.
    """
    (
        property_name,
        num_processes,
        comm_mu,
        events_per_process,
        evt_mu,
        evt_sigma,
        comm_sigma,
        truth_probability,
        initial_valuation,
        max_views_per_state,
        seed,
    ) = args
    registry = case_study_registry(num_processes)
    automaton = case_study_monitor(property_name, num_processes)
    config = WorkloadConfig(
        num_processes=num_processes,
        events_per_process=events_per_process,
        evt_mu=evt_mu,
        evt_sigma=evt_sigma,
        comm_mu=comm_mu,
        comm_sigma=comm_sigma,
        truth_probability=truth_probability,
        initial_valuation=dict(initial_valuation),
        seed=seed,
    )
    computation = generate_computation(config)
    report = simulate_monitored_run(
        computation,
        automaton,
        registry,
        seed=config.seed,
        max_views_per_state=max_views_per_state,
    )
    return {
        "events": float(report.total_events),
        "messages": float(report.monitor_messages),
        "token_messages": float(report.token_messages),
        "global_views": float(report.total_global_views),
        "delayed_events": float(report.delayed_events),
        "delay_time_pct_per_view": report.delay_time_percentage_per_view,
    }


def run_monitoring_experiment(
    property_name: str,
    num_processes: int,
    scale: ExperimentScale = DEFAULT_SCALE,
    comm_mu: Optional[float] = "default",
    seed_offset: int = 0,
    pool: Optional[ProcessPoolExecutor] = None,
) -> Dict[str, float]:
    """Run the monitored workload for one (property, process-count) point.

    Replicates the experiment ``scale.replications`` times with different
    trace seeds (as in Section 5.3, which averages three replications) and
    returns the averaged metrics.  With ``scale.workers > 1`` the
    replications run in a process pool; each replication's RNG seed is a
    pure function of ``scale.base_seed`` and its index, so the averaged
    metrics are byte-identical to a serial run.  Sweeps calling this for
    many points can pass a shared *pool* to amortise worker start-up (see
    :func:`run_fig_5_4_5_5`); without one, a pool is created per call.
    """
    if comm_mu == "default":
        comm_mu = scale.comm_mu
    # Trace design (Section 5.1): traces keep the property "alive" for most of
    # the run and reach a conclusive state near the end.  For the G(… U …)
    # properties (A, C, D, F) the initial valuation satisfies the obligations
    # and propositions are mostly true; for the F(…) properties (B, E) the
    # target conjunction is rare until the forced all-true final events.
    if property_name.upper() in ("B", "E"):
        initial_valuation = {"p": False, "q": False}
        truth_probability = 0.3
    else:
        initial_valuation = {"p": True, "q": True}
        truth_probability = 0.85
    tasks = [
        (
            property_name,
            num_processes,
            comm_mu,
            scale.events_per_process,
            scale.evt_mu,
            scale.evt_sigma,
            scale.comm_sigma,
            truth_probability,
            initial_valuation,
            scale.max_views_per_state,
            scale.base_seed + 31 * replication + seed_offset,
        )
        for replication in range(scale.replications)
    ]
    workers = max(1, min(scale.workers, len(tasks)))
    if pool is not None:
        reports = list(pool.map(_replication_metrics, tasks))
    elif workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as fresh_pool:
            reports = list(fresh_pool.map(_replication_metrics, tasks))
    else:
        reports = [_replication_metrics(task) for task in tasks]

    def mean(values: Iterable[float]) -> float:
        values = list(values)
        return statistics.fmean(values) if values else 0.0

    return {
        "property": property_name,
        "processes": num_processes,
        "events": mean(r["events"] for r in reports),
        "messages": mean(r["messages"] for r in reports),
        "token_messages": mean(r["token_messages"] for r in reports),
        "global_views": mean(r["global_views"] for r in reports),
        "delayed_events": mean(r["delayed_events"] for r in reports),
        "delay_time_pct_per_view": mean(
            r["delay_time_pct_per_view"] for r in reports
        ),
        "log_events": math.log10(max(1.0, mean(r["events"] for r in reports))),
        "log_messages": math.log10(max(1.0, mean(r["messages"] for r in reports))),
    }


def run_fig_5_4_5_5(
    properties: Sequence[str] = PROPERTY_NAMES,
    scale: ExperimentScale = DEFAULT_SCALE,
) -> List[Dict[str, float]]:
    """Messages overhead vs. number of processes for all properties.

    Figure 5.4 plots properties A–C, Figure 5.5 properties D–F; both use the
    same experiment, so a single sweep covers them.  With
    ``scale.workers > 1`` one process pool is shared by every point of the
    sweep, so worker start-up (and, on spawn-based platforms, automaton
    reconstruction) is paid once instead of per point.
    """
    points = [(name, n) for name in properties for n in scale.process_counts]
    if scale.workers > 1 and points:
        with ProcessPoolExecutor(max_workers=scale.workers) as pool:
            return [
                run_monitoring_experiment(name, n, scale, pool=pool)
                for name, n in points
            ]
    return [run_monitoring_experiment(name, n, scale) for name, n in points]


def run_fig_5_6(
    properties: Sequence[str] = PROPERTY_NAMES,
    scale: ExperimentScale = DEFAULT_SCALE,
) -> List[Dict[str, float]]:
    """Delay-time percentage per global view vs. process count (Fig 5.6)."""
    return [
        {
            "property": row["property"],
            "processes": row["processes"],
            "delay_time_pct_per_view": row["delay_time_pct_per_view"],
        }
        for row in run_fig_5_4_5_5(properties, scale)
    ]


def run_fig_5_7(
    properties: Sequence[str] = PROPERTY_NAMES,
    scale: ExperimentScale = DEFAULT_SCALE,
) -> List[Dict[str, float]]:
    """Average delayed (queued) events vs. process count (Fig 5.7)."""
    return [
        {
            "property": row["property"],
            "processes": row["processes"],
            "delayed_events": row["delayed_events"],
        }
        for row in run_fig_5_4_5_5(properties, scale)
    ]


def run_fig_5_8(
    properties: Sequence[str] = PROPERTY_NAMES,
    scale: ExperimentScale = DEFAULT_SCALE,
) -> List[Dict[str, float]]:
    """Total global views created vs. process count (Fig 5.8)."""
    return [
        {
            "property": row["property"],
            "processes": row["processes"],
            "global_views": row["global_views"],
        }
        for row in run_fig_5_4_5_5(properties, scale)
    ]


def run_fig_5_9(
    comm_mus: Sequence[Optional[float]] = (3.0, 6.0, 9.0, 15.0, None),
    num_processes: int = 4,
    property_name: str = "C",
    scale: ExperimentScale = DEFAULT_SCALE,
) -> List[Dict[str, float]]:
    """Effect of the communication frequency (Fig 5.9).

    Runs property C with 4 processes while varying ``Commμ``; ``None`` is the
    no-communication configuration.
    """
    rows = []
    for index, comm_mu in enumerate(comm_mus):
        row = run_monitoring_experiment(
            property_name,
            num_processes,
            scale,
            comm_mu=comm_mu,
            seed_offset=1000 * index,
        )
        row["comm_mu"] = comm_mu if comm_mu is not None else "no-comm"
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# formatting
# ---------------------------------------------------------------------------
def format_table(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_fmt(row.get(column))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
