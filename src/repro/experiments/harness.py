"""Experiment harness regenerating every table and figure of Chapter 5.

Each ``run_*`` function reproduces one artefact of the paper's evaluation and
returns plain Python data (lists of dict rows / series) so that the benchmark
targets in ``benchmarks/`` can both time them and print them.  Since the
scenario-engine refactor every simulated artefact is a *declaration* — the
``paper-default`` :class:`~repro.scenarios.Scenario` plus a
:class:`~repro.scenarios.SweepGrid` — executed by the generic sharded engine
of :mod:`repro.experiments.engine`; other conditions (lossy links,
partitions, bursty traffic, hot-proposition skew) are one
:func:`~repro.experiments.engine.run_scenario` call away.

The default experiment scale (events per process, replications) is reduced
with respect to the iOS testbed so that the full suite runs in seconds on a
laptop; the scale can be raised through :class:`ExperimentScale` without
touching the harness logic.
"""

from __future__ import annotations

from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..scenarios import GridPoint, SweepGrid, get_scenario
from .engine import execute_points, execute_sweep, run_scenario
from .properties import PROPERTY_NAMES, case_study_monitor

__all__ = [
    "ExperimentScale",
    "run_table_5_1",
    "run_fig_5_1",
    "run_fig_5_2_5_3",
    "run_monitoring_experiment",
    "run_fig_5_4_5_5",
    "run_fig_5_6",
    "run_fig_5_7",
    "run_fig_5_8",
    "run_fig_5_9",
    "run_topology_frontier",
    "run_scenario",
    "format_table",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling how heavy the simulated experiments are."""

    process_counts: tuple[int, ...] = (2, 3, 4, 5)
    events_per_process: int = 6
    replications: int = 2
    evt_mu: float = 3.0
    evt_sigma: float = 1.0
    comm_mu: float | None = 3.0
    comm_sigma: float = 1.0
    base_seed: int = 2015
    #: per-state exploration budget of each monitor; the bounded setting
    #: reproduces the paper's lightweight behaviour on long workloads (the
    #: unbounded setting is used by the correctness test-suite instead).
    max_views_per_state: int | None = 2
    #: worker processes used to shard sweep execution.  ``1`` (the default)
    #: runs everything in-process; any higher value fans the full
    #: (sweep-point × replication) cell product out to a
    #: :class:`concurrent.futures.ProcessPoolExecutor`.  Every cell derives
    #: its own RNG seed from ``base_seed``, so results are byte-identical
    #: regardless of the worker count.
    workers: int = 1


DEFAULT_SCALE = ExperimentScale()


# ---------------------------------------------------------------------------
# Table 5.1 and Fig 5.1: automaton transition counts
# ---------------------------------------------------------------------------
def run_table_5_1(
    process_counts: Sequence[int] = (2, 3, 4, 5),
    properties: Sequence[str] = PROPERTY_NAMES,
) -> list[dict[str, object]]:
    """Number of transitions per automaton (Table 5.1)."""
    rows: list[dict[str, object]] = []
    for name in properties:
        for n in process_counts:
            monitor = case_study_monitor(name, n)
            counts = monitor.transition_counts()
            rows.append(
                {
                    "property": name,
                    "processes": n,
                    "states": monitor.num_states,
                    "total": counts["total"],
                    "outgoing": counts["outgoing"],
                    "self_loops": counts["self_loops"],
                }
            )
    return rows


def run_fig_5_1(
    process_counts: Sequence[int] = (2, 3, 4, 5),
    properties: Sequence[str] = PROPERTY_NAMES,
) -> dict[str, dict[str, list[int]]]:
    """Series for Fig 5.1a (all transitions) and Fig 5.1b (outgoing only)."""
    table = run_table_5_1(process_counts, properties)
    all_series: dict[str, list[int]] = {name: [] for name in properties}
    outgoing_series: dict[str, list[int]] = {name: [] for name in properties}
    for row in table:
        all_series[row["property"]].append(row["total"])
        outgoing_series[row["property"]].append(row["outgoing"])
    return {"all_transitions": all_series, "outgoing_transitions": outgoing_series}


def run_fig_5_2_5_3(num_processes: int = 2) -> dict[str, str]:
    """Textual rendering of the monitor automata shown in Figures 5.2/5.3."""
    return {
        name: case_study_monitor(name, num_processes).describe()
        for name in ("A", "B", "D", "E", "F")
    }


# ---------------------------------------------------------------------------
# Simulated monitoring experiments (Figures 5.4 – 5.9)
# ---------------------------------------------------------------------------
def run_monitoring_experiment(
    property_name: str,
    num_processes: int,
    scale: ExperimentScale = DEFAULT_SCALE,
    comm_mu: float | None | str = "default",
    seed_offset: int = 0,
    pool: ProcessPoolExecutor | None = None,
    scenario: str = "paper-default",
) -> dict[str, float]:
    """Run the monitored workload for one (property, process-count) point.

    Replicates the experiment ``scale.replications`` times with different
    trace seeds (as in Section 5.3, which averages three replications) and
    returns the averaged metrics.  A thin wrapper over the scenario engine:
    the point runs under *scenario* (default: the paper's own condition) and
    with ``scale.workers > 1`` its replications shard over a process pool,
    byte-identically to a serial run.
    """
    point = GridPoint(property_name, num_processes, comm_mu, seed_offset)
    return execute_points(get_scenario(scenario), [point], scale, pool=pool)[0]


def run_fig_5_4_5_5(
    properties: Sequence[str] = PROPERTY_NAMES,
    scale: ExperimentScale = DEFAULT_SCALE,
) -> list[dict[str, float]]:
    """Messages overhead vs. number of processes for all properties.

    Figure 5.4 plots properties A–C, Figure 5.5 properties D–F; both use the
    same experiment, so a single sweep covers them.  With
    ``scale.workers > 1`` the engine shards the full
    (property × process-count × replication) cell product across one process
    pool, keeping every worker busy for the whole sweep.
    """
    grid = SweepGrid(properties=tuple(properties))
    return execute_sweep(get_scenario("paper-default"), scale, grid=grid)


def run_fig_5_6(
    properties: Sequence[str] = PROPERTY_NAMES,
    scale: ExperimentScale = DEFAULT_SCALE,
) -> list[dict[str, float]]:
    """Delay-time percentage per global view vs. process count (Fig 5.6)."""
    return [
        {
            "property": row["property"],
            "processes": row["processes"],
            "delay_time_pct_per_view": row["delay_time_pct_per_view"],
        }
        for row in run_fig_5_4_5_5(properties, scale)
    ]


def run_fig_5_7(
    properties: Sequence[str] = PROPERTY_NAMES,
    scale: ExperimentScale = DEFAULT_SCALE,
) -> list[dict[str, float]]:
    """Average delayed (queued) events vs. process count (Fig 5.7)."""
    return [
        {
            "property": row["property"],
            "processes": row["processes"],
            "delayed_events": row["delayed_events"],
        }
        for row in run_fig_5_4_5_5(properties, scale)
    ]


def run_fig_5_8(
    properties: Sequence[str] = PROPERTY_NAMES,
    scale: ExperimentScale = DEFAULT_SCALE,
) -> list[dict[str, float]]:
    """Total global views created vs. process count (Fig 5.8)."""
    return [
        {
            "property": row["property"],
            "processes": row["processes"],
            "global_views": row["global_views"],
        }
        for row in run_fig_5_4_5_5(properties, scale)
    ]


def run_fig_5_9(
    comm_mus: Sequence[float | None] = (3.0, 6.0, 9.0, 15.0, None),
    num_processes: int = 4,
    property_name: str = "C",
    scale: ExperimentScale = DEFAULT_SCALE,
) -> list[dict[str, float]]:
    """Effect of the communication frequency (Fig 5.9).

    Runs property C with 4 processes while varying ``Commμ``; ``None`` is the
    no-communication configuration.  Declared as a one-property grid with a
    ``comm_mus`` axis, so the engine shards its (Commμ × replication) cells
    just like any other sweep.
    """
    grid = SweepGrid(
        properties=(property_name,),
        process_counts=(num_processes,),
        comm_mus=tuple(comm_mus),
    )
    return execute_sweep(get_scenario("paper-default"), scale, grid=grid)


# ---------------------------------------------------------------------------
# Topology frontier (extension beyond the paper's evaluation)
# ---------------------------------------------------------------------------
def run_topology_frontier(
    properties: Sequence[str] = ("B", "C"),
    num_processes: int = 4,
    scale: ExperimentScale = DEFAULT_SCALE,
    topologies: Sequence[str] | None = None,
    include_centralized: bool = True,
) -> list[dict[str, object]]:
    """Message count vs. verdict latency across coordination topologies.

    Replays the paper-default workload at one system size through every
    registered :mod:`repro.coordination` topology on the simulator and
    returns one row per (topology, property) with the averaged message
    decomposition (token / termination / digest), the virtual-time instant
    the monitors went quiescent (the verdict-latency proxy
    ``verdict_latency``) and the declared verdicts.  With
    *include_centralized* a per-property ``centralized`` baseline row —
    observation deliveries plus the verdict broadcast of the oracle — pins
    the frontier's lower-left corner.  Replications and seeds follow the
    engine's scheme (``base_seed + 31*replication``) so rows are
    deterministic and comparable across sessions; the benchmark suite
    feeds these rows into the ``topology_messages_total`` /
    ``topology_verdict_latency`` artifact entries.
    """
    from ..coordination import topology_names
    from ..core.centralized import CentralizedMonitor
    from ..sim.runner import simulate_monitored_run
    from ..sim.workload import generate_computation
    from .engine import trace_design
    from .properties import case_study_registry

    chosen = tuple(topologies) if topologies is not None else tuple(topology_names())
    replications = max(1, scale.replications)
    scenario = get_scenario("paper-default")
    rows: list[dict[str, object]] = []
    for property_name in properties:
        initial_valuation, truth_probability = trace_design(property_name)
        registry = case_study_registry(num_processes)
        automaton = case_study_monitor(property_name, num_processes)
        computations = []
        for rep in range(replications):
            seed = scale.base_seed + 31 * rep
            config = scenario.workload.build_config(
                num_processes=num_processes,
                events_per_process=scale.events_per_process,
                evt_mu=scale.evt_mu,
                evt_sigma=scale.evt_sigma,
                comm_mu=scale.comm_mu,
                comm_sigma=scale.comm_sigma,
                truth_probability=truth_probability,
                initial_valuation=dict(initial_valuation),
                seed=seed,
            )
            computations.append((seed, generate_computation(config)))
        for topology in chosen:
            reports = [
                simulate_monitored_run(
                    computation,
                    automaton,
                    registry,
                    seed=seed,
                    max_views_per_state=scale.max_views_per_state,
                    network=scenario.network,
                    topology=topology,
                )
                for seed, computation in computations
            ]
            declared: set[str] = set()
            for report in reports:
                declared |= {str(v) for v in report.declared_verdicts}
            rows.append(
                {
                    "topology": topology,
                    "property": property_name,
                    "processes": num_processes,
                    "messages": _avg(r.monitor_messages for r in reports),
                    "token_messages": _avg(r.token_messages for r in reports),
                    "termination_messages": _avg(
                        r.termination_messages for r in reports
                    ),
                    "digest_messages": _avg(r.digest_messages for r in reports),
                    "verdict_latency": _avg(r.monitor_end_time for r in reports),
                    "declared": "".join(sorted(declared)) or "-",
                }
            )
        if include_centralized:
            results = [
                CentralizedMonitor.monitor_computation(
                    computation, automaton, registry
                )
                for _, computation in computations
            ]
            rows.append(
                {
                    "topology": "centralized",
                    "property": property_name,
                    "processes": num_processes,
                    "messages": _avg(r.total_messages for r in results),
                    "token_messages": 0.0,
                    "termination_messages": 0.0,
                    "digest_messages": _avg(
                        r.verdict_broadcast_messages for r in results
                    ),
                    # every observation is delivered as it happens; the
                    # oracle has no monitor-side settling time to speak of
                    "verdict_latency": 0.0,
                    "declared": "".join(
                        sorted({str(v) for r in results for v in r.verdicts})
                    )
                    or "-",
                }
            )
    return rows


def _avg(values) -> float:
    """Arithmetic mean of an iterable of numbers (0.0 when empty)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


# ---------------------------------------------------------------------------
# formatting
# ---------------------------------------------------------------------------
def format_table(
    rows: Sequence[dict[str, object]], columns: Sequence[str] | None = None
) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_fmt(row.get(column))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
