"""Scenarios and sweep grids: declarative experiment descriptions.

A :class:`Scenario` bundles a :class:`~repro.scenarios.workload.WorkloadModel`
(the trace shape) with a :class:`~repro.scenarios.network.NetworkModel` (the
monitor-network conditions) and a default :class:`SweepGrid` (which
(property, process-count, Commμ) points to run).  It contains *no* execution
logic — the generic engine in :mod:`repro.experiments.engine` expands the
grid into (point × replication) cells, derives one seed per cell and shards
the whole product across a process pool.

Everything here is a frozen dataclass of plain values, so scenarios pickle
cleanly into worker processes and render themselves into BENCH metadata via
:meth:`Scenario.describe`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..faults import FaultModel
from .network import NetworkModel
from .workload import WorkloadModel

__all__ = ["GridPoint", "SweepGrid", "Scenario", "DEFAULT_COMM_SEED_STRIDE"]

#: Seed offset between consecutive values of a ``comm_mus`` axis, preserved
#: from the original ``run_fig_5_9`` so sweep outputs stay byte-identical.
DEFAULT_COMM_SEED_STRIDE = 1000


@dataclass(frozen=True)
class GridPoint:
    """One cell coordinate of a sweep: a property at a system size.

    ``comm_mu`` is either the literal communication-frequency override for
    this point (``None`` meaning "no communication") or the string
    ``"default"``, which resolves to the sweep scale's ``comm_mu`` at run
    time.  ``seed_offset`` separates the RNG streams of points that would
    otherwise coincide (the Commμ axis of Fig. 5.9).
    """

    property_name: str
    num_processes: int
    comm_mu: float | None | str = "default"
    seed_offset: int = 0


@dataclass(frozen=True)
class SweepGrid:
    """The axes of a sweep; ``None`` axes fall back to scale defaults.

    ``properties`` defaults to the six case-study properties A–F,
    ``process_counts`` to ``scale.process_counts``, and ``comm_mus`` (when
    given) adds a communication-frequency axis whose points get staggered
    seed offsets, as in Fig. 5.9.
    """

    properties: tuple[str, ...] | None = None
    process_counts: tuple[int, ...] | None = None
    comm_mus: tuple[float | None, ...] | None = None
    comm_seed_stride: int = DEFAULT_COMM_SEED_STRIDE

    def points(
        self,
        default_properties: Sequence[str],
        default_process_counts: Sequence[int],
    ) -> list[GridPoint]:
        """Expand the grid into an ordered list of sweep points."""
        properties = self.properties or tuple(default_properties)
        counts = self.process_counts or tuple(default_process_counts)
        points: list[GridPoint] = []
        for name in properties:
            for n in counts:
                if self.comm_mus is None:
                    points.append(GridPoint(name, n))
                else:
                    for index, comm_mu in enumerate(self.comm_mus):
                        points.append(
                            GridPoint(
                                name,
                                n,
                                comm_mu,
                                seed_offset=self.comm_seed_stride * index,
                            )
                        )
        return points

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (axes, with ``"default"`` placeholders)."""
        return {
            "properties": list(self.properties) if self.properties else "default",
            "process_counts": (
                list(self.process_counts) if self.process_counts else "default"
            ),
            "comm_mus": list(self.comm_mus) if self.comm_mus is not None else None,
        }


@dataclass(frozen=True)
class Scenario:
    """A named, self-contained experiment condition.

    Purely declarative: the workload model shapes the traces, the network
    model shapes monitor communication, and the grid names the sweep points.
    Execution belongs to :func:`repro.experiments.engine.execute_sweep`.
    """

    name: str
    description: str
    workload: WorkloadModel
    network: NetworkModel
    grid: SweepGrid = field(default_factory=SweepGrid)
    #: optional monitor-fault condition (a :class:`repro.faults.FaultModel`);
    #: the engine builds one concrete per-seed plan per sweep cell from it
    faults: FaultModel | None = None
    #: coordination topology routing the monitors' tokens and digests (a
    #: :mod:`repro.coordination` name); ``run --topology`` overrides it
    topology: str = "round-robin-token"
    tags: tuple[str, ...] = ()
    #: which paper artefact this condition reproduces, or which extension it
    #: is — rendered into ``docs/scenarios.md`` by :mod:`repro.scenarios.docgen`
    corresponds_to: str = "extension beyond the paper's evaluation"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a non-empty name")

    def describe(self) -> dict[str, object]:
        """Self-describing metadata for BENCH documents and the CLI."""
        return {
            "name": self.name,
            "description": self.description,
            "workload": self.workload.describe(),
            "network": self.network.describe(),
            "faults": self.faults.describe() if self.faults is not None else None,
            "topology": self.topology,
            "grid": self.grid.describe(),
            "tags": list(self.tags),
            "corresponds_to": self.corresponds_to,
        }
