"""Pluggable experiment scenarios: workload models x network models x grids.

This package opens the evaluation beyond the paper's single fixed condition
(normal-distributed traces over a reliable WiFi testbed).  A
:class:`Scenario` is a declarative value — a :class:`WorkloadModel` (trace
shape), a :class:`NetworkModel` (communication conditions) and a
:class:`SweepGrid` (which points to run) — executed by the generic sharded
sweep engine in :mod:`repro.experiments.engine`.

Public API
----------
* :class:`Scenario` / :class:`SweepGrid` / :class:`GridPoint` — declarative
  experiment descriptions.
* :class:`NetworkModel` protocol with :class:`ReliableNetwork`,
  :class:`FixedLatencyNetwork`, :class:`LossyNetwork`,
  :class:`PartitionNetwork`, :class:`BurstyNetwork`,
  :class:`AsymmetricNetwork` and :class:`MultiPartitionNetwork`.
* :class:`WorkloadModel` protocol with :class:`PaperWorkload`,
  :class:`HotPropositionWorkload` and :class:`BurstyCommWorkload`.
* :class:`repro.faults.FaultModel` (re-exported with
  :class:`ExplicitFaults`, :class:`SingleCrashFaults` and
  :class:`RollingCrashFaults`) — the optional ``faults`` condition of a
  scenario.
* :func:`register_scenario` / :func:`get_scenario` / :func:`list_scenarios`
  / :func:`scenario_names` — the registry (built-ins register on import).
"""

from ..faults import (
    ExplicitFaults,
    FaultModel,
    RollingCrashFaults,
    SingleCrashFaults,
)
from .network import (
    AsymmetricNetwork,
    BurstyNetwork,
    FixedLatencyNetwork,
    LossyNetwork,
    MultiPartitionNetwork,
    NetworkModel,
    PartitionNetwork,
    ReliableNetwork,
)
from .registry import (
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
)
from .scenario import GridPoint, Scenario, SweepGrid
from .workload import (
    BurstyCommWorkload,
    HotPropositionWorkload,
    PaperWorkload,
    WorkloadModel,
)

__all__ = [
    "Scenario",
    "SweepGrid",
    "GridPoint",
    "NetworkModel",
    "ReliableNetwork",
    "FixedLatencyNetwork",
    "LossyNetwork",
    "PartitionNetwork",
    "BurstyNetwork",
    "AsymmetricNetwork",
    "MultiPartitionNetwork",
    "FaultModel",
    "ExplicitFaults",
    "SingleCrashFaults",
    "RollingCrashFaults",
    "WorkloadModel",
    "PaperWorkload",
    "HotPropositionWorkload",
    "BurstyCommWorkload",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
]
