"""Render the scenario catalogue into ``docs/scenarios.md`` — and keep it true.

The scenario reference documentation is *generated-checked*: the catalogue
section of ``docs/scenarios.md`` between :data:`BEGIN_MARKER` and
:data:`END_MARKER` is produced by :func:`render_catalogue` straight from the
live registry (:mod:`repro.scenarios.registry`), and a test asserts the file
matches the renderer's output, so the document cannot drift from the code.
After adding or changing a scenario, regenerate the section with::

    PYTHONPATH=src python -m repro.scenarios.docgen docs/scenarios.md

Everything rendered comes from :meth:`repro.scenarios.Scenario.describe`:
the workload and network model kinds with their parameters, the sweep grid,
the tags, and ``corresponds_to`` — which paper figure/table the condition
reproduces or which extension it is.
"""

from __future__ import annotations

import sys

from .registry import list_scenarios
from .scenario import Scenario

__all__ = [
    "BEGIN_MARKER",
    "END_MARKER",
    "render_catalogue",
    "replace_generated_section",
    "main",
]

BEGIN_MARKER = "<!-- BEGIN GENERATED SCENARIO CATALOGUE (repro.scenarios.docgen) -->"
END_MARKER = "<!-- END GENERATED SCENARIO CATALOGUE -->"


def _format_params(description: dict[str, object]) -> str:
    """Render a model description's parameters as ``key=value`` pairs."""
    pairs = [
        f"{key}={value!r}" for key, value in description.items() if key != "kind"
    ]
    return ", ".join(pairs) if pairs else "(defaults)"


def _render_scenario(scenario: Scenario) -> list[str]:
    """Markdown block for one scenario."""
    description = scenario.describe()
    workload = description["workload"]
    network = description["network"]
    grid = description["grid"]
    lines = [
        f"### `{scenario.name}`",
        "",
        scenario.description,
        "",
        f"- **Corresponds to:** {scenario.corresponds_to}",
        f"- **Workload:** `{workload['kind']}` — {_format_params(workload)}",
        f"- **Network:** `{network['kind']}` — {_format_params(network)}",
        f"- **Grid:** properties={grid['properties']!r}, "
        f"process_counts={grid['process_counts']!r}, comm_mus={grid['comm_mus']!r}",
        f"- **Tags:** {', '.join(scenario.tags) if scenario.tags else '(none)'}",
        "",
    ]
    return lines


def render_catalogue() -> str:
    """The generated catalogue section, markers included."""
    scenarios = list_scenarios()
    lines = [
        BEGIN_MARKER,
        "",
        f"{len(scenarios)} scenarios are registered (sorted by name).",
        "",
    ]
    for scenario in scenarios:
        lines.extend(_render_scenario(scenario))
    lines.append(END_MARKER)
    return "\n".join(lines)


def replace_generated_section(text: str) -> str:
    """Return *text* with the marked section replaced by a fresh rendering."""
    begin = text.index(BEGIN_MARKER)
    end = text.index(END_MARKER) + len(END_MARKER)
    return text[:begin] + render_catalogue() + text[end:]


def main(argv: list[str] | None = None) -> int:
    """Rewrite the generated section of the given markdown file in place."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.scenarios.docgen docs/scenarios.md", file=sys.stderr)
        return 2
    path = argv[0]
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    try:
        updated = replace_generated_section(text)
    except ValueError:
        print(f"error: {path} has no generated-section markers", file=sys.stderr)
        return 1
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(updated)
    print(f"regenerated scenario catalogue in {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
