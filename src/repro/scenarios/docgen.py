"""Render generated-checked catalogues into the docs — and keep them true.

Several reference sections are *generated-checked*: the scenario and
topology catalogues of ``docs/scenarios.md`` (between
:data:`BEGIN_MARKER`/:data:`END_MARKER` and
:data:`TOPOLOGY_BEGIN_MARKER`/:data:`TOPOLOGY_END_MARKER`), the
fault-scenario section of ``docs/faults.md``
(between :data:`FAULTS_BEGIN_MARKER` and :data:`FAULTS_END_MARKER`), and
the public API reference of ``docs/api.md`` (between
:data:`API_BEGIN_MARKER` and :data:`API_END_MARKER`), and the fleet
source/sink/backpressure catalogue of ``docs/fleet.md`` (between
:data:`FLEET_BEGIN_MARKER` and :data:`FLEET_END_MARKER`).  The catalogues are
produced straight from the live registries (:mod:`repro.scenarios.registry`,
:mod:`repro.coordination`, :mod:`repro.fleet`)
and the API reference from the live ``repro.api.__all__``; tests assert
each file matches the renderer's output, so the documents cannot drift
from the code.  After adding or changing a scenario or a public API name,
regenerate with::

    PYTHONPATH=src python -m repro.scenarios.docgen docs/scenarios.md
    PYTHONPATH=src python -m repro.scenarios.docgen docs/faults.md
    PYTHONPATH=src python -m repro.scenarios.docgen docs/api.md
    PYTHONPATH=src python -m repro.scenarios.docgen docs/fleet.md

``main`` replaces whichever marker pairs the given file contains.
Everything rendered comes from :meth:`repro.scenarios.Scenario.describe`:
the workload, network and fault model kinds with their parameters, the
sweep grid, the tags, and ``corresponds_to`` — which paper figure/table the
condition reproduces or which extension it is.
"""

from __future__ import annotations

import sys

from .registry import list_scenarios
from .scenario import Scenario

__all__ = [
    "BEGIN_MARKER",
    "END_MARKER",
    "FAULTS_BEGIN_MARKER",
    "FAULTS_END_MARKER",
    "ADVERSARIAL_BEGIN_MARKER",
    "ADVERSARIAL_END_MARKER",
    "API_BEGIN_MARKER",
    "API_END_MARKER",
    "TOPOLOGY_BEGIN_MARKER",
    "TOPOLOGY_END_MARKER",
    "FLEET_BEGIN_MARKER",
    "FLEET_END_MARKER",
    "render_catalogue",
    "render_fault_catalogue",
    "render_adversarial_catalogue",
    "render_api_reference",
    "render_topology_catalogue",
    "render_fleet_catalogue",
    "replace_generated_section",
    "main",
]

BEGIN_MARKER = "<!-- BEGIN GENERATED SCENARIO CATALOGUE (repro.scenarios.docgen) -->"
END_MARKER = "<!-- END GENERATED SCENARIO CATALOGUE -->"

FAULTS_BEGIN_MARKER = "<!-- BEGIN GENERATED FAULT CATALOGUE (repro.scenarios.docgen) -->"
FAULTS_END_MARKER = "<!-- END GENERATED FAULT CATALOGUE -->"

ADVERSARIAL_BEGIN_MARKER = (
    "<!-- BEGIN GENERATED ADVERSARIAL CATALOGUE (repro.scenarios.docgen) -->"
)
ADVERSARIAL_END_MARKER = "<!-- END GENERATED ADVERSARIAL CATALOGUE -->"

API_BEGIN_MARKER = "<!-- BEGIN GENERATED API REFERENCE (repro.scenarios.docgen) -->"
API_END_MARKER = "<!-- END GENERATED API REFERENCE -->"

TOPOLOGY_BEGIN_MARKER = (
    "<!-- BEGIN GENERATED TOPOLOGY CATALOGUE (repro.scenarios.docgen) -->"
)
TOPOLOGY_END_MARKER = "<!-- END GENERATED TOPOLOGY CATALOGUE -->"

FLEET_BEGIN_MARKER = "<!-- BEGIN GENERATED FLEET CATALOGUE (repro.scenarios.docgen) -->"
FLEET_END_MARKER = "<!-- END GENERATED FLEET CATALOGUE -->"


def _format_params(description: dict[str, object]) -> str:
    """Render a model description's parameters as ``key=value`` pairs."""
    pairs = [
        f"{key}={value!r}" for key, value in description.items() if key != "kind"
    ]
    return ", ".join(pairs) if pairs else "(defaults)"


def _render_scenario(scenario: Scenario) -> list[str]:
    """Markdown block for one scenario."""
    description = scenario.describe()
    workload = description["workload"]
    network = description["network"]
    faults = description["faults"]
    grid = description["grid"]
    lines = [
        f"### `{scenario.name}`",
        "",
        scenario.description,
        "",
        f"- **Corresponds to:** {scenario.corresponds_to}",
        f"- **Workload:** `{workload['kind']}` — {_format_params(workload)}",
        f"- **Network:** `{network['kind']}` — {_format_params(network)}",
    ]
    if faults is not None:
        lines.append(f"- **Faults:** `{faults['kind']}` — {_format_params(faults)}")
    lines.append(f"- **Topology:** `{description['topology']}`")
    lines.extend(
        [
            f"- **Grid:** properties={grid['properties']!r}, "
            f"process_counts={grid['process_counts']!r}, comm_mus={grid['comm_mus']!r}",
            f"- **Tags:** {', '.join(scenario.tags) if scenario.tags else '(none)'}",
            "",
        ]
    )
    return lines


def render_catalogue() -> str:
    """The generated catalogue section, markers included."""
    scenarios = list_scenarios()
    lines = [
        BEGIN_MARKER,
        "",
        f"{len(scenarios)} scenarios are registered (sorted by name).",
        "",
    ]
    for scenario in scenarios:
        lines.extend(_render_scenario(scenario))
    lines.append(END_MARKER)
    return "\n".join(lines)


def render_fault_catalogue() -> str:
    """The generated fault-scenario section of ``docs/faults.md``."""
    scenarios = [s for s in list_scenarios() if s.describe()["faults"] is not None]
    lines = [
        FAULTS_BEGIN_MARKER,
        "",
        f"{len(scenarios)} registered scenarios carry a fault model "
        "(sorted by name).",
        "",
    ]
    for scenario in scenarios:
        lines.extend(_render_scenario(scenario))
    lines.append(FAULTS_END_MARKER)
    return "\n".join(lines)


def render_adversarial_catalogue() -> str:
    """The generated adversarial-scenario section of ``docs/faults.md``.

    Adversarial scenarios are the ``adversarial``-tagged subset of the
    fault catalogue: Byzantine monitors, clock skew and node churn — the
    conditions that attack the paper's soundness claims rather than just
    its availability assumptions.
    """
    scenarios = [s for s in list_scenarios() if "adversarial" in s.tags]
    lines = [
        ADVERSARIAL_BEGIN_MARKER,
        "",
        f"{len(scenarios)} registered scenarios are adversarial "
        "(sorted by name).",
        "",
    ]
    for scenario in scenarios:
        lines.extend(_render_scenario(scenario))
    lines.append(ADVERSARIAL_END_MARKER)
    return "\n".join(lines)


def render_api_reference() -> str:
    """The generated name-by-name section of ``docs/api.md``.

    Rendered straight from the live ``repro.api.__all__`` — every listed
    name with its kind and the first line of its docstring — so the
    documented surface cannot drift from the code.
    """
    import inspect

    from .. import api

    lines = [
        API_BEGIN_MARKER,
        "",
        f"`repro.api.__all__` lists {len(api.__all__)} supported names.",
        "",
        "| name | kind | summary |",
        "| --- | --- | --- |",
    ]
    for name in api.__all__:
        obj = getattr(api, name)
        if inspect.isclass(obj):
            kind = "class"
        elif callable(obj):
            kind = "function"
        else:
            kind = "constant"
        if kind == "constant":
            summary = f"`{obj!r}`"
        else:
            doc = inspect.getdoc(obj) or ""
            summary = doc.splitlines()[0] if doc else ""
        lines.append(f"| `{name}` | {kind} | {summary} |")
    lines.extend(["", API_END_MARKER])
    return "\n".join(lines)


def render_topology_catalogue() -> str:
    """The generated topology section of ``docs/scenarios.md``.

    Rendered straight from the live :mod:`repro.coordination` registry —
    every topology name with its routing/termination/verdict policy from
    ``describe()`` — so the documented frontier cannot drift from the code.
    The instances are built at a nominal size; ``describe()`` is
    size-independent metadata.
    """
    from ..coordination import TOPOLOGIES, build_topology

    lines = [
        TOPOLOGY_BEGIN_MARKER,
        "",
        f"{len(TOPOLOGIES)} coordination topologies are registered "
        "(frontier order); select one with `run --topology NAME` or a "
        "scenario's `topology` field.",
        "",
        "| name | token routing | termination | verdicts |",
        "| --- | --- | --- | --- |",
    ]
    for name in TOPOLOGIES:
        meta = build_topology(name, 8).describe()
        lines.append(
            f"| `{meta['name']}` | {meta['routing']} | {meta['termination']} "
            f"| {meta['verdicts']} |"
        )
    lines.extend(["", TOPOLOGY_END_MARKER])
    return "\n".join(lines)


def render_fleet_catalogue() -> str:
    """The generated source/sink/backpressure section of ``docs/fleet.md``.

    Rendered straight from the live :mod:`repro.fleet` registries — the
    event-source kinds, the verdict-sink kinds and the backpressure
    policies, each with the first line of its docstring or its behaviour
    summary — so the operator guide cannot drift from the code.
    """
    import inspect

    from ..fleet import SINK_KINDS, SOURCE_KINDS, describe_backpressure

    def first_line(cls: type) -> str:
        doc = inspect.getdoc(cls) or ""
        return doc.splitlines()[0] if doc else ""

    lines = [
        FLEET_BEGIN_MARKER,
        "",
        f"{len(SOURCE_KINDS)} event sources drive tenant sessions "
        "(`TenantSpec.source`):",
        "",
        "| source | summary |",
        "| --- | --- |",
    ]
    for name, cls in SOURCE_KINDS.items():
        lines.append(f"| `{name}` | {first_line(cls)} |")
    lines.extend(
        [
            "",
            f"{len(SINK_KINDS)} verdict sinks receive per-tenant records "
            "(`run_fleet(..., sink=...)`, CLI `--sink`):",
            "",
            "| sink | summary |",
            "| --- | --- |",
        ]
    )
    for name, cls in SINK_KINDS.items():
        lines.append(f"| `{name}` | {first_line(cls)} |")
    policies = describe_backpressure()
    lines.extend(
        [
            "",
            f"{len(policies)} backpressure policies govern saturated tenant "
            "inboxes (`FleetConfig.backpressure`):",
            "",
            "| policy | behaviour | loss |",
            "| --- | --- | --- |",
        ]
    )
    for policy in policies:
        lines.append(
            f"| `{policy['name']}` | {policy['behaviour']} | {policy['loss']} |"
        )
    lines.extend(["", FLEET_END_MARKER])
    return "\n".join(lines)


#: every generated-checked section ``main`` knows how to refresh
_SECTIONS: tuple[tuple[str, str, object], ...] = (
    (BEGIN_MARKER, END_MARKER, render_catalogue),
    (FAULTS_BEGIN_MARKER, FAULTS_END_MARKER, render_fault_catalogue),
    (ADVERSARIAL_BEGIN_MARKER, ADVERSARIAL_END_MARKER, render_adversarial_catalogue),
    (API_BEGIN_MARKER, API_END_MARKER, render_api_reference),
    (TOPOLOGY_BEGIN_MARKER, TOPOLOGY_END_MARKER, render_topology_catalogue),
    (FLEET_BEGIN_MARKER, FLEET_END_MARKER, render_fleet_catalogue),
)


def replace_generated_section(
    text: str,
    begin_marker: str = BEGIN_MARKER,
    end_marker: str = END_MARKER,
    render=render_catalogue,
) -> str:
    """Return *text* with the marked section replaced by ``render()``'s output.

    Defaults to the scenario-catalogue markers; ``main`` reuses it for every
    marker pair of :data:`_SECTIONS`.
    """
    begin = text.index(begin_marker)
    end = text.index(end_marker) + len(end_marker)
    return text[:begin] + render() + text[end:]


def main(argv: list[str] | None = None) -> int:
    """Rewrite the generated sections of the given markdown file in place.

    Each marker pair present in the file (scenario catalogue, fault
    catalogue) is replaced by a fresh rendering; a file with no markers at
    all is an error.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print(
            "usage: python -m repro.scenarios.docgen "
            "docs/scenarios.md|docs/faults.md|docs/api.md|docs/fleet.md",
            file=sys.stderr,
        )
        return 2
    path = argv[0]
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    replaced = 0
    for begin_marker, end_marker, render in _SECTIONS:
        if begin_marker in text and end_marker in text:
            text = replace_generated_section(text, begin_marker, end_marker, render)
            replaced += 1
    if not replaced:
        print(f"error: {path} has no generated-section markers", file=sys.stderr)
        return 1
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"regenerated {replaced} catalogue section(s) in {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
