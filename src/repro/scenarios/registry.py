"""The scenario registry and the built-in scenario catalogue.

Scenarios are registered by name so the CLI (``run --scenario``,
``list-scenarios``) and the sweep engine can look them up, and so worker
processes of a sharded sweep can resolve a scenario from its pickled value
or name alike.  Importing :mod:`repro.scenarios` registers the built-ins:

==================  =====================================================
name                condition
==================  =====================================================
``paper-default``   the paper's workload on the reliable jittery network
``fixed-latency``   same workload, deterministic constant-latency links
``lossy-retransmit``  20% transmission loss with stop-and-wait retransmit
``partition-heal``  a network partition that heals mid-run
``bursty-comm``     comm-heavy workload bursts on a duty-cycled medium
``hot-spot``        hot-proposition skew on the reliable network
``no-comm``         the paper's "No comm" configuration as a scenario
``crash-restart-replay``  one monitor crashes and recovers its state journal
``crash-restart-rejoin``  one monitor crashes and rejoins from scratch
``crash-storm``     every monitor crashes once (rolling outage)
``asymmetric-mesh``  per-ordered-pair latency matrix (A→B ≠ B→A)
``multi-partition``  timed sequence of differently-shaped partitions
``partitioned-crash``  multi-partition schedule + a mid-trace monitor crash
``node-churn``      half the monitors leave mid-run and rejoin from scratch
``clock-skew``      sound vector-clock skew on the monitored trace
``byzantine-storm``  adversarial monitors duplicate/corrupt/replay tokens
``paper-tree-aggregation``  paper workload with tree-aggregation routing
``paper-gossip``    paper workload with the gossip digest overlay
``paper-slicer-placement``  paper workload with slice-weighted routing
==================  =====================================================

User code can add its own conditions with :func:`register_scenario`; for
sharded execution on spawn-based platforms the registration must happen at
import time of a module the workers also import.
"""

from __future__ import annotations

from ..faults import (
    ByzantineFaults,
    ChurnFaults,
    ClockSkewFaults,
    RollingCrashFaults,
    SingleCrashFaults,
)
from .network import (
    AsymmetricNetwork,
    BurstyNetwork,
    FixedLatencyNetwork,
    LossyNetwork,
    MultiPartitionNetwork,
    PartitionNetwork,
    ReliableNetwork,
)
from .scenario import Scenario, SweepGrid
from .workload import BurstyCommWorkload, HotPropositionWorkload, PaperWorkload

__all__ = [
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
]

_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Register *scenario* under its name; returns it for chaining."""
    if not replace and scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise KeyError(f"unknown scenario {name!r} (registered: {known})") from None


def list_scenarios() -> tuple[Scenario, ...]:
    """All registered scenarios, sorted by name."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def scenario_names() -> tuple[str, ...]:
    """The sorted names of all registered scenarios."""
    return tuple(sorted(_REGISTRY))


# ---------------------------------------------------------------------------
# built-in catalogue
# ---------------------------------------------------------------------------
register_scenario(
    Scenario(
        name="paper-default",
        description="Paper's Section-5 setup: designed traces over a reliable "
        "WiFi-like network (gaussian latency with jitter).",
        workload=PaperWorkload(),
        network=ReliableNetwork(),
        corresponds_to="Figures 5.4-5.8 and Table 5.1 (Section 5's testbed condition)",
        tags=("paper", "baseline"),
    )
)

register_scenario(
    Scenario(
        name="fixed-latency",
        description="Paper workload over deterministic constant-latency links "
        "(no jitter): isolates jitter effects from the baseline.",
        workload=PaperWorkload(),
        network=FixedLatencyNetwork(),
        corresponds_to="extension: jitter ablation of the Section-5 testbed",
        tags=("network",),
    )
)

register_scenario(
    Scenario(
        name="lossy-retransmit",
        description="20% transmission loss with stop-and-wait retransmission: "
        "reliable delivery at the cost of delay and retransmission traffic.",
        workload=PaperWorkload(),
        network=LossyNetwork(),
        corresponds_to="extension: degraded-network stress of the Section-5 workload",
        tags=("network", "degraded"),
    )
)

register_scenario(
    Scenario(
        name="partition-heal",
        description="The network partitions into two groups mid-run and heals: "
        "cross-group monitor messages are held until the partition closes.",
        workload=PaperWorkload(),
        network=PartitionNetwork(),
        corresponds_to="extension: partition tolerance of the token routing",
        tags=("network", "degraded"),
    )
)

register_scenario(
    Scenario(
        name="bursty-comm",
        description="Comm-heavy workload bursts (3 broadcast rounds per slot) "
        "over a duty-cycled medium that flushes at burst instants.",
        workload=BurstyCommWorkload(),
        network=BurstyNetwork(),
        corresponds_to="extension: comm-heavy stress (amplifies Figures 5.4/5.5)",
        tags=("workload", "network"),
    )
)

register_scenario(
    Scenario(
        name="hot-spot",
        description="Hot-proposition skew: process 0 flips its propositions at "
        "3x the base event rate over the reliable network.",
        workload=HotPropositionWorkload(),
        network=ReliableNetwork(),
        corresponds_to="extension: asymmetric load on per-process monitor queues (Fig. 5.7)",
        tags=("workload",),
    )
)

register_scenario(
    Scenario(
        name="no-comm",
        description="The paper's 'No comm' configuration of Fig. 5.9 as a "
        "standing scenario: no program communication events at all.",
        workload=PaperWorkload(),
        network=ReliableNetwork(),
        grid=SweepGrid(comm_mus=(None,)),
        corresponds_to="Fig. 5.9's 'No comm' configuration",
        tags=("paper",),
    )
)

register_scenario(
    Scenario(
        name="crash-restart-replay",
        description="One seed-chosen monitor crashes mid-trace and restarts "
        "with its journaled state intact: the crash costs downtime only.",
        workload=PaperWorkload(),
        network=ReliableNetwork(),
        faults=SingleCrashFaults(down_events=1, recovery="replay"),
        corresponds_to="extension: monitor failure with replay-from-last-verdict recovery",
        tags=("faults",),
    )
)

register_scenario(
    Scenario(
        name="crash-restart-rejoin",
        description="One seed-chosen monitor crashes mid-trace and rejoins "
        "from scratch, replaying its durable local event log and "
        "re-exploring; its pre-crash tokens die on return.",
        workload=PaperWorkload(),
        network=ReliableNetwork(),
        faults=SingleCrashFaults(down_events=1, recovery="rejoin"),
        corresponds_to="extension: monitor failure with rejoin-from-scratch recovery",
        tags=("faults",),
    )
)

register_scenario(
    Scenario(
        name="crash-storm",
        description="A rolling outage: every monitor crashes once at a "
        "staggered seed-chosen point and replays its journal on restart.",
        workload=PaperWorkload(),
        network=ReliableNetwork(),
        faults=RollingCrashFaults(down_events=2, recovery="replay"),
        corresponds_to="extension: whole-fleet crash/restart stress of the token routing",
        tags=("faults", "degraded"),
    )
)

register_scenario(
    Scenario(
        name="asymmetric-mesh",
        description="Asymmetric per-link latency matrix: each ordered pair "
        "has its own latency, so A→B and B→A differ.",
        workload=PaperWorkload(),
        network=AsymmetricNetwork(),
        corresponds_to="extension: direction-dependent link quality (beyond the symmetric testbed)",
        tags=("network",),
    )
)

register_scenario(
    Scenario(
        name="multi-partition",
        description="A timed sequence of differently-shaped partitions: the "
        "network splits, heals, and splits again along other group lines.",
        workload=PaperWorkload(),
        network=MultiPartitionNetwork(),
        corresponds_to="extension: generalizes the single partition-heal window",
        tags=("network", "degraded"),
    )
)

register_scenario(
    Scenario(
        name="partitioned-crash",
        description="Compound fault: the multi-partition schedule combined "
        "with a seed-chosen monitor crash (journal replay on restart).",
        workload=PaperWorkload(),
        network=MultiPartitionNetwork(),
        faults=SingleCrashFaults(down_events=2, recovery="replay"),
        corresponds_to="extension: compound network + monitor faults",
        tags=("faults", "network", "degraded"),
    )
)

register_scenario(
    Scenario(
        name="node-churn",
        description="Mid-run node churn: half the monitors (seed-chosen) "
        "leave early for a long seed-chosen outage and rejoin from scratch, "
        "replaying their durable logs; outages past the trace end model "
        "nodes that only rejoin at shutdown.",
        workload=PaperWorkload(),
        network=ReliableNetwork(),
        faults=ChurnFaults(leave_fraction=0.5, min_down_events=2),
        corresponds_to="extension: membership churn stress of the soundness claim",
        tags=("faults", "adversarial"),
    )
)

register_scenario(
    Scenario(
        name="clock-skew",
        description="Sound vector-clock skew: the monitored trace's clocks "
        "are deterministically inflated within happened-before consistency, "
        "so monitors explore a sub-lattice of the real computation and "
        "verdicts stay sound by construction.",
        workload=PaperWorkload(),
        network=ReliableNetwork(),
        faults=ClockSkewFaults(mode="sound", rate=0.35, magnitude=1),
        corresponds_to="extension: clock-skew robustness of the vector-clock layer",
        tags=("faults", "adversarial"),
    )
)

register_scenario(
    Scenario(
        name="byzantine-storm",
        description="Adversarial monitors: one seed-chosen monitor "
        "duplicates every 3rd inbound message, forges the progression "
        "state of every 4th token and replays a stale token every 5th "
        "message — attacking the soundness argument head-on (simulator "
        "backend; verdicts are checked against the centralized oracle, "
        "not across backends).",
        workload=PaperWorkload(),
        network=ReliableNetwork(),
        faults=ByzantineFaults(
            duplicate_every=3, corrupt_every=4, replay_every=5, num_adversaries=1
        ),
        corresponds_to="extension: Byzantine stress of the paper's soundness claim",
        tags=("faults", "adversarial", "degraded"),
    )
)

# topology variants of the paper's testbed condition — registered (not just
# CLI overrides) so the cluster backend, whose workers resolve scenarios by
# name, can run every point of the topology frontier
register_scenario(
    Scenario(
        name="paper-tree-aggregation",
        description="Paper workload and network with tree-aggregation "
        "routing: tokens and termination notices travel the edges of an "
        "implicit binary tree rooted at monitor 0, so each monitor keeps "
        "a logarithmic neighbour set at the cost of relay hops.",
        workload=PaperWorkload(),
        network=ReliableNetwork(),
        topology="tree-aggregation",
        corresponds_to="extension: message/latency frontier of the Section-5 testbed",
        tags=("topology",),
    )
)

register_scenario(
    Scenario(
        name="paper-gossip",
        description="Paper workload and network with the gossip overlay: "
        "tokens route directly, while termination notices and first "
        "conclusive verdicts flood a ring-plus-chords digest overlay with "
        "duplicate suppression.",
        workload=PaperWorkload(),
        network=ReliableNetwork(),
        topology="gossip",
        corresponds_to="extension: message/latency frontier of the Section-5 testbed",
        tags=("topology",),
    )
)

register_scenario(
    Scenario(
        name="paper-slicer-placement",
        description="Paper workload and network with slice-weighted "
        "routing: tokens prefer the monitor owning the most undecided "
        "conjuncts of the slice being searched, breaking ties towards "
        "proposition-heavy processes.",
        workload=PaperWorkload(),
        network=ReliableNetwork(),
        topology="slicer-placement",
        corresponds_to="extension: message/latency frontier of the Section-5 testbed",
        tags=("topology",),
    )
)
