"""Declarative workload models: the trace shapes of a scenario.

A :class:`WorkloadModel` turns the per-point sweep parameters (process count,
events per process, distribution parameters, trace design) into a concrete
:class:`repro.sim.workload.WorkloadConfig`, which the engine feeds to
:func:`repro.sim.workload.generate_computation`.  Three shapes are provided:

* :class:`PaperWorkload` — the unmodified trace model of Section 5.2
  (normal-distributed internal/communication wait times).
* :class:`HotPropositionWorkload` — hot-proposition skew: one or more "hot"
  processes flip their propositions at a multiple of the base event rate,
  optionally with their own truth probability; the rest of the system is
  unchanged.  Stresses per-process monitor queues asymmetrically.
* :class:`BurstyCommWorkload` — comm-heavy bursts: every communication slot
  fires a burst of broadcast rounds instead of a single one, multiplying
  program messages (and therefore receive events) without touching the
  internal-event schedule.

Models are frozen dataclasses — picklable, hashable, self-describing — so
they ride along inside :class:`repro.scenarios.Scenario` values across
process boundaries.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Protocol, runtime_checkable

from ..sim.workload import WorkloadConfig

__all__ = [
    "WorkloadModel",
    "PaperWorkload",
    "HotPropositionWorkload",
    "BurstyCommWorkload",
]


@runtime_checkable
class WorkloadModel(Protocol):
    """Declarative description of a trace shape, instantiated per sweep cell."""

    def build_config(
        self,
        *,
        num_processes: int,
        events_per_process: int,
        evt_mu: float,
        evt_sigma: float,
        comm_mu: float | None,
        comm_sigma: float,
        truth_probability: float,
        initial_valuation: dict[str, bool],
        seed: int,
    ) -> WorkloadConfig:
        """The concrete workload configuration for one simulated run."""

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""


def _describe(kind: str, model: object) -> dict[str, object]:
    """Render *model* as a ``{"kind": ..., **fields}`` metadata dictionary."""
    description: dict[str, object] = {"kind": kind}
    description.update(asdict(model))
    return description


@dataclass(frozen=True)
class PaperWorkload:
    """The unmodified case-study trace model of Section 5.2."""

    def build_config(
        self,
        *,
        num_processes: int,
        events_per_process: int,
        evt_mu: float,
        evt_sigma: float,
        comm_mu: float | None,
        comm_sigma: float,
        truth_probability: float,
        initial_valuation: dict[str, bool],
        seed: int,
    ) -> WorkloadConfig:
        """Materialise the unmodified Section-5.2 workload configuration."""
        return WorkloadConfig(
            num_processes=num_processes,
            events_per_process=events_per_process,
            evt_mu=evt_mu,
            evt_sigma=evt_sigma,
            comm_mu=comm_mu,
            comm_sigma=comm_sigma,
            truth_probability=truth_probability,
            initial_valuation=initial_valuation,
            seed=seed,
        )

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return _describe("paper", self)


@dataclass(frozen=True)
class HotPropositionWorkload:
    """Hot-proposition skew: selected processes churn their propositions.

    ``hot_processes`` names the skewed processes; each produces
    ``event_factor ×`` as many internal events at ``event_factor ×`` the
    rate (same wall-clock horizon) and, when ``hot_truth_probability`` is
    set, flips its propositions with that probability instead of the trace
    design's global one.
    """

    hot_processes: tuple[int, ...] = (0,)
    event_factor: float = 3.0
    hot_truth_probability: float | None = 0.5

    def build_config(
        self,
        *,
        num_processes: int,
        events_per_process: int,
        evt_mu: float,
        evt_sigma: float,
        comm_mu: float | None,
        comm_sigma: float,
        truth_probability: float,
        initial_valuation: dict[str, bool],
        seed: int,
    ) -> WorkloadConfig:
        """Materialise the skewed configuration (hot processes clipped to *num_processes*)."""
        hot = tuple(p for p in self.hot_processes if p < num_processes)
        return WorkloadConfig(
            num_processes=num_processes,
            events_per_process=events_per_process,
            evt_mu=evt_mu,
            evt_sigma=evt_sigma,
            comm_mu=comm_mu,
            comm_sigma=comm_sigma,
            truth_probability=truth_probability,
            initial_valuation=initial_valuation,
            seed=seed,
            hot_processes=hot,
            hot_event_factor=self.event_factor,
            hot_truth_probability=self.hot_truth_probability,
        )

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return _describe("hot-proposition", self)


@dataclass(frozen=True)
class BurstyCommWorkload:
    """Comm-heavy bursts: each communication slot fires several rounds."""

    burst_size: int = 3
    burst_gap: float = 0.15

    def build_config(
        self,
        *,
        num_processes: int,
        events_per_process: int,
        evt_mu: float,
        evt_sigma: float,
        comm_mu: float | None,
        comm_sigma: float,
        truth_probability: float,
        initial_valuation: dict[str, bool],
        seed: int,
    ) -> WorkloadConfig:
        """Materialise the burst-amplified communication configuration."""
        return WorkloadConfig(
            num_processes=num_processes,
            events_per_process=events_per_process,
            evt_mu=evt_mu,
            evt_sigma=evt_sigma,
            comm_mu=comm_mu,
            comm_sigma=comm_sigma,
            truth_probability=truth_probability,
            initial_valuation=initial_valuation,
            seed=seed,
            comm_burst_size=self.burst_size,
            comm_burst_gap=self.burst_gap,
        )

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return _describe("bursty-comm", self)
