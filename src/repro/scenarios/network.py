"""Declarative network models: the pluggable conditions of a scenario.

A :class:`NetworkModel` is a small frozen dataclass describing *how* the
monitors' network behaves, independently of the backend that realises it:

* :meth:`~NetworkModel.build` constructs the matching discrete-event network
  (a :class:`repro.core.transport.MonitorNetwork` implementation from
  :mod:`repro.sim.network`) for one simulated run;
* :meth:`~NetworkModel.delay_model` maps the same latency/loss parameters
  onto a backend-agnostic :class:`repro.core.delays.DelayModel`, which the
  asyncio streaming runtime (:mod:`repro.runtime`) plugs into its transports
  — so every named scenario runs identically-shaped on both backends
  (``run --backend {sim,asyncio}``).

Models are plain picklable values, so scenarios can be shipped to worker
processes by the sharded sweep engine, and :meth:`~NetworkModel.describe`
renders them into the BENCH/JSON metadata.

Seven conditions are provided:

===================  ======================================================
model                behaviour
===================  ======================================================
:class:`ReliableNetwork`       the paper's testbed: gaussian latency+jitter
:class:`FixedLatencyNetwork`   deterministic constant latency (no jitter)
:class:`LossyNetwork`          drops + stop-and-wait retransmission
:class:`PartitionNetwork`      partition windows between process groups,
                               healed when each window closes
:class:`BurstyNetwork`         duty-cycled medium flushing at burst instants
:class:`AsymmetricNetwork`     per-ordered-pair latency matrix (A→B ≠ B→A)
:class:`MultiPartitionNetwork` timed sequence of partition sets, each phase
                               with its own explicit process grouping
===================  ======================================================

All of them deliver every message eventually (the monitoring algorithm
assumes reliable FIFO channels), so verdicts are independent of the model —
only the timing, queuing and message-overhead metrics change.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Protocol, runtime_checkable

from ..core.delays import (
    AsymmetricLatencyMatrix,
    BurstyDelay,
    DelayModel,
    GaussianDelay,
    LossyRetransmitDelay,
    MultiPartitionDelay,
    PartitionDelay,
    PartitionPhase,
)
from ..sim.engine import Simulator
from ..sim.network import (
    BurstySimulatedNetwork,
    LossySimulatedNetwork,
    PartitionedSimulatedNetwork,
    SimulatedNetwork,
)

__all__ = [
    "NetworkModel",
    "ReliableNetwork",
    "FixedLatencyNetwork",
    "LossyNetwork",
    "PartitionNetwork",
    "BurstyNetwork",
    "AsymmetricNetwork",
    "MultiPartitionNetwork",
]


@runtime_checkable
class NetworkModel(Protocol):
    """Declarative description of a monitor network, buildable per run."""

    def build(self, simulator: Simulator, seed: int | None) -> SimulatedNetwork:
        """Construct the discrete-event network on *simulator*, seeded with *seed*."""

    def delay_model(self, seed: int | None) -> DelayModel:
        """The same latency/loss semantics for the streaming runtime."""

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""


def _describe(kind: str, model: object) -> dict[str, object]:
    """Render *model* as a ``{"kind": ..., **fields}`` metadata dictionary."""
    description: dict[str, object] = {"kind": kind}
    description.update(asdict(model))
    return description


@dataclass(frozen=True)
class ReliableNetwork:
    """The paper's reliable WiFi testbed: gaussian latency with jitter."""

    latency: float = 0.05
    jitter: float = 0.01

    def build(self, simulator: Simulator, seed: int | None) -> SimulatedNetwork:
        """Build the reliable jittery discrete-event network."""
        return SimulatedNetwork(
            simulator, latency=self.latency, jitter=self.jitter, seed=seed
        )

    def delay_model(self, seed: int | None) -> GaussianDelay:
        """Gaussian latency+jitter for the streaming backend."""
        return GaussianDelay(latency=self.latency, jitter=self.jitter, seed=seed)

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return _describe("reliable", self)


@dataclass(frozen=True)
class FixedLatencyNetwork:
    """Deterministic constant-latency links (no jitter at all)."""

    latency: float = 0.05

    def build(self, simulator: Simulator, seed: int | None) -> SimulatedNetwork:
        """Build the constant-latency discrete-event network."""
        return SimulatedNetwork(simulator, latency=self.latency, jitter=0.0, seed=seed)

    def delay_model(self, seed: int | None) -> GaussianDelay:
        """Constant latency (zero jitter draws no randomness at all)."""
        return GaussianDelay(latency=self.latency, jitter=0.0, seed=seed)

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return _describe("fixed-latency", self)


@dataclass(frozen=True)
class LossyNetwork:
    """Lossy links with stop-and-wait retransmission (reliable overall)."""

    latency: float = 0.05
    jitter: float = 0.01
    loss_probability: float = 0.2
    retransmit_timeout: float = 0.25
    max_retransmits: int = 25

    def build(self, simulator: Simulator, seed: int | None) -> LossySimulatedNetwork:
        """Build the lossy-with-retransmission discrete-event network."""
        return LossySimulatedNetwork(
            simulator,
            latency=self.latency,
            jitter=self.jitter,
            seed=seed,
            loss_probability=self.loss_probability,
            retransmit_timeout=self.retransmit_timeout,
            max_retransmits=self.max_retransmits,
        )

    def delay_model(self, seed: int | None) -> LossyRetransmitDelay:
        """Stop-and-wait retransmission delays for the streaming backend."""
        return LossyRetransmitDelay(
            latency=self.latency,
            jitter=self.jitter,
            seed=seed,
            loss_probability=self.loss_probability,
            retransmit_timeout=self.retransmit_timeout,
            max_retransmits=self.max_retransmits,
        )

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return _describe("lossy-retransmit", self)


@dataclass(frozen=True)
class PartitionNetwork:
    """Partition/heal cycles between round-robin process groups."""

    latency: float = 0.05
    jitter: float = 0.01
    windows: tuple[tuple[float, float], ...] = ((2.0, 8.0),)
    num_groups: int = 2

    def build(
        self, simulator: Simulator, seed: int | None
    ) -> PartitionedSimulatedNetwork:
        """Build the partition/heal discrete-event network."""
        return PartitionedSimulatedNetwork(
            simulator,
            latency=self.latency,
            jitter=self.jitter,
            seed=seed,
            windows=self.windows,
            num_groups=self.num_groups,
        )

    def delay_model(self, seed: int | None) -> PartitionDelay:
        """Partition-window holding delays for the streaming backend."""
        return PartitionDelay(
            latency=self.latency,
            jitter=self.jitter,
            seed=seed,
            windows=self.windows,
            num_groups=self.num_groups,
        )

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return _describe("partition-heal", self)


@dataclass(frozen=True)
class BurstyNetwork:
    """Duty-cycled medium that only transmits at periodic burst instants."""

    latency: float = 0.01
    jitter: float = 0.0
    period: float = 0.75

    def build(self, simulator: Simulator, seed: int | None) -> BurstySimulatedNetwork:
        """Build the duty-cycled discrete-event network."""
        return BurstySimulatedNetwork(
            simulator,
            latency=self.latency,
            jitter=self.jitter,
            seed=seed,
            period=self.period,
        )

    def delay_model(self, seed: int | None) -> BurstyDelay:
        """Burst-instant quantised delays for the streaming backend."""
        return BurstyDelay(
            latency=self.latency, jitter=self.jitter, seed=seed, period=self.period
        )

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return _describe("bursty", self)


@dataclass(frozen=True)
class AsymmetricNetwork:
    """Asymmetric per-link latency matrix: A→B need not equal B→A.

    ``pairs`` lists explicit ``((sender, target), latency)`` overrides; all
    other ordered pairs fall back to the direction-sensitive ring formula of
    :class:`repro.core.delays.AsymmetricLatencyMatrix` parameterised by
    ``skew`` and ``ring``.
    """

    base_latency: float = 0.05
    jitter: float = 0.01
    skew: float = 1.5
    ring: int = 8
    pairs: tuple[tuple[tuple[int, int], float], ...] = ()

    def _matrix(self, seed: int | None) -> AsymmetricLatencyMatrix:
        return AsymmetricLatencyMatrix(
            base_latency=self.base_latency,
            jitter=self.jitter,
            seed=seed,
            skew=self.skew,
            ring=self.ring,
            pair_latencies=dict(self.pairs),
        )

    def build(self, simulator: Simulator, seed: int | None) -> SimulatedNetwork:
        """Build a discrete-event network over the asymmetric matrix."""
        return SimulatedNetwork(
            simulator,
            latency=self.base_latency,
            jitter=self.jitter,
            delay=self._matrix(seed),
        )

    def delay_model(self, seed: int | None) -> AsymmetricLatencyMatrix:
        """The same per-ordered-pair latencies for the streaming backend."""
        return self._matrix(seed)

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return _describe("asymmetric", self)


@dataclass(frozen=True)
class MultiPartitionNetwork:
    """A timed sequence of partition phases with per-phase groupings.

    Generalizes :class:`PartitionNetwork`: each ``(start, end, groups)``
    phase of ``schedule`` partitions the processes into its own explicit
    groups (unlisted processes share an implicit rest group), so a run can
    pass through several differently-shaped partitions that each heal.

    ``seed_phase_jitter`` derives a per-seed variant of the schedule for
    every run (:meth:`repro.core.delays.MultiPartitionDelay.derive_schedule`):
    each phase keeps its duration and groups but its start shifts by up to
    that fraction of the duration, deterministically from the run seed — so
    replications sweep the partition timing instead of replaying identical
    wall-clock phases.  ``0.0`` pins the schedule exactly as written.
    """

    latency: float = 0.05
    jitter: float = 0.01
    schedule: tuple[PartitionPhase, ...] = (
        (1.5, 4.5, ((0, 1),)),
        (6.0, 9.0, ((0, 2), (1,))),
    )
    seed_phase_jitter: float = 0.25

    def build(self, simulator: Simulator, seed: int | None) -> SimulatedNetwork:
        """Build a discrete-event network over the partition schedule."""
        return SimulatedNetwork(
            simulator,
            latency=self.latency,
            jitter=self.jitter,
            delay=self.delay_model(seed),
        )

    def delay_model(self, seed: int | None) -> MultiPartitionDelay:
        """Phase-holding delays for the streaming backend.

        Both backends share this constructor (``build`` wraps it), so the
        per-seed derived schedule is identical on either backend for the
        same run seed.
        """
        return MultiPartitionDelay(
            latency=self.latency,
            jitter=self.jitter,
            seed=seed,
            schedule=MultiPartitionDelay.derive_schedule(
                self.schedule, seed, self.seed_phase_jitter
            ),
        )

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return _describe("multi-partition", self)
