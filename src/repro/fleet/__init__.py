"""Multi-tenant monitoring fleet: thousands of live sessions per process.

The fleet layer multiplexes many concurrent monitored sessions — one
:class:`TenantSpec` (formula instance × live event stream) each — on asyncio
event loops sharded across a process pool by tenant hash.  Streams come from
pluggable :class:`EventSource`\\ s (synthetic workloads, replayed event-log
files, loopback-socket ingestion), verdicts leave through
:class:`VerdictSink`\\ s, and per-tenant inboxes are bounded with explicit
backpressure.  See ``docs/fleet.md`` for the operator guide and
:func:`run_fleet` for the entry point.
"""

from .config import (
    BACKPRESSURE_POLICIES,
    FleetConfig,
    TenantSpec,
    describe_backpressure,
    synthetic_fleet,
)
from .engine import (
    FleetReport,
    TenantResult,
    run_fleet,
    shard_of,
    standalone_tenant_result,
)
from .sinks import SINK_KINDS, JsonlSink, MemorySink, TenantVerdict, VerdictSink, make_sink
from .sources import (
    EVENT_LOG_SCHEMA,
    SOURCE_KINDS,
    EventSource,
    ReplaySource,
    SocketSource,
    SyntheticSource,
    dump_event_log,
    load_event_log,
    serve_event_log,
)

__all__ = [
    "BACKPRESSURE_POLICIES",
    "EVENT_LOG_SCHEMA",
    "SOURCE_KINDS",
    "SINK_KINDS",
    "TenantSpec",
    "FleetConfig",
    "FleetReport",
    "TenantResult",
    "TenantVerdict",
    "EventSource",
    "SyntheticSource",
    "ReplaySource",
    "SocketSource",
    "VerdictSink",
    "MemorySink",
    "JsonlSink",
    "make_sink",
    "describe_backpressure",
    "dump_event_log",
    "load_event_log",
    "serve_event_log",
    "run_fleet",
    "standalone_tenant_result",
    "synthetic_fleet",
    "shard_of",
]
