"""Tenant admission: what a fleet runs and under which resource policy.

A :class:`TenantSpec` is one monitored session — formula instance, process
count, coordination topology, compiled-kernel flag, event source, seed — and
a :class:`FleetConfig` admits a batch of them into one fleet run: how many
shards (worker processes) partition the tenants, the per-tenant inbox bound,
the backpressure policy when a tenant's inbox saturates, and an optional
admission cap.  Both are frozen, picklable dataclasses, so tenant batches
ride across the shard process pool unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..coordination import TOPOLOGIES
from ..experiments.properties import PROPERTY_NAMES
from .sources import EventSource, SyntheticSource

__all__ = [
    "BACKPRESSURE_POLICIES",
    "describe_backpressure",
    "TenantSpec",
    "FleetConfig",
    "synthetic_fleet",
]

#: how a tenant session reacts when its bounded inbox is full
BACKPRESSURE_POLICIES = ("block", "drop-newest")


def describe_backpressure() -> list[dict[str, str]]:
    """Self-describing metadata of the registered backpressure policies."""
    return [
        {
            "name": "block",
            "behaviour": "the feeder waits until the inbox drains below the "
            "bound before enqueuing the next event",
            "loss": "never drops events (counted as blocked_events)",
        },
        {
            "name": "drop-newest",
            "behaviour": "the newest event is discarded when the inbox is at "
            "the bound; termination signals are never dropped",
            "loss": "drops are counted per tenant (dropped_events)",
        },
    ]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a formula instance attached to a live event stream.

    ``num_processes`` / ``events_per_process`` shape synthetic streams; a
    replay or socket source carries its own process count, which then also
    sizes the tenant's monitor ring.  ``time_scale`` paces the stream
    through the session's :class:`repro.runtime.transport.RuntimeClock`
    (wall seconds per virtual second; ``0.0`` replays as fast as possible).
    """

    tenant_id: str
    property_name: str = "B"
    num_processes: int = 3
    events_per_process: int = 4
    seed: int = 2015
    topology: str = "round-robin-token"
    compiled_kernel: bool = True
    max_views_per_state: int | None = None
    time_scale: float = 0.0
    source: EventSource = field(default_factory=SyntheticSource)

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ValueError("tenant_id must be non-empty")
        if self.property_name.upper() not in PROPERTY_NAMES:
            raise ValueError(
                f"unknown case-study property {self.property_name!r} "
                f"(known: {PROPERTY_NAMES})"
            )
        if self.num_processes < 2:
            raise ValueError("tenants monitor at least two processes")
        if self.events_per_process < 1:
            raise ValueError("events_per_process must be positive")
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r} (known: {tuple(TOPOLOGIES)})"
            )
        if self.time_scale < 0.0:
            raise ValueError("time_scale must be non-negative")

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for sinks, BENCH documents, docs)."""
        return {
            "tenant_id": self.tenant_id,
            "property": self.property_name,
            "num_processes": self.num_processes,
            "events_per_process": self.events_per_process,
            "seed": self.seed,
            "topology": self.topology,
            "compiled_kernel": self.compiled_kernel,
            "source": self.source.describe(),
        }


@dataclass(frozen=True)
class FleetConfig:
    """Admission and resource policy of one fleet run."""

    tenants: tuple[TenantSpec, ...]
    #: worker processes the tenants are hash-partitioned across
    shards: int = 1
    #: admission cap; tenants beyond it are rejected (counted), not queued
    max_tenants: int | None = None
    #: bound on a tenant's unprocessed inbox items before backpressure kicks in
    inbox_limit: int = 1024
    backpressure: str = "block"
    #: real-time bound on each session's post-termination drain
    quiesce_timeout: float = 120.0

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("a fleet needs at least one tenant")
        seen: set[str] = set()
        for spec in self.tenants:
            if spec.tenant_id in seen:
                raise ValueError(f"duplicate tenant id {spec.tenant_id!r}")
            seen.add(spec.tenant_id)
        if self.shards < 1:
            raise ValueError("shards must be positive")
        if self.max_tenants is not None and self.max_tenants < 0:
            raise ValueError("max_tenants must be non-negative")
        if self.inbox_limit < 1:
            raise ValueError("inbox_limit must be positive")
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {self.backpressure!r} "
                f"(known: {BACKPRESSURE_POLICIES})"
            )
        if self.quiesce_timeout <= 0.0:
            raise ValueError("quiesce_timeout must be positive")

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and the CLI)."""
        return {
            "tenants": len(self.tenants),
            "shards": self.shards,
            "max_tenants": self.max_tenants,
            "inbox_limit": self.inbox_limit,
            "backpressure": self.backpressure,
        }


def synthetic_fleet(
    num_tenants: int,
    *,
    num_processes: int = 3,
    events_per_process: int = 4,
    base_seed: int = 2015,
    properties: tuple[str, ...] = PROPERTY_NAMES,
    topology: str = "round-robin-token",
    compiled_kernel: bool = True,
    source: EventSource | None = None,
) -> tuple[TenantSpec, ...]:
    """A deterministic batch of synthetic tenants (CLI / smoke / benchmarks).

    Tenant ``i`` monitors ``properties[i % len(properties)]`` with seed
    ``base_seed + 31 * i`` (the same per-cell stride the sweep engine uses),
    so any slice of the batch is reproducible in isolation.
    """
    if num_tenants < 1:
        raise ValueError("num_tenants must be positive")
    return tuple(
        TenantSpec(
            tenant_id=f"tenant-{index:04d}",
            property_name=properties[index % len(properties)],
            num_processes=num_processes,
            events_per_process=events_per_process,
            seed=base_seed + 31 * index,
            topology=topology,
            compiled_kernel=compiled_kernel,
            source=source if source is not None else SyntheticSource(),
        )
        for index in range(num_tenants)
    )
