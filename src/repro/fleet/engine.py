"""The multi-tenant fleet engine: thousands of sessions, one process pool.

One *tenant session* is the asyncio streaming backend's monitored run — the
same monitors, transports and merged event/termination schedule as
:func:`repro.runtime.runner.stream_monitored_run` — with one addition: a
bounded per-tenant inbox with an explicit backpressure policy at the feed
point.  Many sessions multiplex concurrently on one event loop per *shard*
(worker process); tenants are partitioned across shards by a stable hash of
their id, so the partition is independent of batch order and shard count.

Within a shard every tenant shares the hash-consed formula intern table, the
memoized progression caches and the ``case_study_monitor`` LRU cache — the
amortization that makes thousands of structurally similar formula instances
cheap — while sharing no mutable monitor state, so per-tenant runs stay
deterministic.  The correctness anchor (property-tested across tenant-count
scales): under a non-saturating ``block`` policy, a tenant's
:class:`TenantResult` is byte-identical to the same (formula, stream) run
standalone through :func:`repro.runtime.runner.run_streaming` —
:func:`standalone_tenant_result` is that reference path.
"""

from __future__ import annotations

import asyncio
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..coordination import build_topology
from ..core.monitor import DecentralizedMonitor
from ..experiments.properties import case_study_monitor, case_study_registry
from ..runtime.node import StreamMonitorNode
from ..runtime.runner import run_streaming
from ..runtime.transport import InMemoryStreamTransport, RuntimeClock
from .config import FleetConfig, TenantSpec
from .sinks import TenantVerdict, VerdictSink

__all__ = [
    "TenantResult",
    "FleetReport",
    "run_fleet",
    "standalone_tenant_result",
    "shard_of",
]

#: gap between a process's last event and its termination signal — identical
#: to the runtime runner's epsilon so fleet and standalone schedules line up
_TERMINATION_EPSILON = 1e-6


@dataclass(frozen=True)
class TenantResult:
    """The deterministic outcome of one tenant session.

    Deliberately light (no monitor objects), so shard workers can ship
    thousands of results back through the process pool cheaply.
    """

    tenant_id: str
    property_name: str
    #: per-monitor conclusive verdicts in declaration order
    verdict_sequence: tuple[str, ...]
    #: sorted union of reported verdicts (the outcome summary)
    verdicts: tuple[str, ...]
    #: events the source produced for this tenant
    events: int
    #: events actually fed to monitors (``events - dropped_events``)
    ingested_events: int
    dropped_events: int
    #: feed stalls under the ``block`` policy (no events are lost)
    blocked_events: int
    monitor_messages: int
    global_views: int
    #: wall-clock seconds from session start to final verdict + drain
    latency_seconds: float
    #: non-empty when the session failed and the tenant was evicted
    error: str = ""

    @property
    def evicted(self) -> bool:
        """Whether the session died instead of completing."""
        return bool(self.error)

    def equivalence_key(self) -> tuple[object, ...]:
        """Everything that must be byte-identical to the standalone run.

        Wall-clock latency is excluded — it measures the machine, not the
        monitored run.
        """
        return (
            self.tenant_id,
            self.property_name,
            self.verdict_sequence,
            self.verdicts,
            self.events,
            self.ingested_events,
            self.monitor_messages,
            self.global_views,
        )

    def verdict_record(self) -> TenantVerdict:
        """The sink-facing rendering of this result."""
        return TenantVerdict(
            tenant_id=self.tenant_id,
            property_name=self.property_name,
            verdict_sequence=self.verdict_sequence,
            verdicts=self.verdicts,
            events=self.events,
            dropped_events=self.dropped_events,
            latency_seconds=self.latency_seconds,
            error=self.error,
        )


def shard_of(tenant_id: str, shards: int) -> int:
    """Stable shard assignment: CRC-32 of the tenant id, modulo *shards*."""
    return zlib.crc32(tenant_id.encode("utf-8")) % shards


def _inbox_load(nodes: list[StreamMonitorNode], net: InMemoryStreamTransport) -> int:
    """A tenant's unprocessed item count: node inboxes plus in-flight sends."""
    return sum(node.pending_items for node in nodes) + net.in_flight


async def _tenant_session(
    spec: TenantSpec,
    *,
    inbox_limit: int,
    backpressure: str,
    quiesce_timeout: float,
) -> TenantResult:
    """Run one tenant to completion on the current event loop.

    Mirrors :func:`repro.runtime.runner.stream_monitored_run` await-for-await
    — same schedule, same clock pacing, same quiescence drain — so that under
    a non-saturating inbox the session is indistinguishable from a standalone
    run.  The only divergence point is the bounded-inbox check before each
    event enqueue: ``drop-newest`` discards the event (counted), ``block``
    yields until the inbox drains below the bound (counted, lossless).
    Termination signals bypass the bound — a saturated tenant still
    terminates.

    A dropped event truncates the rest of that process's stream: the
    monitors index events by contiguous sequence numbers and vector clocks,
    so a mid-stream gap would corrupt the run rather than degrade it.
    Shedding the suffix keeps every delivered per-process stream a true
    prefix of the tenant's computation — and LTL3 conclusive verdicts are
    closed under extension, so whatever a saturated tenant still declares
    remains sound for the full trace.
    """
    started = time.perf_counter()
    computation = await spec.source.load(
        num_processes=spec.num_processes,
        events_per_process=spec.events_per_process,
        property_name=spec.property_name,
        seed=spec.seed,
    )
    n = computation.num_processes
    registry = case_study_registry(n)
    automaton = case_study_monitor(spec.property_name, n)
    clock = RuntimeClock(spec.time_scale)
    net = InMemoryStreamTransport(clock=clock, delay=None)
    initial_letters = [
        registry.local_letter(i, computation.initial_states[i]) for i in range(n)
    ]
    route = build_topology(spec.topology, n, registry=registry)
    monitors = [
        DecentralizedMonitor(
            process=process,
            num_processes=n,
            automaton=automaton,
            registry=registry,
            initial_letters=initial_letters,
            transport=net,
            max_views_per_state=spec.max_views_per_state,
            use_compiled_kernel=spec.compiled_kernel,
            topology=route,
        )
        for process in range(n)
    ]
    nodes = [StreamMonitorNode(monitor, net) for monitor in monitors]
    for node in nodes:
        net.register(node.process, node)
    await net.start()
    tasks = [node.start_task() for node in nodes]
    dropped = 0
    blocked = 0
    try:
        for monitor in monitors:
            monitor.start()

        last_time = [0.0] * n
        schedule: list[tuple[float, int, int, object]] = []
        for event in computation.all_events():
            last_time[event.process] = max(last_time[event.process], event.timestamp)
            schedule.append((event.timestamp, 0, event.process, event))
        for process in range(n):
            schedule.append(
                (last_time[process] + _TERMINATION_EPSILON, 1, process, None)
            )
        schedule.sort(key=lambda item: (item[0], item[1], item[2]))

        truncated = [False] * n
        for instant, kind, process, payload in schedule:
            await clock.sleep_until(instant)
            if kind == 0:
                if truncated[process]:
                    dropped += 1
                    continue
                if _inbox_load(nodes, net) >= inbox_limit:
                    if backpressure == "drop-newest":
                        dropped += 1
                        truncated[process] = True
                        continue
                    blocked += 1
                    while _inbox_load(nodes, net) >= inbox_limit:
                        await asyncio.sleep(0)
                nodes[process].enqueue_event(payload)
            else:
                nodes[process].enqueue_termination()

        await net.wait_quiescent(timeout=quiesce_timeout)
    finally:
        for node in nodes:
            node.enqueue_stop()
        await asyncio.gather(*tasks, return_exceptions=True)
        await net.aclose()
    for task in tasks:
        if task.done() and not task.cancelled() and task.exception() is not None:
            raise task.exception()  # noqa: B904 - the monitor bug is the error

    reported: set = set()
    for monitor in monitors:
        reported |= monitor.reported_verdicts()
    return TenantResult(
        tenant_id=spec.tenant_id,
        property_name=spec.property_name,
        verdict_sequence=tuple(
            " ".join(str(v) for v in monitor.verdict_log) for monitor in monitors
        ),
        verdicts=tuple(sorted(str(v) for v in reported)),
        events=computation.num_events,
        ingested_events=computation.num_events - dropped,
        dropped_events=dropped,
        blocked_events=blocked,
        monitor_messages=net.messages_sent,
        global_views=sum(m.metrics.views_created for m in monitors),
        latency_seconds=time.perf_counter() - started,
    )


def standalone_tenant_result(
    spec: TenantSpec, *, quiesce_timeout: float = 120.0
) -> TenantResult:
    """The fleet's correctness reference: the tenant run standalone.

    Resolves the tenant's source and runs the identical (formula, stream)
    through the plain asyncio backend (:func:`repro.runtime.runner.run_streaming`)
    with no fleet multiplexing and no inbox bound.  A fleet run under a
    non-saturating ``block`` policy must produce a :class:`TenantResult`
    whose :meth:`~TenantResult.equivalence_key` matches this one exactly.
    """
    computation = asyncio.run(
        spec.source.load(
            num_processes=spec.num_processes,
            events_per_process=spec.events_per_process,
            property_name=spec.property_name,
            seed=spec.seed,
        )
    )
    n = computation.num_processes
    report = run_streaming(
        computation,
        case_study_monitor(spec.property_name, n),
        case_study_registry(n),
        max_views_per_state=spec.max_views_per_state,
        transport="memory",
        time_scale=spec.time_scale,
        quiesce_timeout=quiesce_timeout,
        compiled_kernel=spec.compiled_kernel,
        topology=spec.topology,
    )
    return TenantResult(
        tenant_id=spec.tenant_id,
        property_name=spec.property_name,
        verdict_sequence=report.verdict_sequence(),
        verdicts=tuple(sorted(str(v) for v in report.reported_verdicts)),
        events=report.total_events,
        ingested_events=report.total_events,
        dropped_events=0,
        blocked_events=0,
        monitor_messages=report.monitor_messages,
        global_views=report.total_global_views,
        latency_seconds=report.wall_seconds,
    )


async def _guarded_session(
    spec: TenantSpec, *, inbox_limit: int, backpressure: str, quiesce_timeout: float
) -> TenantResult:
    """Run one session; a failure evicts the tenant instead of the shard."""
    started = time.perf_counter()
    try:
        return await _tenant_session(
            spec,
            inbox_limit=inbox_limit,
            backpressure=backpressure,
            quiesce_timeout=quiesce_timeout,
        )
    except Exception as error:  # noqa: BLE001 - eviction boundary
        return TenantResult(
            tenant_id=spec.tenant_id,
            property_name=spec.property_name,
            verdict_sequence=(),
            verdicts=(),
            events=0,
            ingested_events=0,
            dropped_events=0,
            blocked_events=0,
            monitor_messages=0,
            global_views=0,
            latency_seconds=time.perf_counter() - started,
            error=f"{type(error).__name__}: {error}",
        )


def _run_shard(
    specs: tuple[TenantSpec, ...],
    inbox_limit: int,
    backpressure: str,
    quiesce_timeout: float,
) -> list[TenantResult]:
    """Run one shard's tenants concurrently on a fresh event loop.

    Module-level (picklable) so :func:`run_fleet` can dispatch it through a
    :class:`concurrent.futures.ProcessPoolExecutor`; every session in the
    shard shares the process's intern table and compiled-machine caches.
    """

    async def gather() -> list[TenantResult]:
        return list(
            await asyncio.gather(
                *(
                    _guarded_session(
                        spec,
                        inbox_limit=inbox_limit,
                        backpressure=backpressure,
                        quiesce_timeout=quiesce_timeout,
                    )
                    for spec in specs
                )
            )
        )

    return asyncio.run(gather())


def _percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of *values* (0.0 for an empty list)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class FleetReport:
    """Saturation metrics and per-tenant outcomes of one fleet run."""

    tenants_admitted: int
    tenants_rejected: int
    tenants_completed: int
    tenants_evicted: int
    shards: int
    backpressure: str
    inbox_limit: int
    events_ingested: int
    events_dropped: int
    events_blocked: int
    monitor_messages: int
    verdict_latency_p50: float
    verdict_latency_p99: float
    wall_seconds: float
    results: list[TenantResult] = field(default_factory=list)

    @property
    def tenants_active(self) -> int:
        """Sessions still running when the report was cut (0 after a run)."""
        return self.tenants_admitted - self.tenants_completed - self.tenants_evicted

    @property
    def fleet_events_per_sec(self) -> float:
        """Aggregate ingestion throughput across every tenant."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_ingested / self.wall_seconds

    def saturation(self) -> dict[str, float]:
        """The flat saturation-counter block (CLI table, BENCH extras)."""
        return {
            "fleet_tenants_admitted": float(self.tenants_admitted),
            "fleet_tenants_rejected": float(self.tenants_rejected),
            "fleet_tenants_active": float(self.tenants_active),
            "fleet_tenants_completed": float(self.tenants_completed),
            "fleet_tenants_evicted": float(self.tenants_evicted),
            "fleet_events_ingested": float(self.events_ingested),
            "fleet_events_dropped": float(self.events_dropped),
            "fleet_events_blocked": float(self.events_blocked),
            "fleet_verdict_latency_p50": self.verdict_latency_p50,
            "fleet_verdict_latency_p99": self.verdict_latency_p99,
        }

    def as_dict(self) -> dict[str, object]:
        """Flat JSON-serializable summary (without per-tenant results)."""
        return {
            "shards": self.shards,
            "backpressure": self.backpressure,
            "inbox_limit": self.inbox_limit,
            "monitor_messages": self.monitor_messages,
            "wall_seconds": self.wall_seconds,
            "fleet_events_per_sec": self.fleet_events_per_sec,
            **self.saturation(),
        }

    def bench_timings(self) -> dict[str, dict[str, object]]:
        """``repro-bench/1`` timing records of this run.

        ``fleet_events_per_sec`` carries the throughput in the generic
        ``events_per_sec`` field (tracked as a ``:events_per_sec`` row by
        ``benchmarks/compare_bench.py``) and ``fleet_verdict_latency``
        carries the explicit ``fleet_verdict_latency_p99`` field the
        comparator treats as lower-is-better; both embed the full
        saturation-counter block, so the BENCH document is self-describing.
        """
        common = {
            "group": "fleet",
            "backend": "asyncio",
            "fleet_tenants": self.tenants_admitted,
            "fleet_shards": self.shards,
            "fleet_backpressure": self.backpressure,
            **self.saturation(),
        }
        return {
            "fleet_events_per_sec": {
                "seconds": self.wall_seconds,
                "events_per_sec": self.fleet_events_per_sec,
                **common,
            },
            "fleet_verdict_latency": {
                "seconds": self.verdict_latency_p50,
                **common,
            },
        }


def run_fleet(config: FleetConfig, *, sink: VerdictSink | None = None) -> FleetReport:
    """Run a multi-tenant monitoring fleet to completion.

    Admits ``config.tenants`` (rejecting, with a counter, everything beyond
    ``max_tenants``), hash-partitions the admitted tenants across
    ``config.shards`` worker processes, runs every tenant session
    concurrently within its shard, and merges the per-tenant results in
    tenant-id order — so the report is deterministic in the admitted set,
    independent of shard count and scheduling.  When *sink* is given, every
    tenant's :class:`repro.fleet.sinks.TenantVerdict` record is emitted to
    it (in the same deterministic order) before the report returns.
    """
    started = time.perf_counter()
    admitted = list(config.tenants)
    rejected = 0
    if config.max_tenants is not None and len(admitted) > config.max_tenants:
        rejected = len(admitted) - config.max_tenants
        admitted = admitted[: config.max_tenants]

    results: list[TenantResult] = []
    if admitted:
        buckets: list[list[TenantSpec]] = [[] for _ in range(config.shards)]
        for spec in admitted:
            buckets[shard_of(spec.tenant_id, config.shards)].append(spec)
        occupied = [tuple(bucket) for bucket in buckets if bucket]
        if len(occupied) <= 1:
            for bucket in occupied:
                results.extend(
                    _run_shard(
                        bucket,
                        config.inbox_limit,
                        config.backpressure,
                        config.quiesce_timeout,
                    )
                )
        else:
            with ProcessPoolExecutor(max_workers=len(occupied)) as pool:
                futures = [
                    pool.submit(
                        _run_shard,
                        bucket,
                        config.inbox_limit,
                        config.backpressure,
                        config.quiesce_timeout,
                    )
                    for bucket in occupied
                ]
                for future in futures:
                    results.extend(future.result())
    results.sort(key=lambda result: result.tenant_id)

    completed = [r for r in results if not r.evicted]
    evicted = [r for r in results if r.evicted]
    latencies = [r.latency_seconds for r in completed]
    report = FleetReport(
        tenants_admitted=len(admitted),
        tenants_rejected=rejected,
        tenants_completed=len(completed),
        tenants_evicted=len(evicted),
        shards=config.shards,
        backpressure=config.backpressure,
        inbox_limit=config.inbox_limit,
        events_ingested=sum(r.ingested_events for r in results),
        events_dropped=sum(r.dropped_events for r in results),
        events_blocked=sum(r.blocked_events for r in results),
        monitor_messages=sum(r.monitor_messages for r in results),
        verdict_latency_p50=_percentile(latencies, 0.50),
        verdict_latency_p99=_percentile(latencies, 0.99),
        wall_seconds=time.perf_counter() - started,
        results=results,
    )
    if sink is not None:
        for result in results:
            sink.emit(result.verdict_record())
        sink.close()
    return report
