"""Per-tenant verdict reporting: the fleet's outbound protocol.

Every tenant session that completes (or is evicted) produces one
:class:`TenantVerdict` record; the fleet pushes the records of a run through
a :class:`VerdictSink` in deterministic tenant-id order.  Two sinks are
registered (:data:`SINK_KINDS`): :class:`MemorySink` collects records
in-process (the default, what the tests and the API inspect) and
:class:`JsonlSink` appends one JSON object per record to a file, the shape
an external collector would tail.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Protocol, runtime_checkable

__all__ = [
    "SINK_KINDS",
    "TenantVerdict",
    "VerdictSink",
    "MemorySink",
    "JsonlSink",
    "make_sink",
]


@dataclass(frozen=True)
class TenantVerdict:
    """One tenant's verdict report: what the fleet tells the outside world."""

    tenant_id: str
    property_name: str
    #: per-monitor conclusive verdicts in declaration order (see
    #: :meth:`repro.runtime.runner.RuntimeReport.verdict_sequence`)
    verdict_sequence: tuple[str, ...]
    #: the union of reported verdicts, sorted (the run's outcome summary)
    verdicts: tuple[str, ...]
    events: int
    dropped_events: int
    latency_seconds: float
    #: non-empty when the tenant was evicted instead of completing
    error: str = ""

    def as_dict(self) -> dict[str, object]:
        """Flat JSON-serializable rendering (the JSONL sink's line shape)."""
        return {
            "tenant_id": self.tenant_id,
            "property": self.property_name,
            "verdict_sequence": list(self.verdict_sequence),
            "verdicts": list(self.verdicts),
            "events": self.events,
            "dropped_events": self.dropped_events,
            "latency_seconds": self.latency_seconds,
            "error": self.error,
        }


@runtime_checkable
class VerdictSink(Protocol):
    """Where per-tenant verdict records go (memory, JSONL file, ...)."""

    def emit(self, record: TenantVerdict) -> None:
        """Deliver one tenant's verdict record."""

    def close(self) -> None:
        """Flush and release any underlying resource."""

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and docs)."""


@dataclass
class MemorySink:
    """Collects verdict records in-process (the default sink)."""

    records: list[TenantVerdict] = field(default_factory=list)

    def emit(self, record: TenantVerdict) -> None:
        """Append *record* to the in-memory list."""
        self.records.append(record)

    def close(self) -> None:
        """No resource to release; the records stay readable."""

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and docs)."""
        return {"kind": "memory", "records": len(self.records)}


class JsonlSink:
    """Appends one JSON object per verdict record to a file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle: IO[str] | None = None
        self.emitted = 0

    def emit(self, record: TenantVerdict) -> None:
        """Write *record* as one JSON line (the file is opened lazily)."""
        if self._handle is None:
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
        self.emitted += 1

    def close(self) -> None:
        """Flush and close the underlying file."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for BENCH documents and docs)."""
        return {"kind": "jsonl", "path": str(self.path), "emitted": self.emitted}


#: the registered verdict-sink kinds, in documentation order
SINK_KINDS: dict[str, type] = {"memory": MemorySink, "jsonl": JsonlSink}


def make_sink(kind: str, path: str | Path | None = None) -> VerdictSink:
    """Instantiate a registered sink by name (``path`` for file-backed ones)."""
    if kind == "memory":
        return MemorySink()
    if kind == "jsonl":
        if path is None:
            raise ValueError("the jsonl sink requires a path")
        return JsonlSink(path)
    raise ValueError(f"unknown verdict sink {kind!r} (known: {sorted(SINK_KINDS)})")
