"""Pluggable live event sources feeding tenant monitoring sessions.

A fleet tenant is a formula instance attached to a live event stream; the
:class:`EventSource` protocol is where the stream comes from.  Three sources
are registered (:data:`SOURCE_KINDS`):

* :class:`SyntheticSource` — paced synthetic traffic generated from an
  existing :class:`repro.scenarios.workload.WorkloadModel` with the paper's
  per-property trace design, exactly the computation a standalone sweep
  cell would monitor.  This is what makes the fleet's correctness anchor
  checkable: for a fixed seed the synthetic stream is byte-identical to the
  standalone asyncio backend's input.
* :class:`ReplaySource` — replays a recorded event-log file (the
  ``repro-fleet-events/1`` JSONL format written by :func:`dump_event_log`).
* :class:`SocketSource` — live loopback-socket ingestion: connects to a TCP
  endpoint serving the same JSONL frames (see :func:`serve_event_log`) and
  reconstructs the stream as it arrives.

Every source resolves to a :class:`repro.distributed.computation.Computation`
whose events the tenant session then paces through its own
:class:`repro.runtime.transport.RuntimeClock` — sources decide *what* the
stream is, the session decides *when* each event fires.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Protocol, runtime_checkable

from ..distributed.clocks import VectorClock
from ..distributed.computation import Computation
from ..distributed.events import Event, EventKind
from ..experiments.engine import trace_design
from ..scenarios.workload import PaperWorkload, WorkloadModel
from ..sim.workload import generate_computation

__all__ = [
    "EVENT_LOG_SCHEMA",
    "SOURCE_KINDS",
    "EventSource",
    "SyntheticSource",
    "ReplaySource",
    "SocketSource",
    "computation_to_records",
    "records_to_computation",
    "dump_event_log",
    "load_event_log",
    "serve_event_log",
]

#: schema tag of the JSONL event-log header record
EVENT_LOG_SCHEMA = "repro-fleet-events/1"


@runtime_checkable
class EventSource(Protocol):
    """Where a tenant's event stream comes from (synthetic, file, socket)."""

    async def load(
        self,
        *,
        num_processes: int,
        events_per_process: int,
        property_name: str,
        seed: int,
    ) -> Computation:
        """Resolve the tenant's stream to a concrete computation."""

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for sinks, BENCH documents, docs)."""


# ---------------------------------------------------------------------------
# event-log codec (shared by the file and socket sources)
# ---------------------------------------------------------------------------


def computation_to_records(computation: Computation) -> list[dict[str, object]]:
    """Serialize *computation* as ``repro-fleet-events/1`` JSON records.

    One header record (process count, initial states) followed by one record
    per event in global ``(timestamp, process, sn)`` order — the order a live
    stream would deliver them in.
    """
    records: list[dict[str, object]] = [
        {
            "record": "header",
            "schema": EVENT_LOG_SCHEMA,
            "num_processes": computation.num_processes,
            "initial_states": [dict(s) for s in computation.initial_states],
        }
    ]
    ordered = sorted(
        computation.all_events(), key=lambda e: (e.timestamp, e.process, e.sn)
    )
    for event in ordered:
        records.append(
            {
                "record": "event",
                "process": event.process,
                "sn": event.sn,
                "kind": str(event.kind),
                "vc": event.vc.as_list(),
                "state": dict(event.state),
                "peer": event.peer,
                "message_id": event.message_id,
                "timestamp": event.timestamp,
            }
        )
    return records


def records_to_computation(records: list[dict[str, object]]) -> Computation:
    """Rebuild a :class:`Computation` from ``repro-fleet-events/1`` records."""
    if not records:
        raise ValueError("empty event log")
    header = records[0]
    if header.get("record") != "header" or header.get("schema") != EVENT_LOG_SCHEMA:
        raise ValueError(
            f"event log does not start with a {EVENT_LOG_SCHEMA} header record"
        )
    num_processes = int(header["num_processes"])  # type: ignore[arg-type]
    initial_states = [dict(s) for s in header["initial_states"]]  # type: ignore[union-attr]
    if len(initial_states) != num_processes:
        raise ValueError("header initial_states arity mismatch")
    per_process: list[list[Event]] = [[] for _ in range(num_processes)]
    for record in records[1:]:
        if record.get("record") != "event":
            raise ValueError(f"unexpected record type {record.get('record')!r}")
        peer = record["peer"]
        message_id = record["message_id"]
        event = Event(
            process=int(record["process"]),  # type: ignore[arg-type]
            sn=int(record["sn"]),  # type: ignore[arg-type]
            kind=EventKind(record["kind"]),
            vc=VectorClock(record["vc"]),  # type: ignore[arg-type]
            state=dict(record["state"]),  # type: ignore[arg-type]
            peer=None if peer is None else int(peer),  # type: ignore[arg-type]
            message_id=None if message_id is None else int(message_id),  # type: ignore[arg-type]
            timestamp=float(record["timestamp"]),  # type: ignore[arg-type]
        )
        per_process[event.process].append(event)
    for events in per_process:
        events.sort(key=lambda e: e.sn)
    # Computation.__post_init__ re-validates sequence numbering, so a
    # truncated or shuffled log fails loudly instead of monitoring garbage
    return Computation(initial_states=initial_states, events=per_process)


def dump_event_log(computation: Computation, path: str | Path) -> None:
    """Write *computation* as a JSONL ``repro-fleet-events/1`` log file."""
    lines = [
        json.dumps(record, sort_keys=True)
        for record in computation_to_records(computation)
    ]
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_event_log(path: str | Path) -> Computation:
    """Read a JSONL event log written by :func:`dump_event_log`."""
    records = [
        json.loads(line)
        for line in Path(path).read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    return records_to_computation(records)


async def serve_event_log(
    computation: Computation, host: str = "127.0.0.1"
) -> tuple[asyncio.base_events.Server, str, int]:
    """Serve *computation* as a one-shot JSONL stream on a loopback port.

    Every connecting client receives the full ``repro-fleet-events/1`` log
    and the connection is closed — the ingestion side of
    :class:`SocketSource`, used by tests and demos.  Returns the server and
    its bound ``(host, port)``; the caller closes the server.
    """
    payload = (
        "\n".join(
            json.dumps(record, sort_keys=True)
            for record in computation_to_records(computation)
        )
        + "\n"
    ).encode("utf-8")

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            writer.write(payload)
            await writer.drain()
        finally:
            writer.close()

    server = await asyncio.start_server(handle, host, 0)
    bound_host, port = server.sockets[0].getsockname()[:2]
    return server, bound_host, port


# ---------------------------------------------------------------------------
# the registered sources
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SyntheticSource:
    """Paced synthetic traffic from a workload model (the default source).

    Builds the exact computation a standalone sweep cell would monitor:
    the workload model materialises a
    :class:`repro.sim.workload.WorkloadConfig` with the paper's per-property
    trace design and the tenant's seed, and
    :func:`repro.sim.workload.generate_computation` produces the stream.
    Deterministic in ``(workload, tenant parameters, seed)``.
    """

    workload: WorkloadModel = PaperWorkload()
    evt_mu: float = 3.0
    evt_sigma: float = 1.0
    comm_mu: float = 3.0
    comm_sigma: float = 1.0

    async def load(
        self,
        *,
        num_processes: int,
        events_per_process: int,
        property_name: str,
        seed: int,
    ) -> Computation:
        """Generate the tenant's synthetic computation."""
        initial_valuation, truth_probability = trace_design(property_name)
        config = self.workload.build_config(
            num_processes=num_processes,
            events_per_process=events_per_process,
            evt_mu=self.evt_mu,
            evt_sigma=self.evt_sigma,
            comm_mu=self.comm_mu,
            comm_sigma=self.comm_sigma,
            truth_probability=truth_probability,
            initial_valuation=dict(initial_valuation),
            seed=seed,
        )
        return generate_computation(config)

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for sinks, BENCH documents, docs)."""
        return {"kind": "synthetic", "workload": self.workload.describe()}


@dataclass(frozen=True)
class ReplaySource:
    """Replays a recorded ``repro-fleet-events/1`` JSONL event-log file."""

    path: str

    async def load(
        self,
        *,
        num_processes: int,
        events_per_process: int,
        property_name: str,
        seed: int,
    ) -> Computation:
        """Load the recorded computation (tenant shape parameters ignored)."""
        return load_event_log(self.path)

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for sinks, BENCH documents, docs)."""
        return {"kind": "replay", "path": self.path}


@dataclass(frozen=True)
class SocketSource:
    """Live loopback-socket ingestion of a JSONL event stream.

    Connects to ``host:port`` (see :func:`serve_event_log` for the serving
    side), reads ``repro-fleet-events/1`` records until EOF and reconstructs
    the computation.  A malformed or truncated stream raises instead of
    monitoring a partial trace.
    """

    host: str
    port: int

    async def load(
        self,
        *,
        num_processes: int,
        events_per_process: int,
        property_name: str,
        seed: int,
    ) -> Computation:
        """Ingest the streamed computation from the socket."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            raw = await reader.read()
        finally:
            writer.close()
        records = [
            json.loads(line)
            for line in raw.decode("utf-8").splitlines()
            if line.strip()
        ]
        return records_to_computation(records)

    def describe(self) -> dict[str, object]:
        """Self-describing metadata (for sinks, BENCH documents, docs)."""
        return {"kind": "socket", "host": self.host, "port": self.port}


#: the registered event-source kinds, in documentation order
SOURCE_KINDS: dict[str, type] = {
    "synthetic": SyntheticSource,
    "replay": ReplaySource,
    "socket": SocketSource,
}
