"""One monitor as an asyncio task: the streaming runtime's unit of concurrency.

A :class:`StreamMonitorNode` wraps the *unchanged*
:class:`repro.core.monitor.DecentralizedMonitor` (any
:class:`repro.core.transport.MonitorNode` implementation works) and runs it
as a single asyncio task consuming a serial inbox of program events,
monitoring messages and control items.  Serialising everything through one
inbox per node keeps the monitor implementation free of locks — exactly one
task ever touches a monitor's state, mirroring the per-process monitor of
the paper — while different nodes genuinely interleave on the event loop
(and exchange messages over real sockets under the TCP transport).
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

from ..core.transport import MonitorNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .transport import StreamTransport

__all__ = ["StreamMonitorNode"]

#: inbox item tags, in the order a run produces them
_MESSAGE, _EVENT, _TERMINATE, _STOP = "message", "event", "terminate", "stop"


class StreamMonitorNode:
    """Runs one monitor as an asyncio task over a serial inbox.

    The runner enqueues program events and the termination signal; the
    transport enqueues monitoring messages as they arrive.  ``pending_items``
    counts enqueued-but-not-yet-fully-processed items, which the transport's
    quiescence detection relies on.
    """

    def __init__(self, monitor: MonitorNode, transport: StreamTransport) -> None:
        self.monitor = monitor
        self.transport = transport
        self.inbox: asyncio.Queue = asyncio.Queue()
        #: items enqueued and not yet fully processed (quiescence accounting)
        self.pending_items = 0
        self._task: asyncio.Task | None = None

    @property
    def process(self) -> int:
        """Index of the program process this node monitors."""
        return self.monitor.process

    # -- producers ------------------------------------------------------
    def enqueue_message(self, due: float, message: object) -> None:
        """Deliver one monitoring message into the inbox (transport side)."""
        self.pending_items += 1
        self.inbox.put_nowait((_MESSAGE, due, message))

    def enqueue_event(self, event: object) -> None:
        """Feed one local program event into the inbox (runner side)."""
        self.pending_items += 1
        self.inbox.put_nowait((_EVENT, 0.0, event))

    def enqueue_termination(self) -> None:
        """Signal that the attached program process produced its last event."""
        self.pending_items += 1
        self.inbox.put_nowait((_TERMINATE, 0.0, None))

    def enqueue_stop(self) -> None:
        """Ask the node task to exit once it drains everything before this."""
        self.pending_items += 1
        self.inbox.put_nowait((_STOP, 0.0, None))

    # -- the task -------------------------------------------------------
    def start_task(self) -> asyncio.Task:
        """Spawn the node's consumer task on the running loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self.run())
        return self._task

    def failure(self) -> BaseException | None:
        """The exception that killed the node task, if it died abnormally.

        The transport's quiescence wait polls this so a monitor bug
        surfaces immediately instead of timing out as a bogus
        "did not quiesce".
        """
        task = self._task
        if task is not None and task.done() and not task.cancelled():
            return task.exception()
        return None

    async def run(self) -> None:
        """Consume the inbox until a stop item arrives.

        Each item is processed synchronously (no awaits inside monitor
        calls), so observers at await points never see a monitor mid-step;
        sends triggered by processing bump the transport's in-flight counter
        before the consumed message is accounted done.
        """
        while True:
            kind, due, payload = await self.inbox.get()
            try:
                if kind == _MESSAGE:
                    self.monitor.receive_message(payload)
                    self.transport.message_done(due)
                elif kind == _EVENT:
                    self.monitor.local_event(payload)
                elif kind == _TERMINATE:
                    self.monitor.local_termination()
                elif kind == _STOP:
                    return
            finally:
                self.pending_items -= 1
