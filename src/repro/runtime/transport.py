"""Asyncio streaming transports: monitors as concurrent tasks, for real.

This module implements the :class:`repro.core.transport.MonitorNetwork`
protocol on top of asyncio, the deployment style the paper's decentralized
monitors assume — each monitor is a concurrent process and messages travel
through an actual asynchronous medium instead of a simulated priority queue.
Two transports are provided:

* :class:`InMemoryStreamTransport` — per-channel asyncio queues inside one
  event loop.  Fast and used by the test-suite and the default CLI backend.
* :class:`TcpStreamTransport` — every monitor node listens on a real TCP
  socket (``127.0.0.1``, ephemeral port) and the :mod:`repro.core.messages`
  wire messages travel as wire protocol v2 binary frames
  (:mod:`repro.cluster.codec`) over real connections.

Both transports preserve **FIFO order per (sender, receiver) channel** (the
algorithm's reliable-FIFO-channel assumption): every channel has its own
queue drained by a dedicated pump task, and delivery instants are clamped to
be monotone per channel exactly like the discrete-event simulator does.
Latency/loss semantics come from the same backend-agnostic
:class:`repro.core.delays.DelayModel` values the simulator uses, evaluated
against a :class:`RuntimeClock` (virtual seconds, optionally paced to wall
clock via ``time_scale``).

Quiescence — "no message is in flight anywhere and no node has unprocessed
inbox items" — is detected with a simple conservative counter:
``in_flight`` is incremented at :meth:`StreamTransport.send` and only
decremented after the receiving node has *finished processing* the message,
so ``in_flight == 0`` together with empty node inboxes implies the whole
system is idle (sends triggered by processing a message increment the
counter before the decrement for the consumed message happens).
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

from ..cluster import codec
from ..core.delays import DelayModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .node import StreamMonitorNode

__all__ = [
    "RuntimeClock",
    "StreamTransport",
    "InMemoryStreamTransport",
    "TcpStreamTransport",
]


class RuntimeClock:
    """Virtual time for the streaming runtime.

    The runtime replays computations whose event timestamps are in *virtual
    seconds* (the simulator's time base).  ``time_scale`` maps virtual to
    wall-clock seconds: the default ``0.0`` runs as fast as the event loop
    allows (sleeps degrade to plain yields), ``0.001`` compresses one
    virtual second to one real millisecond, ``1.0`` replays in real time.
    ``now`` is a monotone high-water mark — concurrent sleepers advance it
    to the largest instant awaited so far, which is exactly what the delay
    models need as a send-time base.
    """

    def __init__(self, time_scale: float = 0.0) -> None:
        if time_scale < 0:
            raise ValueError("time_scale must be non-negative")
        self.time_scale = time_scale
        self.now: float = 0.0

    async def sleep_until(self, instant: float) -> None:
        """Advance virtual time to *instant*, pacing by ``time_scale``."""
        if instant > self.now and self.time_scale > 0:
            await asyncio.sleep((instant - self.now) * self.time_scale)
        else:
            # still yield so other tasks (pumps, nodes) interleave
            await asyncio.sleep(0)
        self.now = max(self.now, instant)


class StreamTransport:
    """Base streaming transport: channel pumps + in-flight accounting.

    Subclasses customise only :meth:`_forward` (how a due message reaches
    the target node) and the async lifecycle hooks; FIFO clamping, delay
    evaluation and quiescence tracking live here.  Implements the
    :class:`repro.core.transport.MonitorNetwork` protocol, so monitor code
    and metrics collection are oblivious to which backend is underneath.
    """

    def __init__(
        self, clock: RuntimeClock | None = None, delay: DelayModel | None = None
    ) -> None:
        self.clock = clock if clock is not None else RuntimeClock()
        self.delay = delay
        self._nodes: dict[int, StreamMonitorNode] = {}
        self._channel_queues: dict[tuple[int, int], asyncio.Queue] = {}
        self._channel_clock: dict[tuple[int, int], float] = {}
        self._pumps: list[asyncio.Task] = []
        #: a fatal transport-level failure (e.g. a peer disconnecting
        #: mid-frame on TCP); surfaced by :meth:`wait_quiescent` instead of
        #: letting the run time out or lose messages silently
        self.fatal_error: Exception | None = None
        #: messages sent but not yet fully processed by their receiver
        self.in_flight = 0
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_by_sender: dict[int, int] = {}
        self.last_delivery_time: float = 0.0

    # -- MonitorNetwork protocol ----------------------------------------
    def register(self, process: int, node: StreamMonitorNode) -> None:
        """Attach *node* as the endpoint for *process*."""
        self._nodes[process] = node

    def send(self, sender: int, target: int, message: object) -> None:
        """Queue *message* for delivery; called synchronously by monitors."""
        if target not in self._nodes:
            raise ValueError(f"no monitor node registered for process {target}")
        self.messages_sent += 1
        self.messages_by_sender[sender] = self.messages_by_sender.get(sender, 0) + 1
        now = self.clock.now
        if self.delay is not None:
            due = self.delay.delivery_time(now, sender, target)
        else:
            due = now
        channel = (sender, target)
        # FIFO per channel: delivery instants are monotone per channel, and
        # the per-channel pump realises them sequentially
        due = max(due, self._channel_clock.get(channel, 0.0))
        self._channel_clock[channel] = due
        self.in_flight += 1
        self._channel_queue(channel).put_nowait((due, target, message))

    @property
    def pending(self) -> int:
        """Number of sent-but-not-fully-processed messages."""
        return self.in_flight

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Bring the transport up; all nodes must already be registered.

        Channel queues and their pump tasks are created lazily on first
        send, so the base transport has nothing to do here.
        """

    async def aclose(self) -> None:
        """Tear the transport down, cancelling the channel pumps."""
        for pump in self._pumps:
            pump.cancel()
        for pump in self._pumps:
            try:
                await pump
            except asyncio.CancelledError:
                pass
        self._pumps.clear()

    # -- internals ------------------------------------------------------
    def _channel_queue(self, channel: tuple[int, int]) -> asyncio.Queue:
        queue = self._channel_queues.get(channel)
        if queue is None:
            queue = asyncio.Queue()
            self._channel_queues[channel] = queue
            self._pumps.append(
                asyncio.get_running_loop().create_task(self._pump(channel, queue))
            )
        return queue

    async def _pump(self, channel: tuple[int, int], queue: asyncio.Queue) -> None:
        """Drain one channel sequentially, realising delivery instants."""
        while True:
            due, target, message = await queue.get()
            await self.clock.sleep_until(due)
            await self._forward(channel, due, target, message)

    async def _forward(
        self, channel: tuple[int, int], due: float, target: int, message: object
    ) -> None:
        """Hand one due message to the target node (subclass hook)."""
        raise NotImplementedError

    def message_done(self, due: float) -> None:
        """Record that a receiver finished processing one message."""
        self.in_flight -= 1
        self.messages_delivered += 1
        self.last_delivery_time = max(self.last_delivery_time, due)

    # -- quiescence -----------------------------------------------------
    def _idle(self) -> bool:
        return self.in_flight == 0 and all(
            node.pending_items == 0 for node in self._nodes.values()
        )

    async def wait_quiescent(self, timeout: float = 120.0) -> None:
        """Block until no work is pending anywhere (or raise on *timeout*).

        The check is conservative (see the module docstring), but a freshly
        observed idle state could still be a scheduling artefact on exotic
        transports, so the condition must hold across a few consecutive
        yields before the wait returns.  A node task that died abnormally
        can never drain its share of the in-flight work, so its exception
        is re-raised here immediately instead of timing out.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        stable = 0
        spins = 0
        while True:
            if self.fatal_error is not None:
                raise self.fatal_error
            for node in self._nodes.values():
                error = node.failure()
                if error is not None:
                    raise error
            if self._idle():
                stable += 1
                if stable >= 3:
                    return
            else:
                stable = 0
            if loop.time() > deadline:
                raise RuntimeError(
                    f"streaming run did not quiesce within {timeout}s "
                    f"(in_flight={self.in_flight})"
                )
            spins += 1
            # yield hot at first (in-memory work progresses per yield), back
            # off to real sleeps for socket I/O latencies
            await asyncio.sleep(0 if spins < 1000 else 0.001)

    def extra_stats(self) -> dict[str, float]:
        """Behaviour-specific counters of the installed delay model."""
        return self.delay.extra_stats() if self.delay is not None else {}


class InMemoryStreamTransport(StreamTransport):
    """Streaming transport delivering through in-process inbox queues."""

    async def _forward(
        self, channel: tuple[int, int], due: float, target: int, message: object
    ) -> None:
        self._nodes[target].enqueue_message(due, message)


class TcpStreamTransport(StreamTransport):
    """Streaming transport exchanging messages over real TCP sockets.

    Every registered node gets its own ``asyncio.start_server`` on
    ``127.0.0.1`` with an ephemeral port; channel pumps lazily open one
    client connection per (sender, target) pair and write wire protocol v2
    frames — a magic/version/type header followed by the binary-encoded
    delivery instant and message (:mod:`repro.cluster.codec`).  The
    receiving server decodes each frame and enqueues it into the target
    node's inbox, so from the monitors' point of view nothing changes —
    only the medium does.
    """

    def __init__(
        self,
        clock: RuntimeClock | None = None,
        delay: DelayModel | None = None,
        host: str = "127.0.0.1",
    ) -> None:
        super().__init__(clock=clock, delay=delay)
        self.host = host
        self._servers: dict[int, asyncio.AbstractServer] = {}
        self.ports: dict[int, int] = {}
        self._writers: dict[tuple[int, int], asyncio.StreamWriter] = {}

    async def start(self) -> None:
        """Start one TCP server per registered node and record its port."""
        await super().start()
        for process, node in self._nodes.items():
            server = await asyncio.start_server(
                lambda reader, writer, node=node: self._serve(node, reader, writer),
                self.host,
                0,
            )
            self._servers[process] = server
            self.ports[process] = server.sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        """Stop the pumps first, then close client connections and servers.

        Pumps must die before the sockets do: a pump woken mid-delivery
        would otherwise write to a closed writer and replace the original
        diagnostic with a teardown ConnectionError.
        """
        await super().aclose()
        for writer in self._writers.values():
            writer.close()
        for writer in self._writers.values():
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
        self._writers.clear()
        for server in self._servers.values():
            server.close()
        for server in self._servers.values():
            await server.wait_closed()
        self._servers.clear()

    async def _forward(
        self, channel: tuple[int, int], due: float, target: int, message: object
    ) -> None:
        writer = self._writers.get(channel)
        if writer is None:
            _, writer = await asyncio.open_connection(self.host, self.ports[target])
            self._writers[channel] = writer
        writer.write(codec.encode_wire(due, message))
        await writer.drain()

    async def _serve(
        self,
        node: StreamMonitorNode,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Read frames from one inbound connection into the node's inbox.

        A clean EOF *between* frames is a normal peer close.  A disconnect
        *mid-frame* (a truncated header or payload) means a monitoring
        message was lost on the wire; because the protocol has no
        retransmission, that run can never quiesce, so the truncation is
        recorded as :attr:`StreamTransport.fatal_error` with a precise
        diagnostic instead of surfacing later as a bare ``EOFError`` or a
        bogus quiescence timeout.  Undecodable frames — bad magic, a wire
        protocol version this node does not speak, corrupt payloads — are
        reported the same way.
        """
        try:
            while True:
                try:
                    header = await reader.readexactly(codec.HEADER.size)
                except asyncio.IncompleteReadError as error:
                    if error.partial:
                        raise ConnectionError(
                            f"peer of monitor {node.process} disconnected "
                            f"mid-frame: {len(error.partial)} of "
                            f"{codec.HEADER.size} frame-header bytes received"
                        ) from error
                    return  # clean close between frames
                except ConnectionResetError:
                    # a reset at the frame boundary is an abrupt teardown of
                    # an idle connection; only resets after the header was
                    # consumed are unambiguously mid-frame
                    return
                type_tag, length = codec.decode_header(header)
                try:
                    payload = await reader.readexactly(length)
                except asyncio.IncompleteReadError as error:
                    raise ConnectionError(
                        f"peer of monitor {node.process} disconnected "
                        f"mid-frame: {len(error.partial)} of {length} "
                        f"payload bytes received"
                    ) from error
                except ConnectionResetError as error:
                    raise ConnectionError(
                        f"peer of monitor {node.process} reset the connection "
                        f"mid-frame before its {length}-byte payload arrived"
                    ) from error
                due, message = codec.decode_wire(type_tag, payload)
                node.enqueue_message(due, message)
        except Exception as error:  # noqa: BLE001 - recorded, then re-raised by wait_quiescent
            if self.fatal_error is None:
                self.fatal_error = error
        finally:
            writer.close()
