"""Async/streaming monitoring backend: monitors as asyncio tasks over sockets.

This package is the live counterpart of the discrete-event simulator
(:mod:`repro.sim`): the same decentralized monitors
(:class:`repro.core.monitor.DecentralizedMonitor`, reused unchanged through
the :class:`repro.core.transport.MonitorNode` protocol) run as concurrent
asyncio tasks and exchange the :mod:`repro.core.messages` wire messages over
a streaming transport — in-process queues for tests and fast sweeps, or real
TCP sockets for the deployment style the paper's monitors assume.  Network
conditions are shaped by the same :class:`repro.core.delays.DelayModel`
values the simulator uses, so every registered scenario runs on either
backend (``repro-experiments run --backend {sim,asyncio}``).

Public API
----------
* :func:`stream_monitored_run` — replay a finished computation through
  concurrent monitor tasks; returns a :class:`RuntimeReport`
  (field-compatible with the simulator's report).
* :class:`InMemoryStreamTransport` / :class:`TcpStreamTransport` — the
  streaming transports; :data:`TRANSPORTS` names them for CLIs.
* :class:`StreamMonitorNode` — one monitor as an asyncio task.
* :class:`RuntimeClock` — virtual time, optionally paced to wall clock.

``run_streaming`` moved to the curated :mod:`repro.api` surface; importing
it from this package still works for one release but emits a
:class:`DeprecationWarning` (PEP 562 shim below).
"""

import warnings
from importlib import import_module

from .node import StreamMonitorNode
from .runner import TRANSPORTS, RuntimeReport, stream_monitored_run
from .transport import (
    InMemoryStreamTransport,
    RuntimeClock,
    StreamTransport,
    TcpStreamTransport,
)

__all__ = [
    "RuntimeReport",
    "run_streaming",
    "stream_monitored_run",
    "TRANSPORTS",
    "StreamMonitorNode",
    "StreamTransport",
    "InMemoryStreamTransport",
    "TcpStreamTransport",
    "RuntimeClock",
]


def __getattr__(name: str) -> object:
    """Resolve the deprecated ``run_streaming`` re-export with a warning.

    The name keeps working (it resolves to
    :func:`repro.runtime.runner.run_streaming`) so existing scripts run
    unchanged, but each access points callers at the stable
    :mod:`repro.api` home.
    """
    if name == "run_streaming":
        warnings.warn(
            "importing 'run_streaming' from repro.runtime is deprecated; "
            "use repro.api.run_streaming",
            DeprecationWarning,
            stacklevel=2,
        )
        return import_module(".runner", __name__).run_streaming
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
