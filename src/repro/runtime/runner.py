"""Streaming monitored runs: monitors as concurrent asyncio tasks.

:func:`stream_monitored_run` is the asyncio counterpart of
:func:`repro.sim.runner.simulate_monitored_run`: it replays a finished
computation with one :class:`repro.runtime.node.StreamMonitorNode` per
process — each wrapping the *unchanged*
:class:`repro.core.monitor.DecentralizedMonitor` — exchanging the
:mod:`repro.core.messages` wire messages through a streaming transport
(in-process queues or real TCP sockets).  Events are fed in global timestamp
order against a :class:`~repro.runtime.transport.RuntimeClock`; termination
signals interleave exactly where the simulator schedules them (just after
each process's last event).

Because every transport delivers reliably and in FIFO order per channel, the
conclusive (⊤/⊥) verdicts of a run are independent of task interleavings —
the same invariant the simulated network family is property-tested for — so
for a fixed seed the streaming backend declares exactly the verdicts the
discrete-event backend does, while timing/queuing metrics naturally reflect
the live execution instead of a simulated schedule.

:func:`run_streaming` is the synchronous convenience wrapper used by the
experiment engine (``run --backend asyncio``).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from ..coordination import build_topology
from ..core.delays import DelayModel
from ..core.monitor import DecentralizedMonitor
from ..distributed.computation import Computation
from ..faults import FaultPlan, apply_clock_skew, unwrap_monitor, wrap_monitors
from ..ltl.monitor import MonitorAutomaton
from ..ltl.predicates import PropositionRegistry
from ..ltl.verdict import Verdict
from .node import StreamMonitorNode
from .transport import InMemoryStreamTransport, RuntimeClock, StreamTransport, TcpStreamTransport

__all__ = ["RuntimeReport", "stream_monitored_run", "run_streaming", "TRANSPORTS"]

#: the streaming transports selectable by name (CLI ``--stream-transport``)
TRANSPORTS = ("memory", "tcp")

#: gap between a process's last event and its termination signal — the same
#: epsilon the discrete-event runner uses, so schedules line up
_TERMINATION_EPSILON = 1e-6


@dataclass
class RuntimeReport:
    """Metrics and outcomes of one streaming monitored run.

    Field-compatible with :class:`repro.sim.runner.SimulationReport` for
    everything the experiment engine consumes, so sweep cells are
    backend-agnostic; times are in virtual seconds (the computation's time
    base), with the real elapsed wall clock in ``wall_seconds``.
    """

    num_processes: int
    total_events: int
    monitor_messages: int
    token_messages: int
    termination_messages: int
    digest_messages: int
    total_global_views: int
    delayed_events: int
    program_end_time: float
    monitor_end_time: float
    reported_verdicts: frozenset[Verdict]
    declared_verdicts: frozenset[Verdict]
    monitors: list[DecentralizedMonitor]
    #: behaviour-specific counters of the delay model (retransmissions,
    #: held messages, bursts, ...); empty for undelayed transports
    network_stats: dict[str, float] = field(default_factory=dict)
    #: ``fault_*`` counters of the fault plan (crashes, restarts, held
    #: messages, replayed events, ...); empty for fault-free runs
    fault_stats: dict[str, float] = field(default_factory=dict)
    #: which streaming transport carried the messages ("memory" or "tcp")
    transport: str = "memory"
    #: real wall-clock seconds the streaming run took end to end
    wall_seconds: float = 0.0

    @property
    def monitor_extra_time(self) -> float:
        """Virtual time the monitors kept working after the program finished."""
        return max(0.0, self.monitor_end_time - self.program_end_time)

    @property
    def delay_time_percentage_per_view(self) -> float:
        """The normalised delay metric of Fig. 5.6 (virtual-time based)."""
        if self.program_end_time <= 0 or self.total_global_views == 0:
            return 0.0
        percentage = (self.monitor_extra_time / self.program_end_time) * 100.0
        return percentage / self.total_global_views

    @property
    def average_delayed_events(self) -> float:
        """Average number of delayed events per monitor (Fig. 5.7)."""
        if self.num_processes == 0:
            return 0.0
        return self.delayed_events / self.num_processes

    def verdict_sequence(self) -> tuple[str, ...]:
        """The run's canonical per-monitor verdict declaration order.

        One entry per monitor process, each the space-joined conclusive
        verdicts in the order that monitor first declared them (empty string
        for a monitor that never reached a conclusive state).  This is the
        byte-comparable rendering the fleet layer's equivalence anchor is
        property-tested on: a tenant run inside :func:`repro.fleet.run_fleet`
        must produce exactly this tuple for the same (formula, stream) seed.
        """
        return tuple(
            " ".join(str(verdict) for verdict in monitor.verdict_log)
            for monitor in self.monitors
        )

    def as_dict(self) -> dict[str, object]:
        """Flat summary row, shaped like the simulator report's."""
        return {
            "processes": self.num_processes,
            "events": self.total_events,
            "messages": self.monitor_messages,
            "token_messages": self.token_messages,
            "global_views": self.total_global_views,
            "delayed_events": self.delayed_events,
            "delay_time_pct_per_view": self.delay_time_percentage_per_view,
            "program_time": self.program_end_time,
            "monitor_extra_time": self.monitor_extra_time,
            "verdicts": sorted(str(v) for v in self.reported_verdicts),
            "transport": self.transport,
            **self.network_stats,
            **self.fault_stats,
        }


def _build_transport(
    transport: str, clock: RuntimeClock, delay: DelayModel | None
) -> StreamTransport:
    """Instantiate the named streaming transport."""
    if transport == "memory":
        return InMemoryStreamTransport(clock=clock, delay=delay)
    if transport == "tcp":
        return TcpStreamTransport(clock=clock, delay=delay)
    raise ValueError(f"unknown streaming transport {transport!r} (known: {TRANSPORTS})")


async def stream_monitored_run(
    computation: Computation,
    automaton: MonitorAutomaton,
    registry: PropositionRegistry,
    *,
    delay: DelayModel | None = None,
    max_views_per_state: int | None = None,
    transport: str = "memory",
    time_scale: float = 0.0,
    quiesce_timeout: float = 120.0,
    faults: FaultPlan | None = None,
    compiled_kernel: bool = True,
    topology: str = "round-robin-token",
) -> RuntimeReport:
    """Stream *computation* through concurrent monitor tasks.

    Parameters
    ----------
    computation:
        The distributed execution to monitor (events already carry vector
        clocks and timestamps).
    automaton / registry:
        The replicated LTL3 monitor automaton and its proposition binding.
    delay:
        Optional :class:`repro.core.delays.DelayModel` shaping message
        latency — the same model values the simulated networks use, so
        scenario network conditions mean the same thing on this backend.
        ``None`` delivers as fast as the channel pumps run.
    max_views_per_state:
        Optional per-monitor exploration budget (see
        :class:`repro.core.monitor.DecentralizedMonitor`).
    transport:
        ``"memory"`` (in-process queues) or ``"tcp"`` (real loopback
        sockets with pickled, length-prefixed frames).
    time_scale:
        Wall-clock seconds per virtual second when pacing the replay; the
        default ``0.0`` runs as fast as possible.
    quiesce_timeout:
        Real-time bound on the post-termination drain.
    faults:
        Optional :class:`repro.faults.FaultPlan`; monitors named by the
        plan are wrapped in the same crash/restart proxies the simulator
        uses, so a fault schedule means the same thing on both backends.
    compiled_kernel:
        Forwarded to every monitor as ``use_compiled_kernel`` (bitmask/dense
        table stepping, default on); verdicts and metrics are identical
        either way.
    topology:
        Name of the :mod:`repro.coordination` routing policy shared by the
        run's monitors.  Deterministic in ``(name, num_processes)`` — the
        streaming backend has no run seed, and none is needed.
    """
    started = time.perf_counter()
    n = computation.num_processes
    skew_stats: dict[str, float] = {}
    if faults is not None and faults.clock_skew is not None:
        # same deterministic pre-run transform the simulator applies, so
        # both backends monitor the identical skewed trace
        computation, skew_stats = apply_clock_skew(computation, faults.clock_skew)
    clock = RuntimeClock(time_scale)
    net = _build_transport(transport, clock, delay)
    initial_letters = [
        registry.local_letter(i, computation.initial_states[i]) for i in range(n)
    ]
    route = build_topology(topology, n, registry=registry)

    def make_monitor(process: int) -> DecentralizedMonitor:
        return DecentralizedMonitor(
            process=process,
            num_processes=n,
            automaton=automaton,
            registry=registry,
            initial_letters=initial_letters,
            transport=net,
            max_views_per_state=max_views_per_state,
            use_compiled_kernel=compiled_kernel,
            topology=route,
        )

    monitors, injector = wrap_monitors(faults, n, make_monitor)
    nodes = [StreamMonitorNode(monitor, net) for monitor in monitors]
    for node in nodes:
        net.register(node.process, node)
    await net.start()
    tasks = [node.start_task() for node in nodes]

    try:
        # INIT: every monitor processes the initial global state once all
        # endpoints are registered (outgoing tokens already flow streamed)
        for monitor in monitors:
            monitor.start()

        # one merged schedule: events at their timestamps, termination of
        # each process just after its last event — as the simulator does
        last_time = [0.0] * n
        program_end = 0.0
        schedule: list[tuple[float, int, int, object]] = []
        for event in computation.all_events():
            last_time[event.process] = max(last_time[event.process], event.timestamp)
            program_end = max(program_end, event.timestamp)
            schedule.append((event.timestamp, 0, event.process, event))
        for process in range(n):
            schedule.append(
                (last_time[process] + _TERMINATION_EPSILON, 1, process, None)
            )
        schedule.sort(key=lambda item: (item[0], item[1], item[2]))

        for instant, kind, process, payload in schedule:
            await clock.sleep_until(instant)
            if kind == 0:
                nodes[process].enqueue_event(payload)
            else:
                nodes[process].enqueue_termination()

        await net.wait_quiescent(timeout=quiesce_timeout)
    finally:
        for node in nodes:
            node.enqueue_stop()
        await asyncio.gather(*tasks, return_exceptions=True)
        await net.aclose()
    # surface node-task failures (monitor bugs) instead of hanging reports
    for task in tasks:
        if task.done() and not task.cancelled() and task.exception() is not None:
            raise task.exception()

    reported: set[Verdict] = set()
    declared: set[Verdict] = set()
    for monitor in monitors:
        reported |= monitor.reported_verdicts()
        declared |= monitor.declared_verdicts
    return RuntimeReport(
        num_processes=n,
        total_events=computation.num_events,
        monitor_messages=net.messages_sent,
        token_messages=sum(m.metrics.token_messages_sent for m in monitors),
        termination_messages=sum(
            m.metrics.termination_messages_sent for m in monitors
        ),
        digest_messages=sum(m.metrics.digest_messages_sent for m in monitors),
        total_global_views=sum(m.metrics.views_created for m in monitors),
        delayed_events=sum(m.metrics.delayed_events for m in monitors),
        program_end_time=program_end,
        monitor_end_time=max(net.last_delivery_time, program_end),
        reported_verdicts=frozenset(reported),
        declared_verdicts=frozenset(declared),
        monitors=[unwrap_monitor(monitor) for monitor in monitors],
        network_stats=net.extra_stats(),
        fault_stats={
            **(injector.fault_stats() if injector is not None else {}),
            **skew_stats,
        },
        transport=transport,
        wall_seconds=time.perf_counter() - started,
    )


def run_streaming(
    computation: Computation,
    automaton: MonitorAutomaton,
    registry: PropositionRegistry,
    *,
    delay: DelayModel | None = None,
    max_views_per_state: int | None = None,
    transport: str = "memory",
    time_scale: float = 0.0,
    quiesce_timeout: float = 120.0,
    faults: FaultPlan | None = None,
    compiled_kernel: bool = True,
    topology: str = "round-robin-token",
) -> RuntimeReport:
    """Synchronous wrapper: run :func:`stream_monitored_run` to completion.

    Spins up a fresh event loop per call (``asyncio.run``), which keeps the
    backend usable from the sharded sweep engine's worker processes.
    """
    return asyncio.run(
        stream_monitored_run(
            computation,
            automaton,
            registry,
            delay=delay,
            max_views_per_state=max_views_per_state,
            transport=transport,
            time_scale=time_scale,
            quiesce_timeout=quiesce_timeout,
            faults=faults,
            compiled_kernel=compiled_kernel,
            topology=topology,
        )
    )
