"""Run specs: the JSON document the coordinator distributes to workers.

A cluster run never ships events over the control channel.  Every cell of
the experiment engine already derives its workload deterministically from
``(scenario, property, scale, seed)``, so the coordinator serialises just
those parameters as a :class:`RunSpec` and each worker regenerates the
*identical* computation locally — the same trick the sharded sweep engine
plays with its process pool, promoted to independent OS processes.  Fault
plans travel in the compact ``run --fault-plan`` grammar
(:func:`repro.faults.format_fault_plan`), so a crash schedule means exactly
the same thing on every backend and every host.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from ..faults import FaultPlan, format_fault_plan, parse_fault_plan

__all__ = ["RunSpec", "build_cell_inputs"]


@dataclass(frozen=True)
class RunSpec:
    """Everything a worker needs to regenerate its share of one cell.

    All fields are JSON-scalar so the document round-trips losslessly; the
    fault plan is carried as its grammar string (``None`` for fault-free
    runs).  ``scenario`` is a registered scenario name — workers resolve it
    through the same registry the coordinator used.
    """

    scenario: str
    property_name: str
    num_processes: int
    events_per_process: int
    evt_mu: float
    evt_sigma: float
    comm_mu: float | None
    comm_sigma: float
    seed: int
    max_views_per_state: int | None
    fault_plan: str | None = None
    #: step monitors with the compiled bitmask/dense-table kernel; defaults
    #: to true so specs written before the field existed keep the new
    #: behaviour (the two kernels are step-for-step equivalent)
    compiled_kernel: bool = True
    #: coordination topology name (see :mod:`repro.coordination`); defaults
    #: to the pre-refactor routing so specs written before the field existed
    #: behave identically
    topology: str = "round-robin-token"

    def to_json(self) -> str:
        """Serialise the spec as a JSON document."""
        return json.dumps(asdict(self), indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> RunSpec:
        """Parse a spec document written by :meth:`to_json`."""
        data = json.loads(text)
        unknown = set(data) - {field for field in cls.__dataclass_fields__}
        if unknown:
            raise ValueError(f"run spec has unknown fields: {sorted(unknown)}")
        return cls(**data)

    def save(self, path: str | Path) -> Path:
        """Write the spec document to *path*."""
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: str | Path) -> RunSpec:
        """Load a spec document from *path*."""
        return cls.from_json(Path(path).read_text())

    def faults(self) -> FaultPlan | None:
        """The fault plan the spec carries, parsed back from its grammar."""
        if self.fault_plan is None:
            return None
        return parse_fault_plan(self.fault_plan)


def spec_for_cell(
    scenario_name: str,
    property_name: str,
    num_processes: int,
    events_per_process: int,
    evt_mu: float,
    evt_sigma: float,
    comm_mu: float | None,
    comm_sigma: float,
    seed: int,
    max_views_per_state: int | None,
    fault_plan: FaultPlan | None,
    compiled_kernel: bool = True,
    topology: str = "round-robin-token",
) -> RunSpec:
    """Build the spec of one sweep cell from its resolved parameters."""
    serialised = None
    if fault_plan is not None and not fault_plan.is_noop(num_processes):
        serialised = format_fault_plan(fault_plan)
    return RunSpec(
        scenario=scenario_name,
        property_name=property_name,
        num_processes=num_processes,
        events_per_process=events_per_process,
        evt_mu=evt_mu,
        evt_sigma=evt_sigma,
        comm_mu=comm_mu,
        comm_sigma=comm_sigma,
        seed=seed,
        max_views_per_state=max_views_per_state,
        fault_plan=serialised,
        compiled_kernel=compiled_kernel,
        topology=topology,
    )


def build_cell_inputs(spec: RunSpec):
    """Regenerate the computation and monitor inputs a spec describes.

    Returns ``(computation, automaton, registry)`` — byte-identical on
    every worker and on the coordinator, because everything is a pure
    function of the spec.  Imported lazily from the experiments package to
    keep :mod:`repro.cluster` importable from the runtime transport without
    a cycle.
    """
    from ..experiments.engine import trace_design
    from ..experiments.properties import case_study_monitor, case_study_registry
    from ..scenarios import get_scenario
    from ..sim.workload import generate_computation

    scenario = get_scenario(spec.scenario)
    initial_valuation, truth_probability = trace_design(spec.property_name)
    config = scenario.workload.build_config(
        num_processes=spec.num_processes,
        events_per_process=spec.events_per_process,
        evt_mu=spec.evt_mu,
        evt_sigma=spec.evt_sigma,
        comm_mu=spec.comm_mu,
        comm_sigma=spec.comm_sigma,
        truth_probability=truth_probability,
        initial_valuation=dict(initial_valuation),
        seed=spec.seed,
    )
    computation = generate_computation(config)
    registry = case_study_registry(spec.num_processes)
    automaton = case_study_monitor(spec.property_name, spec.num_processes)
    return computation, automaton, registry
