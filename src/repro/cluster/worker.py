"""The cluster worker: one monitor process, launched per manifest entry.

``python -m repro.cluster.worker --manifest <file> --process <id> --spec
<file>`` hosts exactly one :class:`repro.core.monitor.DecentralizedMonitor`
in its own OS process.  The worker regenerates its cell's computation from
the run spec (a pure function of scenario, property, scale and seed — no
events travel on the wire), binds its listening socket at its manifest
address, dials the coordinator's control address with bounded backoff, and
then follows the coordinator's command loop:

``hello``
    Sent by the worker on connect, carrying its monitor id and wire
    protocol version; the coordinator rejects mismatched versions before
    any monitoring traffic flows.
``start``
    Start the monitor and feed its own process's events in timestamp
    order, then the termination signal — the same schedule the in-process
    runners realise.
``status``
    Report the monotone sent/processed counters, inbox and outbox depth,
    whether the schedule has been fed, and any recorded failure; the
    coordinator's double-count termination check sums these across workers.
``collect``
    Return verdicts (as strings), monitor metrics and fault counters.
``shutdown``
    Drain the node task and exit cleanly.

Crash/restart fault plans ride the exact PR 4 seam: the spec's plan is
parsed locally and this worker's monitor is wrapped in the same
:class:`repro.faults.MonitorFaultProxy` every other backend uses, so a
schedule means the same thing here as on the simulator — just with the
process churn happening inside a real OS process.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from collections.abc import Sequence

from ..coordination import build_topology
from ..core.monitor import DecentralizedMonitor
from ..faults import FaultInjector, apply_clock_skew
from . import codec
from .manifest import ClusterManifest, load_manifest
from .spec import RunSpec, build_cell_inputs
from .transport import (
    BACKOFF_ATTEMPTS,
    BACKOFF_CAP,
    BACKOFF_INITIAL,
    WorkerTransport,
    read_control_async,
)

__all__ = ["run_worker", "main"]


async def _dial_coordinator(
    manifest: ClusterManifest,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Connect to the coordinator's control address with bounded backoff."""
    endpoint = manifest.coordinator
    delay = BACKOFF_INITIAL
    for attempt in range(BACKOFF_ATTEMPTS):
        try:
            return await asyncio.open_connection(endpoint.host, endpoint.port)
        except OSError as error:
            if attempt == BACKOFF_ATTEMPTS - 1:
                raise ConnectionError(
                    f"cannot reach the coordinator at {endpoint} after "
                    f"{BACKOFF_ATTEMPTS} attempts: {error}"
                ) from error
            await asyncio.sleep(delay)
            delay = min(delay * 2, BACKOFF_CAP)
    raise AssertionError("unreachable")  # pragma: no cover


async def run_worker(manifest: ClusterManifest, process: int, spec: RunSpec) -> None:
    """Host monitor *process* of the run *spec* until the coordinator says stop."""
    from ..runtime.node import StreamMonitorNode

    computation, automaton, registry = build_cell_inputs(spec)
    n = spec.num_processes
    plan = spec.faults()
    skew_stats: dict[str, float] = {}
    if plan is not None and plan.clock_skew is not None:
        # every worker regenerates the full computation, so every worker
        # applies the identical deterministic skew; only worker 0 reports
        # the counters (the coordinator sums per-worker fault stats)
        computation, skew_stats = apply_clock_skew(computation, plan.clock_skew)
    initial_letters = [
        registry.local_letter(i, computation.initial_states[i]) for i in range(n)
    ]
    transport = WorkerTransport(manifest, process)
    # deterministic in (name, n, formula ownership): every worker that
    # builds from the same spec makes identical routing decisions
    route = build_topology(spec.topology, n, registry=registry)

    def make_monitor() -> DecentralizedMonitor:
        return DecentralizedMonitor(
            process=process,
            num_processes=n,
            automaton=automaton,
            registry=registry,
            initial_letters=initial_letters,
            transport=transport,
            max_views_per_state=spec.max_views_per_state,
            use_compiled_kernel=spec.compiled_kernel,
            topology=route,
        )

    injector: FaultInjector | None = None
    if plan is not None and not plan.is_noop(n):
        injector = FaultInjector(plan, n)
        endpoint = injector.wrap(process, make_monitor)
    else:
        endpoint = make_monitor()

    node = StreamMonitorNode(endpoint, transport)
    transport.attach(node)
    await transport.start()
    task = node.start_task()
    fed = False

    reader, writer = await _dial_coordinator(manifest)
    try:
        writer.write(
            codec.encode_control(
                {"kind": "hello", "process": process, "version": codec.PROTOCOL_VERSION}
            )
        )
        await writer.drain()
        while True:
            command = await read_control_async(reader)
            if command is None:  # coordinator went away: stop hosting
                return
            kind = command.get("kind")
            if kind == "start":
                endpoint.start()
                events = sorted(
                    (e for e in computation.all_events() if e.process == process),
                    key=lambda e: e.timestamp,
                )
                for event in events:
                    node.enqueue_event(event)
                node.enqueue_termination()
                fed = True
                reply: dict[str, object] = {"kind": "started"}
            elif kind == "status":
                failure = node.failure() or transport.fatal_error
                reply = {
                    "kind": "status",
                    "fed": fed,
                    "error": None if failure is None else repr(failure),
                    **transport.status(),
                }
            elif kind == "collect":
                metrics = endpoint.metrics
                reply = {
                    "kind": "result",
                    "process": process,
                    "total_events": computation.num_events,
                    "declared": sorted(str(v) for v in endpoint.declared_verdicts),
                    "reported": sorted(str(v) for v in endpoint.reported_verdicts()),
                    "token_messages": metrics.token_messages_sent,
                    "termination_messages": metrics.termination_messages_sent,
                    "digest_messages": metrics.digest_messages_sent,
                    "views_created": metrics.views_created,
                    "delayed_events": metrics.delayed_events,
                    "sent": transport.sent_count,
                    "processed": transport.processed_count,
                    "fault_stats": {
                        **(injector.fault_stats() if injector else {}),
                        **(skew_stats if process == 0 else {}),
                    },
                }
            elif kind == "shutdown":
                return
            else:
                reply = {"kind": "error", "error": f"unknown command {kind!r}"}
            writer.write(codec.encode_control(reply))
            await writer.drain()
    finally:
        node.enqueue_stop()
        await asyncio.gather(task, return_exceptions=True)
        await transport.aclose()
        writer.close()


def build_parser() -> argparse.ArgumentParser:
    """The worker's command-line interface."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--manifest", required=True, help="cluster manifest file (TOML or JSON)"
    )
    parser.add_argument(
        "--process", type=int, required=True, help="monitor id this worker hosts"
    )
    parser.add_argument("--spec", required=True, help="run spec file (JSON)")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro.cluster.worker``."""
    args = build_parser().parse_args(argv)
    manifest = load_manifest(args.manifest)
    spec = RunSpec.load(args.spec)
    if not 0 <= args.process < manifest.num_workers:
        print(
            f"error: --process {args.process} not in the manifest "
            f"(workers 0..{manifest.num_workers - 1})",
            file=sys.stderr,
        )
        return 2
    asyncio.run(run_worker(manifest, args.process, spec))
    return 0


if __name__ == "__main__":
    sys.exit(main())
