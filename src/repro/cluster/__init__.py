"""The deployable multi-host runtime: wire protocol v2 + cluster of workers.

This package promotes the streaming runtime from loopback sockets inside
one process to a real multi-process (and, via hand-written manifests,
multi-host) deployment of the paper's decentralized monitors:

* :mod:`repro.cluster.codec` — wire protocol v2, the versioned binary
  framing every runtime wire path uses (it replaced the length-prefixed
  pickle of protocol v1).
* :mod:`repro.cluster.manifest` — the static TOML/JSON directory mapping
  monitor ids to ``host:port``.
* :mod:`repro.cluster.spec` — the JSON run spec workers regenerate their
  cell from; no events travel on the wire.
* :mod:`repro.cluster.transport` / :mod:`repro.cluster.worker` — the
  per-process transport and the ``python -m repro.cluster.worker``
  entrypoint hosting one monitor each.
* :mod:`repro.cluster.coordinator` — launches/joins workers, drives the
  run, decides global quiescence and collects verdicts.

Only the codec is imported eagerly (the runtime transport needs it on every
path); the heavier coordinator/worker machinery loads on first attribute
access.
"""

from __future__ import annotations

from . import codec

__all__ = [
    "codec",
    "ClusterManifest",
    "Endpoint",
    "load_manifest",
    "loopback_manifest",
    "RunSpec",
    "ClusterReport",
    "ClusterError",
    "cluster_monitored_run",
]

_LAZY = {
    "ClusterManifest": "manifest",
    "Endpoint": "manifest",
    "load_manifest": "manifest",
    "loopback_manifest": "manifest",
    "RunSpec": "spec",
    "ClusterReport": "coordinator",
    "ClusterError": "coordinator",
    "cluster_monitored_run": "coordinator",
}


def __getattr__(name: str) -> object:
    """Resolve the lazily-exported cluster names on first access."""
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
