"""The worker-side cluster transport: one local monitor, remote peers.

Where the loopback :class:`repro.runtime.transport.TcpStreamTransport` owns
*every* node of a run inside one event loop, the cluster transport owns
exactly one — the monitor its worker process hosts — and resolves every
other monitor id to a remote address through the cluster manifest.  Messages
leave as wire protocol v2 frames (:mod:`repro.cluster.codec`) over one
persistent TCP connection per peer, opened lazily and re-opened with bounded
exponential backoff, so workers may start in any order and short peer
outages (process churn during crash/restart fault plans) do not lose the
frames queued behind the outage.

Per-channel FIFO — the algorithm's channel assumption — holds structurally:
each peer has a single outbox drained by a single writer task over a single
TCP connection, and TCP preserves byte order.

Quiescence cannot be decided locally (a frame may be in flight towards this
worker while it looks idle), so the transport only exposes monotone
counters — frames sent and messages fully processed — and the coordinator
runs a double-count termination check across all workers: the cluster is
quiescent when every worker has fed its schedule, global sent equals global
processed, every inbox and outbox is empty, and the counter totals did not
change between two consecutive polls.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

from . import codec
from .manifest import ClusterManifest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..runtime.node import StreamMonitorNode

__all__ = ["WorkerTransport", "read_frame_async", "read_control_async"]

#: first reconnect delay, doubled per attempt up to :data:`BACKOFF_CAP`
BACKOFF_INITIAL = 0.05
#: upper bound on the delay between reconnect attempts (seconds)
BACKOFF_CAP = 1.0
#: give up dialing a peer after this many consecutive failures
BACKOFF_ATTEMPTS = 40


async def read_frame_async(
    reader: asyncio.StreamReader,
) -> tuple[int, bytes] | None:
    """Read one v2 frame from *reader*; ``None`` on clean EOF between frames.

    Raises :class:`repro.cluster.codec.CorruptFrameError` on truncation
    inside a frame and the codec's own errors on bad magic or an
    unsupported protocol version.
    """
    try:
        header = await reader.readexactly(codec.HEADER.size)
    except asyncio.IncompleteReadError as error:
        if error.partial:
            raise codec.CorruptFrameError(
                f"peer disconnected mid-frame: {len(error.partial)} of "
                f"{codec.HEADER.size} frame-header bytes received"
            ) from error
        return None
    type_tag, length = codec.decode_header(header)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise codec.CorruptFrameError(
            f"peer disconnected mid-frame: {len(error.partial)} of "
            f"{length} payload bytes received"
        ) from error
    return type_tag, payload


async def read_control_async(
    reader: asyncio.StreamReader,
) -> dict[str, object] | None:
    """Read one control mapping from *reader*; ``None`` on clean EOF."""
    frame = await read_frame_async(reader)
    if frame is None:
        return None
    type_tag, payload = frame
    if type_tag != codec.TYPE_CONTROL:
        raise codec.CorruptFrameError(
            f"expected a control frame on the control channel, "
            f"got message type 0x{type_tag:02x}"
        )
    return codec.decode_control(payload)


class WorkerTransport:
    """:class:`repro.core.transport.Transport` over manifest-resolved peers.

    The local :class:`~repro.runtime.node.StreamMonitorNode` is attached
    with :meth:`attach`; sends to the local monitor id short-circuit into
    its inbox (with the same sent/processed accounting as remote frames, so
    the coordinator's double count stays balanced).
    """

    def __init__(self, manifest: ClusterManifest, process: int) -> None:
        self.manifest = manifest
        self.process = process
        self.node: StreamMonitorNode | None = None
        self._server: asyncio.AbstractServer | None = None
        self._outboxes: dict[int, asyncio.Queue] = {}
        self._writers: list[asyncio.Task] = []
        #: inbound peer connections, so ``aclose`` can end them gracefully
        #: instead of leaving their handler tasks to die with the event loop
        self._peer_tasks: set[asyncio.Task] = set()
        self._peer_writers: set[asyncio.StreamWriter] = set()
        #: frames handed to :meth:`send` and not yet written to a socket
        self.out_pending = 0
        #: monotone counter of messages sent (remote frames + local loops)
        self.sent_count = 0
        #: monotone counter of messages the local node finished processing
        self.processed_count = 0
        #: first unrecoverable transport failure, surfaced to the main task
        self.fatal_error: Exception | None = None
        self.last_delivery_time = 0.0

    # -- Transport protocol ---------------------------------------------
    def send(self, sender: int, target: int, message: object) -> None:
        """Queue one monitoring message for *target* (monitor-facing API)."""
        if target >= self.manifest.num_workers:
            raise ValueError(
                f"no worker in the manifest for monitor {target} "
                f"(workers 0..{self.manifest.num_workers - 1})"
            )
        self.sent_count += 1
        if target == self.process:
            assert self.node is not None
            self.node.enqueue_message(0.0, message)
            return
        self.out_pending += 1
        self._outbox(target).put_nowait(codec.encode_wire(0.0, message))

    def message_done(self, due: float) -> None:
        """Record that the local node finished processing one message."""
        self.processed_count += 1
        self.last_delivery_time = max(self.last_delivery_time, due)

    # -- lifecycle ------------------------------------------------------
    def attach(self, node: StreamMonitorNode) -> None:
        """Install the worker's single local node."""
        self.node = node

    async def start(self) -> None:
        """Bind this worker's listening socket at its manifest address."""
        endpoint = self.manifest.worker(self.process)
        self._server = await asyncio.start_server(
            self._serve, endpoint.host, endpoint.port
        )

    async def aclose(self) -> None:
        """Cancel the writer tasks and close the listening socket."""
        for task in self._writers:
            task.cancel()
        for task in self._writers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # feed EOF to every inbound peer handler and wait for it to return,
        # so no handler task is still pending when the event loop shuts down
        for peer_writer in list(self._peer_writers):
            peer_writer.close()
        if self._peer_tasks:
            await asyncio.gather(*self._peer_tasks, return_exceptions=True)

    # -- status for the coordinator's termination check ------------------
    def status(self) -> dict[str, int]:
        """The counters the coordinator's double-count check sums up."""
        inbox = self.node.pending_items if self.node is not None else 0
        return {
            "sent": self.sent_count,
            "processed": self.processed_count,
            "inbox": inbox,
            "out_pending": self.out_pending,
        }

    # -- internals ------------------------------------------------------
    def _outbox(self, target: int) -> asyncio.Queue:
        outbox = self._outboxes.get(target)
        if outbox is None:
            outbox = asyncio.Queue()
            self._outboxes[target] = outbox
            self._writers.append(
                asyncio.get_running_loop().create_task(self._write_loop(target, outbox))
            )
        return outbox

    async def _dial(self, target: int) -> asyncio.StreamWriter:
        """Connect to *target* with bounded exponential backoff.

        Workers start in any order and fault plans churn processes, so the
        first frames of a run routinely race the peer's ``bind``; retrying
        with a capped backoff absorbs that without any coordination.
        """
        endpoint = self.manifest.worker(target)
        delay = BACKOFF_INITIAL
        for attempt in range(BACKOFF_ATTEMPTS):
            try:
                _, writer = await asyncio.open_connection(endpoint.host, endpoint.port)
                return writer
            except OSError as error:
                if attempt == BACKOFF_ATTEMPTS - 1:
                    raise ConnectionError(
                        f"worker {self.process} cannot reach peer {target} at "
                        f"{endpoint} after {BACKOFF_ATTEMPTS} attempts: {error}"
                    ) from error
                await asyncio.sleep(delay)
                delay = min(delay * 2, BACKOFF_CAP)
        raise AssertionError("unreachable")  # pragma: no cover

    async def _write_loop(self, target: int, outbox: asyncio.Queue) -> None:
        """Drain one peer's outbox over a lazily-(re)dialed connection."""
        writer: asyncio.StreamWriter | None = None
        try:
            while True:
                frame = await outbox.get()
                while True:
                    try:
                        if writer is None:
                            writer = await self._dial(target)
                        writer.write(frame)
                        await writer.drain()
                        break
                    except (ConnectionError, OSError):
                        # peer restarted mid-run: drop the dead connection
                        # and re-send this frame on a fresh one (the frame
                        # was not acknowledged at the application level, so
                        # resending preserves at-least-once hand-off and
                        # the single-writer loop preserves FIFO)
                        if writer is not None:
                            writer.close()
                            writer = None
                self.out_pending -= 1
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - surfaced via fatal_error
            if self.fatal_error is None:
                self.fatal_error = error
        finally:
            if writer is not None:
                writer.close()

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Decode inbound frames from one peer into the local node's inbox."""
        task = asyncio.current_task()
        if task is not None:
            self._peer_tasks.add(task)
        self._peer_writers.add(writer)
        try:
            while True:
                frame = await read_frame_async(reader)
                if frame is None:
                    return
                type_tag, payload = frame
                due, message = codec.decode_wire(type_tag, payload)
                assert self.node is not None
                self.node.enqueue_message(due, message)
        except Exception as error:  # noqa: BLE001 - surfaced via fatal_error
            if self.fatal_error is None:
                self.fatal_error = error
        finally:
            self._peer_writers.discard(writer)
            if task is not None:
                self._peer_tasks.discard(task)
            writer.close()
