"""Wire protocol v2: the versioned binary codec of the cluster runtime.

Protocol v1 — the original streaming transport — framed messages as a bare
4-byte length prefix followed by a pickled payload.  Pickle on a network
socket is both a serialization hot path and a security liability (a
malicious peer gains arbitrary code execution), so v2 replaces it with an
explicit binary format shared by every runtime wire path: the loopback TCP
transport of :mod:`repro.runtime.transport`, the worker-to-worker links of
the cluster runtime, and the coordinator's control channel.

Frame layout (network byte order)::

    offset  size  field
    0       2     magic   b"RW"           (Repro Wire)
    2       1     version 0x02            (this module speaks exactly one)
    3       1     type    message type tag (see the ``TYPE_*`` constants)
    4       4     length  payload size in bytes, big-endian unsigned
    8       n     payload type-specific binary body

Monitoring frames (:data:`TYPE_TOKEN`, :data:`TYPE_TERMINATION`,
:data:`TYPE_VERDICT`, :data:`TYPE_VALUE`) carry a *delivery instant* — the virtual-time ``due``
the sending transport computed — as a leading float64, followed by the
message body.  Control frames (:data:`TYPE_CONTROL`) carry one string-keyed
mapping encoded with the same primitive layer; the coordinator/worker
handshake travels in them.

Every message type of :mod:`repro.core.messages` has a dedicated encoder
that writes dataclass fields in a fixed order with canonicalised container
order (map keys and set elements sorted), so encoding is **byte-stable**:
``encode(decode(encode(m))) == encode(m)``, which the codec property tests
enforce.  Primitive values use a compact tagged layout: variable-length
integers (LEB128, zigzag for signed), length-prefixed UTF-8 strings,
float64, one-byte booleans.

Version policy
--------------
The version byte identifies the frame layout *and* the payload encoders as
one unit; there is no in-band downgrade.  A decoder that sees a version it
does not speak raises :class:`ProtocolVersionError` naming both versions, so
a mixed-version cluster fails fast at the handshake with an actionable
diagnostic instead of corrupting a run.  Bumping the protocol means bumping
:data:`PROTOCOL_VERSION` and teaching the decoder both layouts for one
release.
"""

from __future__ import annotations

import struct
from typing import BinaryIO

from ..core.messages import TerminationNotice, Token, TokenEntry, VerdictAnnouncement

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "HEADER",
    "TYPE_TOKEN",
    "TYPE_TERMINATION",
    "TYPE_VERDICT",
    "TYPE_VALUE",
    "TYPE_CONTROL",
    "CodecError",
    "CorruptFrameError",
    "ProtocolVersionError",
    "encode_message",
    "decode_message",
    "encode_wire",
    "decode_wire",
    "encode_control",
    "decode_control",
    "decode_header",
    "split_frame",
]

#: the two magic bytes opening every v2 frame
MAGIC = b"RW"
#: the wire protocol version this codec speaks (exactly one)
PROTOCOL_VERSION = 2

#: frame header: magic (2s) + version (B) + type (B) + payload length (I)
HEADER = struct.Struct(">2sBBI")

#: a :class:`repro.core.messages.Token` with its delivery instant
TYPE_TOKEN = 0x01
#: a :class:`repro.core.messages.TerminationNotice` with its delivery instant
TYPE_TERMINATION = 0x02
#: an arbitrary primitive value with its delivery instant (tests, probes)
TYPE_VALUE = 0x03
#: a :class:`repro.core.messages.VerdictAnnouncement` with its delivery instant
TYPE_VERDICT = 0x04
#: a string-keyed control mapping (coordinator/worker handshake)
TYPE_CONTROL = 0x10

_FLOAT64 = struct.Struct(">d")


class CodecError(ValueError):
    """Base class for every wire-codec failure."""


class CorruptFrameError(CodecError):
    """A frame that is structurally invalid (bad magic, type, or payload)."""


class ProtocolVersionError(CodecError):
    """A frame whose wire protocol version this codec does not speak."""

    def __init__(self, peer_version: int) -> None:
        self.peer_version = peer_version
        super().__init__(
            f"peer speaks wire protocol version {peer_version}, this node "
            f"speaks only version {PROTOCOL_VERSION}; run matching releases "
            f"on every cluster node (pickled v1 frames are not accepted)"
        )


# ---------------------------------------------------------------------------
# primitive layer: varints, strings, floats, tagged values
# ---------------------------------------------------------------------------
def _w_uvarint(out: bytearray, value: int) -> None:
    """Append *value* (non-negative) as a LEB128 varint."""
    if value < 0:
        raise CodecError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _r_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    """Read one LEB128 varint at *pos*; returns ``(value, new_pos)``."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CorruptFrameError("truncated payload: varint runs past the end")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CorruptFrameError("malformed varint: more than 64 bits")


def _w_svarint(out: bytearray, value: int) -> None:
    """Append a signed integer, zigzag-mapped onto a uvarint."""
    _w_uvarint(out, (value << 1) ^ (value >> 63) if value < 0 else value << 1)


def _r_svarint(data: bytes, pos: int) -> tuple[int, int]:
    """Read one zigzag-encoded signed integer."""
    raw, pos = _r_uvarint(data, pos)
    return (raw >> 1) ^ -(raw & 1), pos


def _w_str(out: bytearray, value: str) -> None:
    encoded = value.encode("utf-8")
    _w_uvarint(out, len(encoded))
    out += encoded


def _r_str(data: bytes, pos: int) -> tuple[str, int]:
    length, pos = _r_uvarint(data, pos)
    end = pos + length
    if end > len(data):
        raise CorruptFrameError(
            f"truncated payload: string of {length} bytes runs past the end"
        )
    return data[pos:end].decode("utf-8"), end


def _w_float(out: bytearray, value: float) -> None:
    out += _FLOAT64.pack(value)


def _r_float(data: bytes, pos: int) -> tuple[float, int]:
    end = pos + _FLOAT64.size
    if end > len(data):
        raise CorruptFrameError("truncated payload: float64 runs past the end")
    return _FLOAT64.unpack_from(data, pos)[0], end


# value tags for the generic tagged encoder (TYPE_VALUE / control payloads)
_V_NONE, _V_FALSE, _V_TRUE, _V_INT, _V_FLOAT, _V_STR, _V_BYTES = range(7)
_V_LIST, _V_MAP, _V_SET = 7, 8, 9


def _w_value(out: bytearray, value: object) -> None:
    """Append one tagged primitive value (the generic recursive layer)."""
    if value is None:
        out.append(_V_NONE)
    elif value is False:
        out.append(_V_FALSE)
    elif value is True:
        out.append(_V_TRUE)
    elif isinstance(value, int):
        out.append(_V_INT)
        _w_svarint(out, value)
    elif isinstance(value, float):
        out.append(_V_FLOAT)
        _w_float(out, value)
    elif isinstance(value, str):
        out.append(_V_STR)
        _w_str(out, value)
    elif isinstance(value, (bytes, bytearray)):
        out.append(_V_BYTES)
        _w_uvarint(out, len(value))
        out += value
    elif isinstance(value, (list, tuple)):
        out.append(_V_LIST)
        _w_uvarint(out, len(value))
        for item in value:
            _w_value(out, item)
    elif isinstance(value, dict):
        out.append(_V_MAP)
        _w_uvarint(out, len(value))
        for key in sorted(value, key=repr):
            _w_value(out, key)
            _w_value(out, value[key])
    elif isinstance(value, (set, frozenset)):
        out.append(_V_SET)
        _w_uvarint(out, len(value))
        for item in sorted(value, key=repr):
            _w_value(out, item)
    else:
        raise CodecError(
            f"wire protocol v2 cannot encode {type(value).__name__} values"
        )


def _r_value(data: bytes, pos: int) -> tuple[object, int]:
    """Read one tagged primitive value."""
    if pos >= len(data):
        raise CorruptFrameError("truncated payload: value tag runs past the end")
    tag = data[pos]
    pos += 1
    if tag == _V_NONE:
        return None, pos
    if tag == _V_FALSE:
        return False, pos
    if tag == _V_TRUE:
        return True, pos
    if tag == _V_INT:
        return _r_svarint(data, pos)
    if tag == _V_FLOAT:
        return _r_float(data, pos)
    if tag == _V_STR:
        return _r_str(data, pos)
    if tag == _V_BYTES:
        length, pos = _r_uvarint(data, pos)
        end = pos + length
        if end > len(data):
            raise CorruptFrameError("truncated payload: bytes run past the end")
        return data[pos:end], end
    if tag == _V_LIST:
        length, pos = _r_uvarint(data, pos)
        items = []
        for _ in range(length):
            item, pos = _r_value(data, pos)
            items.append(item)
        return items, pos
    if tag == _V_MAP:
        length, pos = _r_uvarint(data, pos)
        mapping = {}
        for _ in range(length):
            key, pos = _r_value(data, pos)
            val, pos = _r_value(data, pos)
            mapping[key] = val
        return mapping, pos
    if tag == _V_SET:
        length, pos = _r_uvarint(data, pos)
        items = set()
        for _ in range(length):
            item, pos = _r_value(data, pos)
            items.add(item)
        return items, pos
    raise CorruptFrameError(f"unknown value tag 0x{tag:02x} in payload")


# ---------------------------------------------------------------------------
# message-specific encoders: fixed field order, canonical container order
# ---------------------------------------------------------------------------
def _w_opt_int(out: bytearray, value: int | None) -> None:
    if value is None:
        out.append(0)
    else:
        out.append(1)
        _w_svarint(out, value)


def _r_opt_int(data: bytes, pos: int) -> tuple[int | None, int]:
    if pos >= len(data):
        raise CorruptFrameError("truncated payload: optional flag missing")
    flag = data[pos]
    pos += 1
    if flag == 0:
        return None, pos
    return _r_svarint(data, pos)


def _w_bool_map(out: bytearray, mapping) -> None:
    """A ``str -> bool`` mapping in sorted key order."""
    _w_uvarint(out, len(mapping))
    for key in sorted(mapping):
        _w_str(out, key)
        out.append(1 if mapping[key] else 0)


def _r_bool_map(data: bytes, pos: int) -> tuple[dict[str, bool], int]:
    length, pos = _r_uvarint(data, pos)
    mapping: dict[str, bool] = {}
    for _ in range(length):
        key, pos = _r_str(data, pos)
        if pos >= len(data):
            raise CorruptFrameError("truncated payload: bool map value missing")
        mapping[key] = bool(data[pos])
        pos += 1
    return mapping, pos


def _w_int_list(out: bytearray, values) -> None:
    _w_uvarint(out, len(values))
    for value in values:
        _w_svarint(out, value)


def _r_int_list(data: bytes, pos: int) -> tuple[list[int], int]:
    length, pos = _r_uvarint(data, pos)
    values = []
    for _ in range(length):
        value, pos = _r_svarint(data, pos)
        values.append(value)
    return values, pos


def _w_letter(out: bytearray, letter) -> None:
    """A letter — ``frozenset[str]`` — in sorted element order."""
    _w_uvarint(out, len(letter))
    for name in sorted(letter):
        _w_str(out, name)


def _r_letter(data: bytes, pos: int) -> tuple[frozenset, int]:
    length, pos = _r_uvarint(data, pos)
    names = []
    for _ in range(length):
        name, pos = _r_str(data, pos)
        names.append(name)
    return frozenset(names), pos


def _w_entry(out: bytearray, entry: TokenEntry) -> None:
    """Encode one :class:`TokenEntry`, fields in declaration order."""
    _w_opt_int(out, entry.transition_id)
    _w_bool_map(out, entry.guard)
    _w_uvarint(out, len(entry.conjuncts))
    for conjunct in entry.conjuncts:
        _w_bool_map(out, conjunct)
    _w_int_list(out, entry.start_cut)
    _w_int_list(out, entry.cut)
    _w_int_list(out, entry.depend)
    _w_int_list(out, entry.min_positions)
    _w_uvarint(out, len(entry.satisfied))
    for flag in entry.satisfied:
        out.append(1 if flag else 0)
    _w_uvarint(out, len(entry.letters))
    for process in sorted(entry.letters):
        _w_svarint(out, process)
        _w_letter(out, entry.letters[process])
    _w_uvarint(out, len(entry.scanned_letters))
    for process in sorted(entry.scanned_letters):
        _w_svarint(out, process)
        scanned = entry.scanned_letters[process]
        _w_uvarint(out, len(scanned))
        for sn in sorted(scanned):
            _w_svarint(out, sn)
            _w_letter(out, scanned[sn])
    _w_uvarint(out, len(entry.scanned_vcs))
    for process in sorted(entry.scanned_vcs):
        _w_svarint(out, process)
        scanned = entry.scanned_vcs[process]
        _w_uvarint(out, len(scanned))
        for sn in sorted(scanned):
            _w_svarint(out, sn)
            _w_int_list(out, scanned[sn])
    # eval is tri-state: None / False / True
    out.append(0 if entry.eval is None else (2 if entry.eval else 1))
    _w_opt_int(out, entry.parked_on)
    _w_int_list(out, sorted(entry.waiting_for))


def _r_entry(data: bytes, pos: int) -> tuple[TokenEntry, int]:
    """Decode one :class:`TokenEntry`."""
    transition_id, pos = _r_opt_int(data, pos)
    guard, pos = _r_bool_map(data, pos)
    count, pos = _r_uvarint(data, pos)
    conjuncts = []
    for _ in range(count):
        conjunct, pos = _r_bool_map(data, pos)
        conjuncts.append(conjunct)
    start_cut, pos = _r_int_list(data, pos)
    cut, pos = _r_int_list(data, pos)
    depend, pos = _r_int_list(data, pos)
    min_positions, pos = _r_int_list(data, pos)
    count, pos = _r_uvarint(data, pos)
    if pos + count > len(data):
        raise CorruptFrameError("truncated payload: satisfied flags run past the end")
    satisfied = [bool(b) for b in data[pos : pos + count]]
    pos += count
    count, pos = _r_uvarint(data, pos)
    letters = {}
    for _ in range(count):
        process, pos = _r_svarint(data, pos)
        letter, pos = _r_letter(data, pos)
        letters[process] = letter
    count, pos = _r_uvarint(data, pos)
    scanned_letters: dict[int, dict] = {}
    for _ in range(count):
        process, pos = _r_svarint(data, pos)
        inner_count, pos = _r_uvarint(data, pos)
        inner: dict[int, frozenset] = {}
        for _ in range(inner_count):
            sn, pos = _r_svarint(data, pos)
            letter, pos = _r_letter(data, pos)
            inner[sn] = letter
        scanned_letters[process] = inner
    count, pos = _r_uvarint(data, pos)
    scanned_vcs: dict[int, dict] = {}
    for _ in range(count):
        process, pos = _r_svarint(data, pos)
        inner_count, pos = _r_uvarint(data, pos)
        vcs: dict[int, tuple[int, ...]] = {}
        for _ in range(inner_count):
            sn, pos = _r_svarint(data, pos)
            vc, pos = _r_int_list(data, pos)
            vcs[sn] = tuple(vc)
        scanned_vcs[process] = vcs
    if pos >= len(data):
        raise CorruptFrameError("truncated payload: eval flag missing")
    eval_tag = data[pos]
    pos += 1
    if eval_tag > 2:
        raise CorruptFrameError(f"invalid eval tag 0x{eval_tag:02x} in token entry")
    evaluation = None if eval_tag == 0 else eval_tag == 2
    parked_on, pos = _r_opt_int(data, pos)
    waiting, pos = _r_int_list(data, pos)
    entry = TokenEntry(
        transition_id=transition_id,
        guard=guard,
        conjuncts=conjuncts,
        start_cut=start_cut,
        cut=cut,
        depend=depend,
        min_positions=min_positions,
        satisfied=satisfied,
        letters=letters,
        scanned_letters=scanned_letters,
        scanned_vcs=scanned_vcs,
        eval=evaluation,
        parked_on=parked_on,
        waiting_for=set(waiting),
    )
    return entry, pos


def encode_message(message: object) -> tuple[int, bytes]:
    """Encode one wire message; returns ``(type_tag, payload_body)``.

    :class:`Token` and :class:`TerminationNotice` use their dedicated binary
    encoders; any other (primitive) value falls back to the generic tagged
    layout under :data:`TYPE_VALUE`.
    """
    out = bytearray()
    if isinstance(message, Token):
        _w_svarint(out, message.parent_process)
        _w_svarint(out, message.parent_view)
        _w_svarint(out, message.parent_event_sn)
        _w_svarint(out, message.token_id)
        _w_svarint(out, message.hops)
        _w_uvarint(out, len(message.entries))
        for entry in message.entries:
            _w_entry(out, entry)
        return TYPE_TOKEN, bytes(out)
    if isinstance(message, TerminationNotice):
        _w_svarint(out, message.process)
        _w_svarint(out, message.final_event_sn)
        return TYPE_TERMINATION, bytes(out)
    if isinstance(message, VerdictAnnouncement):
        _w_svarint(out, message.origin)
        _w_str(out, message.verdict)
        return TYPE_VERDICT, bytes(out)
    _w_value(out, message)
    return TYPE_VALUE, bytes(out)


def decode_message(type_tag: int, body: bytes) -> object:
    """Decode one payload body previously produced by :func:`encode_message`."""
    if type_tag == TYPE_TOKEN:
        pos = 0
        parent_process, pos = _r_svarint(body, pos)
        parent_view, pos = _r_svarint(body, pos)
        parent_event_sn, pos = _r_svarint(body, pos)
        token_id, pos = _r_svarint(body, pos)
        hops, pos = _r_svarint(body, pos)
        count, pos = _r_uvarint(body, pos)
        entries = []
        for _ in range(count):
            entry, pos = _r_entry(body, pos)
            entries.append(entry)
        _check_consumed(body, pos)
        return Token(
            parent_process=parent_process,
            parent_view=parent_view,
            parent_event_sn=parent_event_sn,
            entries=entries,
            token_id=token_id,
            hops=hops,
        )
    if type_tag == TYPE_TERMINATION:
        pos = 0
        process, pos = _r_svarint(body, pos)
        final_event_sn, pos = _r_svarint(body, pos)
        _check_consumed(body, pos)
        return TerminationNotice(process=process, final_event_sn=final_event_sn)
    if type_tag == TYPE_VERDICT:
        pos = 0
        origin, pos = _r_svarint(body, pos)
        verdict, pos = _r_str(body, pos)
        _check_consumed(body, pos)
        return VerdictAnnouncement(origin=origin, verdict=verdict)
    if type_tag == TYPE_VALUE:
        value, pos = _r_value(body, 0)
        _check_consumed(body, pos)
        return value
    raise CorruptFrameError(f"unknown message type 0x{type_tag:02x}")


def _check_consumed(body: bytes, pos: int) -> None:
    if pos != len(body):
        raise CorruptFrameError(
            f"corrupt payload: {len(body) - pos} trailing bytes after the message"
        )


# ---------------------------------------------------------------------------
# frame assembly and splitting
# ---------------------------------------------------------------------------
def encode_wire(due: float, message: object) -> bytes:
    """One complete monitoring frame: header + delivery instant + message."""
    type_tag, body = encode_message(message)
    payload = _FLOAT64.pack(due) + body
    return HEADER.pack(MAGIC, PROTOCOL_VERSION, type_tag, len(payload)) + payload


def decode_wire(type_tag: int, payload: bytes) -> tuple[float, object]:
    """Decode a monitoring frame payload into ``(due, message)``."""
    if len(payload) < _FLOAT64.size:
        raise CorruptFrameError(
            f"truncated payload: {len(payload)} bytes cannot hold the "
            f"delivery instant"
        )
    due = _FLOAT64.unpack_from(payload, 0)[0]
    return due, decode_message(type_tag, payload[_FLOAT64.size :])


def encode_control(mapping: dict[str, object]) -> bytes:
    """One complete control frame carrying a string-keyed mapping."""
    out = bytearray()
    _w_value(out, dict(mapping))
    return HEADER.pack(MAGIC, PROTOCOL_VERSION, TYPE_CONTROL, len(out)) + bytes(out)


def decode_control(payload: bytes) -> dict[str, object]:
    """Decode a control frame payload back into its mapping."""
    value, pos = _r_value(payload, 0)
    _check_consumed(payload, pos)
    if not isinstance(value, dict):
        raise CorruptFrameError(
            f"control frame carries {type(value).__name__}, expected a mapping"
        )
    return value


def decode_header(header: bytes) -> tuple[int, int]:
    """Validate one 8-byte frame header; returns ``(type_tag, length)``.

    Raises :class:`CorruptFrameError` on a bad magic (including v1 pickled
    frames, whose length prefix can never start with ``b"RW"``) and
    :class:`ProtocolVersionError` on a version this codec does not speak.
    """
    if len(header) != HEADER.size:
        raise CorruptFrameError(
            f"short header: {len(header)} of {HEADER.size} bytes"
        )
    magic, version, type_tag, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise CorruptFrameError(
            f"bad frame magic {magic!r}: not a repro wire frame "
            f"(v1 length-prefixed pickle framing is no longer supported)"
        )
    if version != PROTOCOL_VERSION:
        raise ProtocolVersionError(version)
    return type_tag, length


def split_frame(frame: bytes) -> tuple[int, bytes]:
    """Split one in-memory frame into ``(type_tag, payload)`` (tests, bench)."""
    type_tag, length = decode_header(frame[: HEADER.size])
    payload = frame[HEADER.size :]
    if len(payload) != length:
        raise CorruptFrameError(
            f"frame length mismatch: header announces {length} payload "
            f"bytes, {len(payload)} present"
        )
    return type_tag, payload


def write_frame(stream: BinaryIO, due: float, message: object) -> None:
    """Write one monitoring frame to a blocking binary *stream*."""
    stream.write(encode_wire(due, message))


def read_frame(stream: BinaryIO) -> tuple[float, object] | None:
    """Read one monitoring frame from a blocking binary *stream*.

    Returns ``None`` on a clean EOF between frames; raises
    :class:`CorruptFrameError` on truncation inside a frame.
    """
    header = stream.read(HEADER.size)
    if not header:
        return None
    if len(header) < HEADER.size:
        raise CorruptFrameError(
            f"stream ended mid-frame: {len(header)} of {HEADER.size} "
            f"header bytes"
        )
    type_tag, length = decode_header(header)
    payload = stream.read(length)
    if len(payload) < length:
        raise CorruptFrameError(
            f"stream ended mid-frame: {len(payload)} of {length} payload bytes"
        )
    return decode_wire(type_tag, payload)
