"""The cluster coordinator: launch workers, drive a run, collect verdicts.

The coordinator is the cluster counterpart of the in-process runners: given
a :class:`~repro.cluster.spec.RunSpec` and a manifest it (optionally)
spawns one :mod:`repro.cluster.worker` OS process per monitor, performs the
version-checked hello handshake over the control channel, broadcasts
``start``, and then decides **global quiescence** with a double-count
termination check — the cluster analogue of the streaming transport's
conservative ``in_flight`` counter:

    every worker has fed its schedule
    ∧ Σ sent == Σ processed  (frames cannot be counted processed early)
    ∧ every inbox and outbox is empty
    ∧ the counter totals are unchanged since the previous poll

Two consecutive stable polls are required because a frame can be on the
wire — sent but not yet enqueued anywhere — while a single poll looks
balanced.  Once quiescent, the coordinator collects per-worker verdicts and
metrics, aggregates them into a :class:`ClusterReport` shaped like the
other backends' run reports, and shuts the workers down.

With ``spawn_workers=False`` the coordinator only *joins* workers that were
started by hand (``python -m repro.cluster.worker``) on the manifest's
hosts — the multi-host deployment mode; the spec and manifest files must
then be distributed out of band.
"""

from __future__ import annotations

import asyncio
import errno
import os
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..ltl.verdict import Verdict
from . import codec
from .manifest import ClusterManifest, load_manifest, loopback_manifest
from .spec import RunSpec
from .transport import read_control_async

__all__ = ["ClusterReport", "ClusterError", "cluster_monitored_run", "coordinate"]

#: seconds between two status polls of the termination check
_POLL_INTERVAL = 0.02


class ClusterError(RuntimeError):
    """A cluster run failed (handshake, worker death, or lost quiescence)."""


@dataclass
class ClusterReport:
    """Aggregated metrics and outcomes of one cluster run.

    Attribute-compatible with :class:`repro.runtime.runner.RuntimeReport`
    for everything the experiment engine consumes, so sweep cells treat the
    cluster backend exactly like the others.  The cluster has no shared
    virtual clock, so the virtual-time delay metric is identically zero —
    wall-clock duration is in ``wall_seconds``.
    """

    num_processes: int
    total_events: int
    monitor_messages: int
    token_messages: int
    termination_messages: int
    total_global_views: int
    delayed_events: int
    reported_verdicts: frozenset[Verdict]
    declared_verdicts: frozenset[Verdict]
    #: topology digest messages (gossip forwards and verdict announcements);
    #: defaults to zero so reports from workers predating the counter load
    digest_messages: int = 0
    network_stats: dict[str, float] = field(default_factory=dict)
    fault_stats: dict[str, float] = field(default_factory=dict)
    #: untouched per-worker ``collect`` replies, for inspection
    worker_results: list[dict[str, object]] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def delay_time_percentage_per_view(self) -> float:
        """Virtual-time delay metric; zero by construction on this backend."""
        return 0.0


class _WorkerHandle:
    """One connected worker's control channel plus its subprocess, if spawned."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.proc: asyncio.subprocess.Process | None = None
        self.stderr_task: asyncio.Task | None = None

    async def call(self, command: dict[str, object]) -> dict[str, object]:
        """Send one command and await its reply (the channel is lockstep)."""
        self.writer.write(codec.encode_control(command))
        await self.writer.drain()
        reply = await read_control_async(self.reader)
        if reply is None:
            raise ClusterError(
                f"worker closed its control channel during {command.get('kind')!r}"
            )
        return reply


async def _spawn_worker(
    process: int, manifest_path: Path, spec_path: Path
) -> asyncio.subprocess.Process:
    """Launch one worker subprocess with the repro package importable."""
    src_dir = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir if not existing else os.pathsep.join([src_dir, existing])
    return await asyncio.create_subprocess_exec(
        sys.executable,
        "-m",
        "repro.cluster.worker",
        "--manifest",
        str(manifest_path),
        "--process",
        str(process),
        "--spec",
        str(spec_path),
        env=env,
        stdout=asyncio.subprocess.DEVNULL,
        stderr=asyncio.subprocess.PIPE,
    )


async def coordinate(
    spec: RunSpec,
    manifest: ClusterManifest,
    *,
    spawn_workers: bool = True,
    quiesce_timeout: float = 120.0,
) -> ClusterReport:
    """Drive one cluster run end to end and return its aggregated report."""
    started = time.perf_counter()
    n = spec.num_processes
    if manifest.num_workers < n:
        raise ClusterError(
            f"manifest has {manifest.num_workers} workers but the run needs "
            f"{n} monitor processes"
        )

    connected: dict[int, _WorkerHandle] = {}
    all_joined = asyncio.Event()
    handshake_error: list[Exception] = []

    async def accept(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            hello = await read_control_async(reader)
        except codec.CodecError as error:
            handshake_error.append(error)
            all_joined.set()
            writer.close()
            return
        if hello is None or hello.get("kind") != "hello":
            writer.close()
            return
        version = hello.get("version")
        if version != codec.PROTOCOL_VERSION:
            peer = version if isinstance(version, int) else -1
            handshake_error.append(codec.ProtocolVersionError(peer))
            all_joined.set()
            writer.close()
            return
        process = hello.get("process")
        if isinstance(process, int) and 0 <= process < n and process not in connected:
            connected[process] = _WorkerHandle(reader, writer)
            if len(connected) == n:
                all_joined.set()
        else:
            writer.close()

    server = await asyncio.start_server(
        accept, manifest.coordinator.host, manifest.coordinator.port
    )
    procs: list[asyncio.subprocess.Process] = []
    stderr_tasks: list[asyncio.Task] = []
    tmp_dir: tempfile.TemporaryDirectory | None = None
    try:
        if spawn_workers:
            tmp_dir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            manifest_path = manifest.save(Path(tmp_dir.name) / "manifest.json")
            spec_path = spec.save(Path(tmp_dir.name) / "spec.json")
            for process in range(n):
                proc = await _spawn_worker(process, manifest_path, spec_path)
                procs.append(proc)
                stderr_tasks.append(asyncio.ensure_future(proc.stderr.read()))

        join_deadline = asyncio.get_running_loop().time() + quiesce_timeout
        while not all_joined.is_set():
            # fail fast instead of sitting out the whole join timeout when a
            # spawned worker already died (e.g. lost the loopback-port race)
            if any(proc.returncode is not None for proc in procs):
                raise ClusterError(
                    "a worker died before joining the coordinator"
                    + await _dead_worker_details(procs, stderr_tasks)
                )
            if asyncio.get_running_loop().time() > join_deadline:
                missing = sorted(set(range(n)) - set(connected))
                raise ClusterError(
                    f"workers {missing} never joined the coordinator at "
                    f"{manifest.coordinator} within {quiesce_timeout}s"
                    + await _dead_worker_details(procs, stderr_tasks)
                )
            try:
                await asyncio.wait_for(all_joined.wait(), timeout=_POLL_INTERVAL)
            except asyncio.TimeoutError:
                pass
        if handshake_error:
            raise handshake_error[0]
        for process, proc in enumerate(procs):
            connected[process].proc = proc
            connected[process].stderr_task = stderr_tasks[process]

        for process in range(n):
            reply = await connected[process].call({"kind": "start"})
            if reply.get("kind") != "started":
                raise ClusterError(f"worker {process} failed to start: {reply}")

        await _await_quiescence(connected, procs, stderr_tasks, quiesce_timeout)

        results = []
        for process in range(n):
            reply = await connected[process].call({"kind": "collect"})
            if reply.get("kind") != "result":
                raise ClusterError(f"worker {process} failed to collect: {reply}")
            results.append(reply)

        for process in range(n):
            handle = connected[process]
            handle.writer.write(codec.encode_control({"kind": "shutdown"}))
            await handle.writer.drain()
            handle.writer.close()
        for proc in procs:
            try:
                await asyncio.wait_for(proc.wait(), timeout=10.0)
            except asyncio.TimeoutError:
                proc.kill()
    finally:
        server.close()
        await server.wait_closed()
        for proc in procs:
            if proc.returncode is None:
                proc.kill()
                await proc.wait()
        for task in stderr_tasks:
            if not task.done():
                task.cancel()
        if tmp_dir is not None:
            tmp_dir.cleanup()

    return _aggregate(spec, results, time.perf_counter() - started)


async def _dead_worker_details(
    procs: list[asyncio.subprocess.Process], stderr_tasks: list[asyncio.Task]
) -> str:
    """Describe any spawned worker that already exited, with its stderr."""
    details = []
    for process, proc in enumerate(procs):
        if proc.returncode is not None:
            tail = ""
            task = stderr_tasks[process]
            if task.done() and not task.cancelled() and task.exception() is None:
                tail = task.result().decode("utf-8", "replace").strip()
            details.append(
                f"worker {process} exited with code {proc.returncode}"
                + (f":\n{tail}" if tail else "")
            )
    return ("\n" + "\n".join(details)) if details else ""


async def _await_quiescence(
    connected: dict[int, _WorkerHandle],
    procs: list[asyncio.subprocess.Process],
    stderr_tasks: list[asyncio.Task],
    timeout: float,
) -> None:
    """Poll worker counters until the double-count check holds twice."""
    deadline = asyncio.get_running_loop().time() + timeout
    previous: tuple[int, int] | None = None
    stable = 0
    while True:
        for proc in procs:
            if proc.returncode is not None:
                raise ClusterError(
                    "a worker died mid-run"
                    + await _dead_worker_details(procs, stderr_tasks)
                )
        statuses = []
        for process in sorted(connected):
            status = await connected[process].call({"kind": "status"})
            if status.get("error"):
                raise ClusterError(
                    f"worker {process} reported a failure: {status['error']}"
                )
            statuses.append(status)
        totals = (
            sum(int(s["sent"]) for s in statuses),
            sum(int(s["processed"]) for s in statuses),
        )
        idle = (
            all(s["fed"] for s in statuses)
            and all(int(s["inbox"]) == 0 for s in statuses)
            and all(int(s["out_pending"]) == 0 for s in statuses)
            and totals[0] == totals[1]
        )
        if idle and totals == previous:
            stable += 1
            if stable >= 2:
                return
        else:
            stable = 0
        previous = totals if idle else None
        if asyncio.get_running_loop().time() > deadline:
            raise ClusterError(
                f"cluster run did not quiesce within {timeout}s "
                f"(sent={totals[0]}, processed={totals[1]})"
            )
        await asyncio.sleep(_POLL_INTERVAL)


def _aggregate(
    spec: RunSpec, results: list[dict[str, object]], wall_seconds: float
) -> ClusterReport:
    """Fold per-worker collect replies into one run report."""
    fault_stats: dict[str, float] = {}
    for result in results:
        for key, value in dict(result.get("fault_stats") or {}).items():
            fault_stats[key] = fault_stats.get(key, 0.0) + float(value)
    return ClusterReport(
        num_processes=spec.num_processes,
        total_events=int(results[0]["total_events"]),
        monitor_messages=sum(int(r["sent"]) for r in results),
        token_messages=sum(int(r["token_messages"]) for r in results),
        termination_messages=sum(int(r["termination_messages"]) for r in results),
        digest_messages=sum(int(r.get("digest_messages", 0)) for r in results),
        total_global_views=sum(int(r["views_created"]) for r in results),
        delayed_events=sum(int(r["delayed_events"]) for r in results),
        reported_verdicts=frozenset(
            Verdict(v) for r in results for v in r["reported"]
        ),
        declared_verdicts=frozenset(
            Verdict(v) for r in results for v in r["declared"]
        ),
        fault_stats=fault_stats,
        worker_results=results,
        wall_seconds=wall_seconds,
    )


#: fresh loopback manifests tried before giving up on a port-bind race
_BIND_RACE_ATTEMPTS = 3


def _is_bind_race(error: Exception) -> bool:
    """Whether *error* means an auto-allocated loopback port was taken."""
    if isinstance(error, OSError):
        return error.errno == errno.EADDRINUSE
    return "address already in use" in str(error).lower()


def cluster_monitored_run(
    spec: RunSpec,
    manifest: ClusterManifest | str | Path | None = None,
    *,
    spawn_workers: bool = True,
    quiesce_timeout: float = 120.0,
) -> ClusterReport:
    """Run one spec on a cluster and return its report (sync wrapper).

    *manifest* may be a :class:`ClusterManifest`, a manifest file path, or
    ``None`` — in which case a loopback manifest with freshly allocated
    ports is generated, which is the ``run --backend cluster`` default.
    Because those ports are allocated by probe-and-release, another process
    can grab one in the window before a node binds it; auto-allocated runs
    therefore retry with a fresh manifest when they lose that race.  Pinned
    manifests never retry — a busy port there is a deployment error.
    """
    if manifest is not None and not isinstance(manifest, ClusterManifest):
        manifest = load_manifest(manifest)
    attempts = _BIND_RACE_ATTEMPTS if manifest is None else 1
    for attempt in range(attempts):
        chosen = (
            loopback_manifest(spec.num_processes) if manifest is None else manifest
        )
        try:
            return asyncio.run(
                coordinate(
                    spec,
                    chosen,
                    spawn_workers=spawn_workers,
                    quiesce_timeout=quiesce_timeout,
                )
            )
        except (ClusterError, OSError) as error:
            if attempt + 1 < attempts and _is_bind_race(error):
                continue
            raise
    raise AssertionError("unreachable")  # pragma: no cover
