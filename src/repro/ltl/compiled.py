"""Compiled monitor kernel: bitmask letters over dense transition tables.

The synthesized LTL3 monitor (:class:`repro.ltl.dfa.MooreMachine`) interprets
each transition as a hash + two dictionary lookups over ``frozenset[str]``
letters.  This module compiles such a machine — whose alphabet is complete
over its atom set, as every machine built by :mod:`repro.ltl.monitor` and
:mod:`repro.ltl.progression` is — into a :class:`CompiledMachine`:

* **Letters are integer bitmasks.**  Atom ``i`` (in sorted atom order) is bit
  ``1 << i``; a letter is the OR of its atoms' bits.  Projection of foreign
  atoms (propositions of processes the formula never mentions) falls out of
  :meth:`CompiledMachine.encode` for free, and combining per-process letters
  into a global letter is a masked integer OR instead of frozenset
  construction + hashing.
* **The bitmask IS the column index.**  ``delta`` is stored as one flat dense
  ``array('i')`` of ``num_states * 2**n_atoms`` entries laid out as
  ``state * n_letters + mask``, so a transition is a single indexed load with
  no per-letter dictionary at all.
* **Batched stepping.**  :meth:`CompiledMachine.run_batch` advances a whole
  event window in one call through a pointer-chased node table (one list
  index per event), returning both the final state and the index of the
  first conclusive verdict; :meth:`CompiledMachine.combine_batch` OR-combines
  per-process mask streams (vectorised through numpy when it is importable,
  with a pure-Python fallback otherwise); :meth:`CompiledMachine.outputs_batch`
  is the vectorised Moore-output lookup.

numpy is strictly optional: every operation has a pure-Python code path and
the numpy views are built lazily only when requested on a host that has it.
:func:`compile_machine` returns ``None`` (callers keep the interpreted
machine) when a machine cannot be compiled: its alphabet is not the full
``2**n_atoms`` assignment set, or the dense table would exceed
:data:`MAX_TABLE_ENTRIES`.
"""

from __future__ import annotations

from array import array
from collections.abc import Callable, Hashable, Iterable, Sequence
from typing import Any

from .dfa import Letter, MooreMachine

__all__ = ["CompiledMachine", "compile_machine", "MAX_TABLE_ENTRIES"]

#: refuse to materialise dense tables larger than this (states × 2**atoms);
#: the case-study machines are thousands of times smaller
MAX_TABLE_ENTRIES = 1 << 24

try:  # pragma: no cover - exercised indirectly on hosts with numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on hosts without numpy
    _np = None

#: chunk size of the :meth:`CompiledMachine.run_batch` fast path; finality is
#: only re-checked at chunk boundaries when conclusive states are absorbing
_BATCH_CHUNK = 4096


def _default_is_final(output: Hashable) -> bool:
    """Treat outputs with a truthy ``is_final`` attribute as conclusive."""
    return bool(getattr(output, "is_final", False))


class CompiledMachine:
    """A Moore machine compiled to bitmask letters and a dense flat table.

    Instances are built by :func:`compile_machine`; the constructor arguments
    mirror the compiled representation directly.

    Attributes
    ----------
    atoms:
        The machine's atoms in bit order (``atoms[i]`` is bit ``1 << i``).
    n_letters:
        ``2 ** len(atoms)`` — the dense column count; a letter's bitmask is
        its column index.
    initial:
        Index of the initial state.
    table:
        Flat dense successor table: ``table[state * n_letters + mask]``.
    outputs:
        Per-state Moore outputs (verdicts for monitor machines).
    """

    __slots__ = (
        "atoms",
        "atom_bit",
        "n_letters",
        "num_states",
        "initial",
        "table",
        "outputs",
        "final_flags",
        "final_absorbing",
        "_nodes",
        "_np_table",
        "_np_outputs",
    )

    def __init__(
        self,
        atoms: Sequence[str],
        initial: int,
        table: array,
        outputs: Sequence[Hashable],
        final_flags: Sequence[bool],
    ) -> None:
        self.atoms: tuple[str, ...] = tuple(atoms)
        self.atom_bit: dict[str, int] = {a: 1 << i for i, a in enumerate(self.atoms)}
        self.n_letters: int = 1 << len(self.atoms)
        self.num_states: int = len(outputs)
        self.initial: int = initial
        self.table: array = table
        self.outputs: tuple[Hashable, ...] = tuple(outputs)
        self.final_flags: tuple[bool, ...] = tuple(bool(f) for f in final_flags)
        # finality is *absorbing* when no conclusive state can leave the
        # conclusive set — true for every LTL3 monitor (⊤/⊥ are trap states)
        # and the property the chunked run_batch fast path relies on
        L = self.n_letters
        self.final_absorbing: bool = all(
            self.final_flags[table[s * L + m]]
            for s in range(self.num_states)
            if self.final_flags[s]
            for m in range(L)
        )
        # node-chained view of the table: nodes[s][mask] is the *node* of the
        # successor state, so a batched step is one list index per event;
        # node[L] is the state id and node[L + 1] its finality flag
        nodes: list[list[Any]] = [[None] * (L + 2) for _ in range(self.num_states)]
        for s in range(self.num_states):
            row = nodes[s]
            base = s * L
            for m in range(L):
                row[m] = nodes[table[base + m]]
            row[L] = s
            row[L + 1] = 1 if self.final_flags[s] else 0
        self._nodes: list[list[Any]] = nodes
        self._np_table: Any = None
        self._np_outputs: Any = None

    # ------------------------------------------------------------------
    # letter encoding
    # ------------------------------------------------------------------
    def encode(self, letter: Iterable[str]) -> int:
        """Bitmask of *letter* (a set of true atoms).

        Atoms outside the machine's alphabet contribute no bits, so foreign
        propositions are projected away with no frozenset construction.
        """
        bits = self.atom_bit
        mask = 0
        for atom in letter:
            bit = bits.get(atom)
            if bit is not None:
                mask |= bit
        return mask

    def encode_many(self, letters: Iterable[Iterable[str]]) -> array:
        """Encode a stream of letters into a compact ``array('i')`` buffer.

        The buffer indexes, slices and iterates like a list of ints, and
        :meth:`combine_batch` combines such buffers zero-copy through
        ``numpy.frombuffer`` instead of converting element by element.
        """
        encode = self.encode
        return array("i", (encode(letter) for letter in letters))

    def decode(self, mask: int) -> Letter:
        """The letter (frozenset of true atoms) a bitmask denotes."""
        return frozenset(
            atom for atom, bit in self.atom_bit.items() if mask & bit
        )

    def combine_batch(self, mask_rows: Sequence[Sequence[int]]) -> list[int]:
        """OR-combine per-process mask streams into global letter masks.

        ``mask_rows[j][i]`` is the mask of process *j* at event *i*; the
        result is the per-event OR across processes — the compiled
        counterpart of the monitor's frozenset-union ``_combine``.  Uses a
        vectorised ``numpy.bitwise_or`` reduction when numpy is importable
        and falls back to a pure-Python fold otherwise.
        """
        if not mask_rows:
            return []
        if len(mask_rows) == 1:
            return list(mask_rows[0])
        if _np is not None:
            if all(isinstance(row, array) for row in mask_rows):
                # encode_many buffers: reinterpret the raw bytes zero-copy
                rows = [
                    _np.frombuffer(row, dtype=f"=i{row.itemsize}")
                    for row in mask_rows
                ]
            else:
                rows = [_np.asarray(row, dtype=_np.int64) for row in mask_rows]
            combined = rows[0]
            for row in rows[1:]:
                combined = combined | row
            return combined.tolist()
        folded = list(mask_rows[0])
        for row in mask_rows[1:]:
            folded = [a | b for a, b in zip(folded, row)]
        return folded

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, state: int, mask: int) -> int:
        """Successor of *state* after reading the letter bitmask *mask*."""
        return self.table[state * self.n_letters + mask]

    def step_letter(self, state: int, letter: Iterable[str]) -> int:
        """Successor of *state* after reading a (possibly foreign) letter."""
        return self.table[state * self.n_letters + self.encode(letter)]

    def run(self, masks: Iterable[int], start: int | None = None) -> int:
        """State reached after reading *masks* from *start* (default initial)."""
        node = self._nodes[self.initial if start is None else start]
        for mask in masks:
            node = node[mask]
        return node[self.n_letters]

    def run_batch(
        self, state: int, masks: Sequence[int]
    ) -> tuple[int, int]:
        """Advance *state* over a whole event window in one call.

        Returns ``(final_state, first_final_index)`` where
        ``first_final_index`` is the index of the event after which the
        machine first sat in a conclusive (final-flagged) state, or ``-1``
        when no consumed event leaves it in one (an empty window always
        reports ``-1``, even from a conclusive state).  When finality is
        absorbing (true
        for LTL3 monitors) the hot loop runs chunked with one list index per
        event and only re-scans the single chunk where the verdict landed.
        """
        L = self.n_letters
        node = self._nodes[state]
        if not self.final_absorbing:
            first = -1
            for i, mask in enumerate(masks):
                node = node[mask]
                if first < 0 and node[L + 1]:
                    first = i
            return node[L], first
        if node[L + 1]:
            # already conclusive at entry: absorbing finality keeps every
            # subsequent state conclusive, so the first event qualifies
            for mask in masks:
                node = node[mask]
            return node[L], 0 if masks else -1
        total = len(masks)
        for base in range(0, total, _BATCH_CHUNK):
            chunk = masks[base : base + _BATCH_CHUNK]
            entry = node
            for mask in chunk:
                node = node[mask]
            if node[L + 1]:
                # the verdict became conclusive inside this chunk: replay it
                # with per-step checks to locate the exact event index
                return self._scan_from(entry, masks, base)
        return node[L], -1

    def _scan_from(
        self, node: list[Any], masks: Sequence[int], base: int
    ) -> tuple[int, int]:
        """Per-step finality scan used to pinpoint the conclusive index."""
        L = self.n_letters
        first = -1
        for i in range(base, len(masks)):
            node = node[masks[i]]
            if node[L + 1]:
                first = i
                break
        if first >= 0:
            for i in range(first + 1, len(masks)):
                node = node[masks[i]]
        return node[L], first

    # ------------------------------------------------------------------
    # outputs
    # ------------------------------------------------------------------
    def output(self, state: int) -> Hashable:
        """The Moore output (verdict) of *state*."""
        return self.outputs[state]

    def is_final(self, state: int) -> bool:
        """Whether *state* carries a conclusive (final-flagged) output."""
        return self.final_flags[state]

    def outputs_batch(self, states: Sequence[int]) -> list[Hashable]:
        """Vectorised Moore-output lookup for a batch of states.

        Uses numpy fancy indexing over an object array when numpy is
        importable and the batch is large enough to amortise the conversion;
        a list comprehension otherwise (identical results either way).
        """
        if _np is not None and len(states) >= 64:
            if self._np_outputs is None:
                self._np_outputs = _np.array(self.outputs, dtype=object)
            return self._np_outputs[_np.asarray(states, dtype=_np.intp)].tolist()
        outputs = self.outputs
        return [outputs[s] for s in states]

    def numpy_table(self) -> Any:
        """The dense table as a ``(num_states, n_letters)`` numpy view.

        Returns ``None`` when numpy is not importable — callers must fall
        back to :attr:`table` (the portable ``array('i')`` representation).
        """
        if _np is None:
            return None
        if self._np_table is None:
            self._np_table = _np.asarray(self.table, dtype=_np.int32).reshape(
                self.num_states, self.n_letters
            )
        return self._np_table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledMachine(states={self.num_states}, atoms={len(self.atoms)}, "
            f"n_letters={self.n_letters})"
        )


def compile_machine(
    machine: MooreMachine,
    is_final: Callable[[Hashable], bool] | None = None,
) -> CompiledMachine | None:
    """Compile *machine* into a :class:`CompiledMachine`, if possible.

    Returns ``None`` — callers keep the interpreted machine — when the
    machine's alphabet is not the complete ``2**n_atoms`` assignment set over
    its atoms (the dense mask→column identity would have holes) or when the
    dense table would exceed :data:`MAX_TABLE_ENTRIES`.

    *is_final* classifies Moore outputs as conclusive for
    :meth:`CompiledMachine.run_batch`; the default treats outputs exposing a
    truthy ``is_final`` attribute (e.g. :class:`repro.ltl.verdict.Verdict`)
    as conclusive.
    """
    atoms = sorted(machine._atom_universe())
    n_letters = 1 << len(atoms)
    if len(machine.letters) != n_letters:
        return None
    if machine.num_states * n_letters > MAX_TABLE_ENTRIES:
        return None
    bit = {atom: 1 << i for i, atom in enumerate(atoms)}
    column_of_mask = [0] * n_letters
    letter_index = {letter: i for i, letter in enumerate(machine.letters)}
    for mask in range(n_letters):
        letter = frozenset(atom for atom in atoms if mask & bit[atom])
        column = letter_index.get(letter)
        if column is None:
            return None  # incomplete alphabet: some assignment is missing
        column_of_mask[mask] = column
    table = array("i", bytes(0))
    for state in range(machine.num_states):
        row = machine.delta[state]
        table.extend(row[column_of_mask[mask]] for mask in range(n_letters))
    predicate = is_final if is_final is not None else _default_is_final
    return CompiledMachine(
        atoms=atoms,
        initial=machine.initial,
        table=table,
        outputs=machine.outputs,
        final_flags=[predicate(output) for output in machine.outputs],
    )
