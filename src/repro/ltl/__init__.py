"""LTL formulas, semantics and LTL3 monitor synthesis.

Public API
----------

* :func:`repro.ltl.parse` — parse a formula from concrete syntax.
* Formula constructors (:class:`Atom`, :class:`And`, :class:`Until`, …).
* :func:`repro.ltl.build_monitor` — synthesise the LTL3 monitor automaton.
* :class:`repro.ltl.MonitorAutomaton` / :class:`repro.ltl.Transition`.
* :class:`repro.ltl.Verdict` — the 3-valued verdict domain.
* :class:`repro.ltl.Proposition` / :class:`repro.ltl.PropositionRegistry` —
  binding of atomic propositions to per-process predicates.
"""

from .ast import (
    FALSE,
    TRUE,
    Always,
    And,
    Atom,
    Eventually,
    FalseConst,
    Formula,
    Iff,
    Implies,
    Next,
    Not,
    Or,
    Release,
    TrueConst,
    Until,
    atoms_of,
    intern_formula,
    intern_table_size,
    mk_always,
    mk_and,
    mk_atom,
    mk_eventually,
    mk_false,
    mk_iff,
    mk_implies,
    mk_next,
    mk_not,
    mk_or,
    mk_release,
    mk_true,
    mk_until,
    subformulas,
)
from .boolmin import Implicant, implicant_to_str, minimize_letters
from .buchi import BuchiAutomaton, Guard, ltl_to_buchi, nonempty_states
from .compiled import CompiledMachine, compile_machine
from .dfa import MooreMachine, determinize
from .monitor import MonitorAutomaton, Transition, build_monitor
from .parser import LTLSyntaxError, parse
from .predicates import LocalState, Proposition, PropositionRegistry
from .rewriting import expand, negate, simplify, to_nnf
from .semantics import (
    all_assignments,
    evaluate_lasso,
    extensions_agree,
    ltl3_bruteforce,
)
from .verdict import Verdict

__all__ = [
    "FALSE",
    "TRUE",
    "Always",
    "And",
    "Atom",
    "Eventually",
    "FalseConst",
    "Formula",
    "Iff",
    "Implies",
    "Next",
    "Not",
    "Or",
    "Release",
    "TrueConst",
    "Until",
    "atoms_of",
    "subformulas",
    "intern_formula",
    "intern_table_size",
    "mk_always",
    "mk_and",
    "mk_atom",
    "mk_eventually",
    "mk_false",
    "mk_iff",
    "mk_implies",
    "mk_next",
    "mk_not",
    "mk_or",
    "mk_release",
    "mk_true",
    "mk_until",
    "Implicant",
    "implicant_to_str",
    "minimize_letters",
    "BuchiAutomaton",
    "Guard",
    "ltl_to_buchi",
    "nonempty_states",
    "MooreMachine",
    "determinize",
    "CompiledMachine",
    "compile_machine",
    "MonitorAutomaton",
    "Transition",
    "build_monitor",
    "LTLSyntaxError",
    "parse",
    "LocalState",
    "Proposition",
    "PropositionRegistry",
    "expand",
    "negate",
    "simplify",
    "to_nnf",
    "all_assignments",
    "evaluate_lasso",
    "extensions_agree",
    "ltl3_bruteforce",
    "Verdict",
]
