"""The three-valued verdict domain of LTL3."""

from __future__ import annotations

import enum

__all__ = ["Verdict"]


class Verdict(enum.Enum):
    """Evaluation verdict of an LTL3 monitor.

    ``TOP`` (⊤) means every infinite extension of the observed finite trace
    satisfies the property, ``BOTTOM`` (⊥) means every extension violates it,
    and ``INCONCLUSIVE`` (?) means both satisfying and violating extensions
    exist.
    """

    TOP = "⊤"
    BOTTOM = "⊥"
    INCONCLUSIVE = "?"

    def __str__(self) -> str:
        return self.value

    @property
    def is_final(self) -> bool:
        """``True`` for ⊤ and ⊥ — verdicts that can never change again."""
        return self is not Verdict.INCONCLUSIVE
