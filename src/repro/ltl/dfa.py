"""Deterministic Moore machines: construction helpers and minimisation.

The LTL3 monitor is a deterministic finite-state Moore machine whose outputs
are verdicts.  This module provides the generic machinery — reachability
restriction, product of subset constructions and Moore minimisation — used by
:mod:`repro.ltl.monitor`.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Sequence

from dataclasses import dataclass, field

__all__ = ["MooreMachine", "determinize"]

Letter = frozenset[str]

#: cap on cached foreign-letter projections per machine (see
#: :meth:`MooreMachine.step`); beyond it, projections are recomputed rather
#: than cached so adversarial streams of distinct letters cannot leak memory
_PROJECTION_CACHE_LIMIT = 4096


@dataclass
class MooreMachine:
    """A complete deterministic Moore machine over an explicit alphabet.

    Attributes
    ----------
    letters:
        The explicit alphabet (each letter is a set of true atoms).
    initial:
        Index of the initial state.
    delta:
        ``delta[state][letter_index]`` is the successor state index.
    outputs:
        ``outputs[state]`` is the (hashable) output of the state.
    """

    letters: tuple[Letter, ...]
    initial: int
    delta: list[list[int]]
    outputs: list[Hashable]
    state_names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.state_names:
            self.state_names = [f"q{i}" for i in range(len(self.outputs))]
        self._letter_index: dict[Letter, int] = {
            letter: i for i, letter in enumerate(self.letters)
        }
        #: atoms the machine's alphabet actually mentions, for projection
        self._atoms: frozenset[str] = frozenset().union(*self.letters) if self.letters else frozenset()
        if len(self.delta) != len(self.outputs):
            raise ValueError("delta and outputs must have the same number of states")
        for row in self.delta:
            if len(row) != len(self.letters):
                raise ValueError("each delta row must cover the whole alphabet")

    @property
    def num_states(self) -> int:
        return len(self.outputs)

    def step(self, state: int, letter: Letter) -> int:
        """Successor of *state* after reading *letter*.

        Letters may mention atoms outside the machine's alphabet (e.g.
        propositions of processes not appearing in the formula); they are
        projected onto the known atoms.  Projections of letters seen are
        cached — up to :data:`_PROJECTION_CACHE_LIMIT` entries beyond the
        alphabet itself, so streams of ever-distinct foreign letters cannot
        grow the cache without bound — making the common per-transition cost
        two dictionary lookups.
        """
        column = self._letter_index.get(letter)
        if column is None:
            projected = frozenset(a for a in letter if a in self._atoms)
            column = self._letter_index[projected]
            if len(self._letter_index) < len(self.letters) + _PROJECTION_CACHE_LIMIT:
                self._letter_index[letter] = column
        return self.delta[state][column]

    def _atom_universe(self) -> frozenset[str]:
        return self._atoms

    def run(self, word: Sequence[Letter], start: int | None = None) -> int:
        """State reached after reading *word* from *start* (default: initial)."""
        state = self.initial if start is None else start
        for letter in word:
            state = self.step(state, letter)
        return state

    def output_of_run(self, word: Sequence[Letter]) -> Hashable:
        return self.outputs[self.run(word)]

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def reachable(self) -> "MooreMachine":
        """Restrict the machine to states reachable from the initial state."""
        seen = {self.initial}
        order = [self.initial]
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            for target in self.delta[state]:
                if target not in seen:
                    seen.add(target)
                    order.append(target)
                    frontier.append(target)
        remap = {old: new for new, old in enumerate(order)}
        delta = [
            [remap[self.delta[old][c]] for c in range(len(self.letters))]
            for old in order
        ]
        outputs = [self.outputs[old] for old in order]
        names = [self.state_names[old] for old in order]
        return MooreMachine(
            letters=self.letters,
            initial=remap[self.initial],
            delta=delta,
            outputs=outputs,
            state_names=names,
        )

    def minimize(self) -> "MooreMachine":
        """Moore-minimise the machine (output-preserving partition refinement)."""
        machine = self.reachable()
        n = machine.num_states
        # initial partition: by output
        outputs_to_block: dict[Hashable, int] = {}
        block_of = [0] * n
        for state in range(n):
            key = machine.outputs[state]
            if key not in outputs_to_block:
                outputs_to_block[key] = len(outputs_to_block)
            block_of[state] = outputs_to_block[key]

        while True:
            signature: dict[tuple, int] = {}
            new_block_of = [0] * n
            for state in range(n):
                sig = (
                    block_of[state],
                    tuple(block_of[t] for t in machine.delta[state]),
                )
                if sig not in signature:
                    signature[sig] = len(signature)
                new_block_of[state] = signature[sig]
            if new_block_of == block_of:
                break
            block_of = new_block_of

        num_blocks = max(block_of) + 1
        representative = [-1] * num_blocks
        for state in range(n):
            if representative[block_of[state]] == -1:
                representative[block_of[state]] = state

        delta = [
            [
                block_of[machine.delta[representative[b]][c]]
                for c in range(len(machine.letters))
            ]
            for b in range(num_blocks)
        ]
        outputs = [machine.outputs[representative[b]] for b in range(num_blocks)]
        minimized = MooreMachine(
            letters=machine.letters,
            initial=block_of[machine.initial],
            delta=delta,
            outputs=outputs,
        )
        return minimized.reachable()

    def letters_between(self, source: int, target: int) -> list[Letter]:
        """All letters taking *source* to *target* in one step."""
        return [
            letter
            for i, letter in enumerate(self.letters)
            if self.delta[source][i] == target
        ]


def determinize(
    letters: Sequence[Letter],
    initial_sets: Sequence[frozenset[Hashable]],
    successor_fns: Sequence[Callable[[frozenset[Hashable], Letter], frozenset[Hashable]]],
    output_fn: Callable[[tuple[frozenset[Hashable], ...]], Hashable],
) -> MooreMachine:
    """Joint subset construction of several NFAs into one Moore machine.

    Each component ``i`` starts in ``initial_sets[i]`` and evolves with
    ``successor_fns[i]``.  A product state is the tuple of per-component
    subsets; its Moore output is ``output_fn(product_state)``.  Only states
    reachable from the initial product state are constructed.
    """
    letters = tuple(letters)
    initial = tuple(initial_sets)
    index: dict[tuple[frozenset[Hashable], ...], int] = {initial: 0}
    order: list[tuple[frozenset[Hashable], ...]] = [initial]
    delta: list[list[int]] = []
    frontier = [initial]
    while frontier:
        product = frontier.pop(0)
        row: list[int] = []
        for letter in letters:
            successor = tuple(
                successor_fns[i](product[i], letter) for i in range(len(product))
            )
            if successor not in index:
                index[successor] = len(order)
                order.append(successor)
                frontier.append(successor)
            row.append(index[successor])
        delta.append(row)
    outputs = [output_fn(product) for product in order]
    return MooreMachine(letters=letters, initial=0, delta=delta, outputs=outputs)
