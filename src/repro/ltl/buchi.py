"""LTL to Büchi automaton translation (Gerth–Peled–Vardi–Wolper tableau).

The construction follows the classic on-the-fly algorithm of Gerth, Peled,
Vardi and Wolper (PSTV 1995):

1. The input formula is brought into negation normal form.
2. The tableau expansion produces a graph of *nodes*; each node carries the
   literals that must hold *now* (``old``) and the obligations postponed to
   the next position (``next``).
3. The node graph is read as a **generalised Büchi automaton** (GBA) with one
   acceptance set per ``Until`` subformula.
4. The GBA is degeneralised into an ordinary Büchi automaton (NBA) with a
   counter construction.

On top of the automaton, :func:`nonempty_states` computes for every state
whether the language accepted *from that state* is non-empty — the key
ingredient of the LTL3 monitor construction (Bauer–Leucker–Schallhart).
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass, field

from .ast import (
    And,
    Atom,
    FalseConst,
    Formula,
    Next,
    Not,
    Or,
    Release,
    TrueConst,
    Until,
)
from .rewriting import simplify, to_nnf

__all__ = [
    "Guard",
    "BuchiAutomaton",
    "ltl_to_buchi",
    "nonempty_states",
    "is_satisfiable",
]


@dataclass(frozen=True)
class Guard:
    """A conjunction of literals labelling a Büchi transition.

    ``positive`` atoms must be true and ``negative`` atoms must be false for
    the guard to be satisfied by a letter (a set of true atoms).
    """

    positive: frozenset[str]
    negative: frozenset[str]

    def satisfied_by(self, letter: frozenset[str]) -> bool:
        return self.positive <= letter and not (self.negative & letter)

    def is_consistent(self) -> bool:
        return not (self.positive & self.negative)

    def __str__(self) -> str:
        parts = [a for a in sorted(self.positive)]
        parts += [f"!{a}" for a in sorted(self.negative)]
        return " & ".join(parts) if parts else "true"


@dataclass
class BuchiAutomaton:
    """A (state-accepting) nondeterministic Büchi automaton.

    Attributes
    ----------
    states:
        Opaque hashable state identifiers.
    initial:
        The set of initial states.
    transitions:
        Mapping ``state -> list of (Guard, successor)``.
    accepting:
        The Büchi acceptance set.
    atoms:
        The atomic propositions the guards may mention.
    """

    states: set[object] = field(default_factory=set)
    initial: set[object] = field(default_factory=set)
    transitions: dict[object, list[tuple[Guard, object]]] = field(default_factory=dict)
    accepting: set[object] = field(default_factory=set)
    atoms: tuple[str, ...] = ()

    def successors(self, state: object, letter: frozenset[str]) -> set[object]:
        """States reachable from *state* by reading *letter*."""
        result = set()
        for guard, target in self.transitions.get(state, ()):
            if guard.satisfied_by(letter):
                result.add(target)
        return result

    def run_prefix(self, word: Sequence[frozenset[str]]) -> set[object]:
        """The set of states reachable from the initial states on *word*."""
        current = set(self.initial)
        for letter in word:
            nxt: set[object] = set()
            for state in current:
                nxt |= self.successors(state, letter)
            current = nxt
            if not current:
                break
        return current

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        return sum(len(v) for v in self.transitions.values())


# ---------------------------------------------------------------------------
# GPVW tableau
# ---------------------------------------------------------------------------


class _Node:
    """A tableau node of the GPVW construction."""

    __slots__ = ("name", "incoming", "new", "old", "next")
    _counter = itertools.count()

    def __init__(
        self,
        incoming: set[int],
        new: set[Formula],
        old: set[Formula],
        nxt: set[Formula],
    ) -> None:
        self.name = next(_Node._counter)
        self.incoming = set(incoming)
        self.new = set(new)
        self.old = set(old)
        self.next = set(nxt)


_INIT = -1  # pseudo initial node name


def _is_literal(formula: Formula) -> bool:
    return isinstance(formula, (Atom, TrueConst, FalseConst)) or (
        isinstance(formula, Not) and isinstance(formula.operand, Atom)
    )


def _negation_of(formula: Formula) -> Formula:
    if isinstance(formula, Not):
        return formula.operand
    return Not(formula)


def _expand(node: _Node, nodes: list[_Node]) -> list[_Node]:
    """The recursive ``expand`` procedure of GPVW (iterative set semantics)."""
    if not node.new:
        for existing in nodes:
            if existing.old == node.old and existing.next == node.next:
                existing.incoming |= node.incoming
                return nodes
        nodes.append(node)
        successor = _Node(
            incoming={node.name}, new=set(node.next), old=set(), nxt=set()
        )
        return _expand(successor, nodes)

    formula = next(iter(node.new))
    node.new.discard(formula)

    if _is_literal(formula):
        if isinstance(formula, FalseConst) or _negation_of(formula) in node.old:
            return nodes  # contradiction: discard this node
        if not isinstance(formula, TrueConst):
            node.old.add(formula)
        return _expand(node, nodes)

    if isinstance(formula, And):
        node.old.add(formula)
        for child in (formula.left, formula.right):
            if child not in node.old:
                node.new.add(child)
        return _expand(node, nodes)

    if isinstance(formula, Next):
        node.old.add(formula)
        node.next.add(formula.operand)
        return _expand(node, nodes)

    if isinstance(formula, (Or, Until, Release)):
        node.old.add(formula)
        if isinstance(formula, Or):
            new1 = {formula.left}
            new2 = {formula.right}
            next1: set[Formula] = set()
        elif isinstance(formula, Until):
            new1 = {formula.left}
            new2 = {formula.right}
            next1 = {formula}
        else:  # Release
            new1 = {formula.right}
            new2 = {formula.left, formula.right}
            next1 = {formula}

        node1 = _Node(
            incoming=set(node.incoming),
            new=node.new | (new1 - node.old),
            old=set(node.old),
            nxt=node.next | next1,
        )
        node2 = _Node(
            incoming=set(node.incoming),
            new=node.new | (new2 - node.old),
            old=set(node.old),
            nxt=set(node.next),
        )
        nodes = _expand(node1, nodes)
        return _expand(node2, nodes)

    raise TypeError(f"formula not in NNF: {formula}")


def _node_guard(node: _Node) -> Guard:
    positive = set()
    negative = set()
    for formula in node.old:
        if isinstance(formula, Atom):
            positive.add(formula.name)
        elif isinstance(formula, Not) and isinstance(formula.operand, Atom):
            negative.add(formula.operand.name)
    return Guard(frozenset(positive), frozenset(negative))


def _tableau(formula: Formula) -> tuple[list[_Node], list[Formula]]:
    """Run the GPVW expansion and return the nodes plus the Until subformulas."""
    nnf = simplify(to_nnf(formula))
    start = _Node(incoming={_INIT}, new={nnf}, old=set(), nxt=set())
    nodes = _expand(start, [])
    untils = sorted(
        {f for node in nodes for f in node.old if isinstance(f, Until)},
        key=str,
    )
    # Untils that only ever appear in `next` obligations still matter for
    # acceptance, so also scan the `next` sets.
    more = sorted(
        {f for node in nodes for f in node.next if isinstance(f, Until)}, key=str
    )
    for f in more:
        if f not in untils:
            untils.append(f)
    return nodes, untils


def ltl_to_buchi(formula: Formula, atoms: Sequence[str] | None = None) -> BuchiAutomaton:
    """Translate *formula* into a nondeterministic Büchi automaton.

    Parameters
    ----------
    formula:
        Any LTL formula (it is normalised internally).
    atoms:
        Optional explicit alphabet; defaults to the atoms appearing in the
        formula.  Supplying a larger alphabet does not change the automaton's
        guards, only its advertised ``atoms`` attribute.
    """
    from .ast import atoms_of

    nodes, untils = _tableau(formula)
    if atoms is None:
        atoms = atoms_of(formula)

    # --- generalised Büchi automaton over the tableau nodes ---------------
    node_by_name = {node.name: node for node in nodes}
    gba_states = set(node_by_name)
    gba_initial = {node.name for node in nodes if _INIT in node.incoming}
    gba_edges: dict[int, list[tuple[Guard, int]]] = {name: [] for name in gba_states}
    for node in nodes:
        guard = _node_guard(node)
        for source in node.incoming:
            if source == _INIT:
                continue
            gba_edges.setdefault(source, []).append((guard, node.name))

    # acceptance sets: for each Until f1 U f2, nodes where the until is
    # either not pending or already fulfilled
    acceptance_sets: list[set[int]] = []
    for until in untils:
        acceptance_sets.append(
            {
                node.name
                for node in nodes
                if until not in node.old or until.right in node.old
            }
        )
    if not acceptance_sets:
        acceptance_sets = [set(gba_states)]

    # --- degeneralisation --------------------------------------------------
    k = len(acceptance_sets)
    nba = BuchiAutomaton(atoms=tuple(atoms))
    initial_guards: dict[int, Guard] = {
        node.name: _node_guard(node) for node in nodes
    }

    def deg_state(name: int, copy: int) -> tuple[int, int]:
        return (name, copy)

    # A fresh initial state reading the first letter via the guards of the
    # GBA initial nodes keeps the automaton transition-labelled.
    init_state = ("init", 0)
    nba.states.add(init_state)
    nba.initial.add(init_state)
    nba.transitions[init_state] = []

    for name in gba_states:
        for copy in range(k):
            state = deg_state(name, copy)
            nba.states.add(state)
            nba.transitions.setdefault(state, [])

    def next_copy(name: int, copy: int) -> int:
        return (copy + 1) % k if name in acceptance_sets[copy] else copy

    for name in gba_states:
        for copy in range(k):
            state = deg_state(name, copy)
            target_copy = next_copy(name, copy)
            for guard, target in gba_edges.get(name, ()):
                nba.transitions[state].append((guard, deg_state(target, target_copy)))

    # initial transitions: reading the first letter moves into an initial
    # GBA node provided its guard is satisfied
    for name in gba_initial:
        nba.transitions[init_state].append((initial_guards[name], deg_state(name, 0)))

    nba.accepting = {
        deg_state(name, 0) for name in acceptance_sets[0] if name in gba_states
    }
    return nba


# ---------------------------------------------------------------------------
# Per-state emptiness
# ---------------------------------------------------------------------------


def _strongly_connected_components(
    states: set[object], edges: dict[object, list[object]]
) -> list[set[object]]:
    """Iterative Tarjan SCC computation (avoids Python recursion limits)."""
    index: dict[object, int] = {}
    lowlink: dict[object, int] = {}
    on_stack: set[object] = set()
    stack: list[object] = []
    result: list[set[object]] = []
    counter = itertools.count()

    for root in states:
        if root in index:
            continue
        work = [(root, iter(edges.get(root, ())))]
        index[root] = lowlink[root] = next(counter)
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = next(counter)
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(edges.get(succ, ()))))
                    advanced = True
                    break
                elif succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                result.append(component)
    return result


def nonempty_states(automaton: BuchiAutomaton) -> set[object]:
    """States of *automaton* from which the accepted language is non-empty.

    A state's language is non-empty iff it can reach an accepting state that
    lies on a cycle (equivalently, an accepting state inside a non-trivial
    strongly connected component or with a self-loop).
    """
    succ: dict[object, list[object]] = {
        s: [t for _, t in automaton.transitions.get(s, ())] for s in automaton.states
    }
    components = _strongly_connected_components(set(automaton.states), succ)
    live_accepting: set[object] = set()
    for component in components:
        nontrivial = len(component) > 1 or any(
            s in succ.get(s, ()) for s in component
        )
        if not nontrivial:
            continue
        live_accepting |= component & automaton.accepting

    # backward reachability from live accepting states
    predecessors: dict[object, set[object]] = {s: set() for s in automaton.states}
    for source, targets in succ.items():
        for target in targets:
            predecessors.setdefault(target, set()).add(source)
    reachable = set(live_accepting)
    frontier = list(live_accepting)
    while frontier:
        state = frontier.pop()
        for pred in predecessors.get(state, ()):
            if pred not in reachable:
                reachable.add(pred)
                frontier.append(pred)
    return reachable


def is_satisfiable(formula: Formula) -> bool:
    """Whether some infinite word satisfies *formula*.

    Decided by translating the formula to a Büchi automaton and checking that
    the language from an initial state is non-empty.
    """
    automaton = ltl_to_buchi(formula)
    live = nonempty_states(automaton)
    return bool(automaton.initial & live)
