"""LTL3 monitor automaton synthesis (Bauer–Leucker–Schallhart construction).

Given an LTL formula ``φ`` the monitor automaton ``A_φ`` is the unique
deterministic Moore machine such that for any finite trace ``α`` the output of
the state reached on ``α`` equals the LTL3 valuation ``[α ⊨ φ]``:

* ``⊤`` — every infinite continuation of ``α`` satisfies ``φ``;
* ``⊥`` — every infinite continuation violates ``φ``;
* ``?`` — both kinds of continuation exist.

Construction
------------
1. Translate ``φ`` and ``¬φ`` into Büchi automata (:mod:`repro.ltl.buchi`).
2. Mark, in each automaton, the states with a non-empty language.
3. Run a joint subset construction; a product state is ``(P, N)`` where ``P``
   (resp. ``N``) is the subset of the ``φ`` (resp. ``¬φ``) automaton.  The
   verdict is ``⊥`` when ``P`` contains no live state, ``⊤`` when ``N``
   contains no live state, and ``?`` otherwise.
4. Moore-minimise the result.
5. Express every edge of the minimised machine as a small set of conjunctive
   guards (sum-of-products over the atomic propositions) — this is the
   transition representation the paper's decentralized algorithm works with
   (and the quantity counted in Table 5.1).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from dataclasses import dataclass

from .ast import Formula, Not, atoms_of
from .boolmin import implicant_to_str, minimize_letters
from .buchi import BuchiAutomaton, ltl_to_buchi, nonempty_states
from .compiled import CompiledMachine, compile_machine
from .dfa import MooreMachine, determinize
from .parser import parse
from .semantics import all_assignments
from .verdict import Verdict

__all__ = ["Transition", "MonitorAutomaton", "build_monitor"]

Letter = frozenset[str]


@dataclass(frozen=True)
class Transition:
    """A conjunctive transition of the monitor automaton.

    ``guard`` maps atomic proposition names to the truth value they must take
    for the transition to fire; atoms absent from the mapping are
    don't-cares.  A transition with an empty guard fires on every letter
    (rendered ``true``).
    """

    transition_id: int
    source: int
    target: int
    guard: Mapping[str, bool]

    @property
    def is_self_loop(self) -> bool:
        return self.source == self.target

    def guard_satisfied(self, letter: Letter) -> bool:
        """Whether *letter* (set of true atoms) satisfies the guard."""
        for atom, required in self.guard.items():
            if (atom in letter) != required:
                return False
        return True

    def guard_str(self) -> str:
        return implicant_to_str(dict(self.guard))

    def __str__(self) -> str:
        return f"q{self.source} --[{self.guard_str()}]--> q{self.target}"


class MonitorAutomaton:
    """The deterministic LTL3 monitor (Moore machine) for a formula.

    The class exposes both the *letter-level* transition function
    (:meth:`step`) used when a full global-state valuation is available, and
    the *predicate-level* view (:attr:`transitions`) used by the decentralized
    algorithm, where each edge is a conjunction of per-process propositions.
    """

    def __init__(
        self,
        formula: Formula,
        atoms: Sequence[str],
        machine: MooreMachine,
    ) -> None:
        self.formula = formula
        self.atoms: tuple[str, ...] = tuple(atoms)
        self._machine = machine
        self._compiled: CompiledMachine | None = None
        self._compile_attempted = False
        self.initial_state: int = machine.initial
        self.transitions: list[Transition] = self._build_transitions()
        self._outgoing: dict[int, list[Transition]] = {}
        self._self_loops: dict[int, list[Transition]] = {}
        for transition in self.transitions:
            if transition.is_self_loop:
                self._self_loops.setdefault(transition.source, []).append(transition)
            else:
                self._outgoing.setdefault(transition.source, []).append(transition)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_transitions(self) -> list[Transition]:
        transitions: list[Transition] = []
        next_id = 0
        machine = self._machine
        for source in range(machine.num_states):
            targets = sorted(set(machine.delta[source]))
            for target in targets:
                letters = machine.letters_between(source, target)
                for implicant in minimize_letters(letters, self.atoms):
                    transitions.append(
                        Transition(
                            transition_id=next_id,
                            source=source,
                            target=target,
                            guard=dict(implicant),
                        )
                    )
                    next_id += 1
        return transitions

    # ------------------------------------------------------------------
    # basic Moore-machine interface
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return self._machine.num_states

    @property
    def states(self) -> list[int]:
        return list(range(self._machine.num_states))

    def verdict(self, state: int) -> Verdict:
        """The verdict (Moore output) of *state*."""
        return self._machine.outputs[state]  # type: ignore[return-value]

    @property
    def compiled(self) -> CompiledMachine | None:
        """The compiled (bitmask/dense-table) form of the machine, if any.

        Compiled lazily on first access and cached; ``None`` when the machine
        cannot be compiled (see :func:`repro.ltl.compiled.compile_machine`),
        in which case callers fall back to the interpreted :meth:`step`.
        """
        if not self._compile_attempted:
            self._compile_attempted = True
            self._compiled = compile_machine(self._machine)
        return self._compiled

    def step(self, state: int, letter: Letter) -> int:
        """Successor state after reading *letter* (a set of true atoms)."""
        return self._machine.step(state, letter)

    def run(self, word: Sequence[Letter]) -> int:
        """The state reached from the initial state after reading *word*."""
        return self._machine.run(word)

    def verdict_of(self, word: Sequence[Letter]) -> Verdict:
        """The LTL3 valuation ``[word ⊨ φ]``."""
        return self.verdict(self.run(word))

    def is_final(self, state: int) -> bool:
        """Whether *state* carries a conclusive verdict (⊤ or ⊥)."""
        return self.verdict(state).is_final

    # ------------------------------------------------------------------
    # predicate-level view (used by the decentralized algorithm)
    # ------------------------------------------------------------------
    def outgoing_transitions(self, state: int) -> list[Transition]:
        """Non-self-loop transitions leaving *state*."""
        return list(self._outgoing.get(state, ()))

    def self_loop_transitions(self, state: int) -> list[Transition]:
        """Self-loop transitions of *state*."""
        return list(self._self_loops.get(state, ()))

    def transition_by_id(self, transition_id: int) -> Transition:
        return self.transitions[transition_id]

    def enabled_transition(self, state: int, letter: Letter) -> Transition | None:
        """The unique transition of *state* enabled by *letter*, if any.

        Because the underlying machine is deterministic and complete, exactly
        one (source, target) pair matches; among its conjunctive guards the
        first satisfied one is returned.
        """
        target = self.step(state, letter)
        for transition in self.transitions:
            if (
                transition.source == state
                and transition.target == target
                and transition.guard_satisfied(letter)
            ):
                return transition
        return None

    # ------------------------------------------------------------------
    # statistics for Table 5.1 / Fig 5.1
    # ------------------------------------------------------------------
    def transition_counts(self) -> dict[str, int]:
        """Counts of total / outgoing / self-loop conjunctive transitions."""
        self_loops = sum(1 for t in self.transitions if t.is_self_loop)
        outgoing = len(self.transitions) - self_loops
        return {
            "total": len(self.transitions),
            "outgoing": outgoing,
            "self_loops": self_loops,
        }

    def describe(self) -> str:
        """Multi-line description of states and transitions (Fig 5.2 / 5.3)."""
        lines = [f"Monitor automaton for: {self.formula}"]
        lines.append(f"atoms: {', '.join(self.atoms)}")
        for state in self.states:
            marker = " (initial)" if state == self.initial_state else ""
            lines.append(f"  state q{state}: verdict {self.verdict(state)}{marker}")
        for transition in self.transitions:
            lines.append(f"    {transition}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = self.transition_counts()
        return (
            f"MonitorAutomaton(states={self.num_states}, "
            f"transitions={counts['total']}, formula={self.formula})"
        )


def build_monitor(
    formula: Formula | str,
    atoms: Sequence[str] | None = None,
    *,
    method: str = "automaton",
    minimize: bool = True,
) -> MonitorAutomaton:
    """Synthesise the LTL3 monitor automaton for *formula*.

    Parameters
    ----------
    formula:
        An LTL formula object or its concrete syntax.
    atoms:
        Optional explicit list of atomic propositions defining the alphabet.
        Supplying the full set of propositions of the monitored system (even
        those not mentioned in the formula) is allowed; they become
        don't-cares in every guard.
    method:
        ``"automaton"`` (default) uses the Bauer–Leucker–Schallhart
        Büchi-based construction; ``"progression"`` builds the
        formula-progression machine of :mod:`repro.ltl.progression`, which
        reproduces the paper's (unminimised) experimental automata of
        Table 5.1 and Figures 5.2/5.3.
    minimize:
        Whether to Moore-minimise the resulting machine.  The paper's
        evaluation automata keep redundant ``?`` states, so the experiment
        harness uses ``method="progression", minimize=False``.

    Examples
    --------
    >>> monitor = build_monitor("G(p -> F q)")
    >>> monitor.verdict_of([frozenset(), frozenset({"p"})])
    <Verdict.INCONCLUSIVE: '?'>
    """
    if isinstance(formula, str):
        formula = parse(formula)
    if atoms is None:
        atoms = atoms_of(formula)
    atoms = tuple(atoms)
    missing = [a for a in atoms_of(formula) if a not in atoms]
    if missing:
        raise ValueError(f"formula mentions atoms not in the alphabet: {missing}")

    if method not in ("automaton", "progression"):
        raise ValueError(f"unknown construction method {method!r}")
    if method == "progression":
        from .progression import build_progression_machine

        machine, _ = build_progression_machine(formula, atoms)
        if minimize:
            machine = machine.minimize()
        else:
            machine = machine.reachable()
        return MonitorAutomaton(formula=formula, atoms=atoms, machine=machine)

    letters = all_assignments(atoms)

    positive = ltl_to_buchi(formula, atoms)
    negative = ltl_to_buchi(Not(formula), atoms)
    live_pos = nonempty_states(positive)
    live_neg = nonempty_states(negative)

    def successor_fn(
        automaton: BuchiAutomaton,
    ) -> Callable[[frozenset[object], Letter], frozenset[object]]:
        transition_table = automaton.transitions

        def advance(subset: frozenset[object], letter: Letter) -> frozenset[object]:
            result = set()
            for state in subset:
                for guard, target in transition_table.get(state, ()):
                    if guard.satisfied_by(letter):
                        result.add(target)
            return frozenset(result)

        return advance

    def output_fn(product: tuple[frozenset[object], ...]) -> Verdict:
        pos_subset, neg_subset = product
        if not (pos_subset & live_pos):
            return Verdict.BOTTOM
        if not (neg_subset & live_neg):
            return Verdict.TOP
        return Verdict.INCONCLUSIVE

    machine = determinize(
        letters=letters,
        initial_sets=[frozenset(positive.initial), frozenset(negative.initial)],
        successor_fns=[successor_fn(positive), successor_fn(negative)],
        output_fn=output_fn,
    )
    machine = machine.minimize() if minimize else machine.reachable()
    return MonitorAutomaton(formula=formula, atoms=atoms, machine=machine)
