"""Abstract syntax trees for Linear Temporal Logic formulas.

The formula classes are immutable, hashable value objects so they can be used
as dictionary keys throughout the tableau construction (:mod:`repro.ltl.buchi`)
and the monitor synthesis (:mod:`repro.ltl.monitor`).

Supported operators
-------------------

==============  =======================  ===========================
Class           Concrete syntax          Meaning
==============  =======================  ===========================
``TrueConst``   ``true``                 constant true
``FalseConst``  ``false``                constant false
``Atom``        ``p``, ``P0.p``          atomic proposition
``Not``         ``! f``, ``~ f``         negation
``And``         ``f & g``                conjunction
``Or``          ``f | g``                disjunction
``Implies``     ``f -> g``               implication
``Iff``         ``f <-> g``              equivalence
``Next``        ``X f``                  next
``Until``       ``f U g``                (strong) until
``Release``     ``f R g``                release (dual of until)
``Eventually``  ``F f``                  eventually (``true U f``)
``Always``      ``G f``                  always (``false R f``)
==============  =======================  ===========================
"""

from __future__ import annotations

import weakref
from collections.abc import Iterable, Iterator

__all__ = [
    "Formula",
    "TrueConst",
    "FalseConst",
    "Atom",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Next",
    "Until",
    "Release",
    "Eventually",
    "Always",
    "TRUE",
    "FALSE",
    "atoms_of",
    "subformulas",
    "intern_formula",
    "intern_table_size",
    "mk_atom",
    "mk_true",
    "mk_false",
    "mk_not",
    "mk_and",
    "mk_or",
    "mk_next",
    "mk_until",
    "mk_release",
    "mk_implies",
    "mk_iff",
    "mk_eventually",
    "mk_always",
    "str_key",
]


class Formula:
    """Base class of all LTL formula nodes.

    Instances compare structurally and hash on their structure, which allows
    formulas to be de-duplicated and used as set members / dict keys.

    Nodes produced by :func:`intern_formula` or the ``mk_*`` smart
    constructors are additionally *hash-consed*: structurally equal interned
    formulas are the very same object, so equality degenerates to a pointer
    comparison and per-node caches (cached hash, cached textual form, the
    memoized progression table of :mod:`repro.ltl.progression`) are shared by
    every use of the formula.
    """

    __slots__ = (
        "_hash",
        "_str",
        "_canon",
        "_nnf",
        "_progress_cache",
        "_is_interned",
        "__weakref__",
    )

    #: tuple of child formulas, overridden by subclasses
    children: tuple["Formula", ...] = ()

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, Formula) and self._key() == other._key()

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            if self.children:
                # combine the (cached) child hashes instead of materialising
                # the full recursive key tuple: O(1) amortised per node
                h = hash((type(self).__name__,) + tuple(hash(c) for c in self.children))
            else:
                h = hash(self._key())
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self!s})"

    # -- convenient operator overloading for building formulas in Python ----
    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        """``f >> g`` builds the implication ``f -> g``."""
        return Implies(self, other)

    # -- traversal -----------------------------------------------------------
    def walk(self) -> Iterator[Formula]:
        """Yield this node and all descendants (pre-order)."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def is_temporal(self) -> bool:
        """True when the formula contains a temporal operator."""
        return any(
            isinstance(f, (Next, Until, Release, Eventually, Always))
            for f in self.walk()
        )


class TrueConst(Formula):
    """The constant ``true``."""

    __slots__ = ()
    children: tuple[Formula, ...] = ()

    def _key(self) -> tuple:
        return ("true",)

    def __str__(self) -> str:
        return "true"


class FalseConst(Formula):
    """The constant ``false``."""

    __slots__ = ()
    children: tuple[Formula, ...] = ()

    def _key(self) -> tuple:
        return ("false",)

    def __str__(self) -> str:
        return "false"


#: Singleton instances used pervasively by the rewriting rules.  They are the
#: interned representatives of their class (see ``intern_formula`` below).
TRUE = TrueConst()
FALSE = FalseConst()
object.__setattr__(TRUE, "_is_interned", True)
object.__setattr__(FALSE, "_is_interned", True)


class Atom(Formula):
    """An atomic proposition identified by its name.

    Atom names are opaque strings at this layer; :mod:`repro.ltl.predicates`
    binds names to evaluation functions over global states (for instance
    ``"x1>=5"`` or ``"P0.p"``).
    """

    __slots__ = ("name",)
    children: tuple[Formula, ...] = ()

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("atomic proposition name must be non-empty")
        object.__setattr__(self, "name", name)

    def __setattr__(self, key: str, value: object) -> None:  # immutability guard
        raise AttributeError("Formula instances are immutable")

    def _key(self) -> tuple:
        return ("atom", self.name)

    def __str__(self) -> str:
        return self.name


class _Unary(Formula):
    __slots__ = ("operand", "children")
    _symbol = "?"

    def __init__(self, operand: Formula) -> None:
        if not isinstance(operand, Formula):
            raise TypeError(f"expected Formula, got {type(operand).__name__}")
        object.__setattr__(self, "operand", operand)
        object.__setattr__(self, "children", (operand,))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Formula instances are immutable")

    def _key(self) -> tuple:
        return (type(self).__name__, self.operand._key())

    def __str__(self) -> str:
        return f"{self._symbol}({self.operand})"


class _Binary(Formula):
    __slots__ = ("left", "right", "children")
    _symbol = "?"

    def __init__(self, left: Formula, right: Formula) -> None:
        if not isinstance(left, Formula) or not isinstance(right, Formula):
            raise TypeError("expected Formula operands")
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "children", (left, right))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Formula instances are immutable")

    def _key(self) -> tuple:
        return (type(self).__name__, self.left._key(), self.right._key())

    def __str__(self) -> str:
        return f"({self.left} {self._symbol} {self.right})"


class Not(_Unary):
    """Negation ``!f``."""

    __slots__ = ()
    _symbol = "!"

    def __str__(self) -> str:
        return f"!({self.operand})"


class And(_Binary):
    """Conjunction ``f & g``."""

    __slots__ = ()
    _symbol = "&"


class Or(_Binary):
    """Disjunction ``f | g``."""

    __slots__ = ()
    _symbol = "|"


class Implies(_Binary):
    """Implication ``f -> g``."""

    __slots__ = ()
    _symbol = "->"


class Iff(_Binary):
    """Equivalence ``f <-> g``."""

    __slots__ = ()
    _symbol = "<->"


class Next(_Unary):
    """Temporal next ``X f``."""

    __slots__ = ()
    _symbol = "X"

    def __str__(self) -> str:
        return f"X({self.operand})"


class Until(_Binary):
    """Strong until ``f U g``: ``g`` eventually holds and ``f`` holds until then."""

    __slots__ = ()
    _symbol = "U"


class Release(_Binary):
    """Release ``f R g``: dual of until; ``g`` holds up to and including the
    first position where ``f`` holds (possibly forever if ``f`` never holds)."""

    __slots__ = ()
    _symbol = "R"


class Eventually(_Unary):
    """Eventually ``F f`` (syntactic sugar for ``true U f``)."""

    __slots__ = ()
    _symbol = "F"

    def __str__(self) -> str:
        return f"F({self.operand})"


class Always(_Unary):
    """Always ``G f`` (syntactic sugar for ``false R f``)."""

    __slots__ = ()
    _symbol = "G"

    def __str__(self) -> str:
        return f"G({self.operand})"


def atoms_of(formula: Formula) -> tuple[str, ...]:
    """Return the sorted tuple of atomic proposition names used in *formula*."""
    names = {f.name for f in formula.walk() if isinstance(f, Atom)}
    return tuple(sorted(names))


def subformulas(formula: Formula) -> tuple[Formula, ...]:
    """Return the set of distinct subformulas of *formula* (including itself)."""
    seen = []
    seen_keys = set()
    for f in formula.walk():
        k = f._key()
        if k not in seen_keys:
            seen_keys.add(k)
            seen.append(f)
    return tuple(seen)


# ---------------------------------------------------------------------------
# hash-consing (interning)
# ---------------------------------------------------------------------------

#: Global intern table.  Values are weakly referenced so the table stays
#: bounded by the set of *live* formulas: when a construction is abandoned
#: (e.g. :func:`repro.ltl.progression.build_progression_machine` hitting its
#: ``max_states`` guard) the orphaned entries are reclaimed with their nodes.
_INTERN_TABLE: "weakref.WeakValueDictionary[tuple, Formula]" = weakref.WeakValueDictionary()


def intern_table_size() -> int:
    """Number of live entries in the global intern table (for tests/metrics)."""
    return len(_INTERN_TABLE)


def _interned(cls: type, key: tuple, *args: object) -> Formula:
    formula = _INTERN_TABLE.get(key)
    if formula is None:
        formula = cls(*args)
        object.__setattr__(formula, "_is_interned", True)
        _INTERN_TABLE[key] = formula
    return formula


def intern_formula(formula: Formula) -> Formula:
    """Return the hash-consed representative of *formula* (recursively).

    The result is structurally equal to the input; structurally equal inputs
    always yield the identical object.  Already-interned nodes are returned
    unchanged in O(1).
    """
    try:
        if formula._is_interned:
            return formula
    except AttributeError:
        pass
    if isinstance(formula, TrueConst):
        return TRUE
    if isinstance(formula, FalseConst):
        return FALSE
    if isinstance(formula, Atom):
        return _interned(Atom, ("atom", formula.name), formula.name)
    children = tuple(intern_formula(child) for child in formula.children)
    cls = type(formula)
    return _interned(cls, (cls.__name__,) + children, *children)


def str_key(formula: Formula) -> str:
    """``str(formula)``, cached on the node.

    The canonical operand order of ``&``/``|`` sorts by textual form; caching
    the rendering makes that sort (and the progression state labels) O(1) per
    node after the first computation.
    """
    try:
        return formula._str
    except AttributeError:
        text = str(formula)
        object.__setattr__(formula, "_str", text)
        return text


# ---------------------------------------------------------------------------
# smart constructors
# ---------------------------------------------------------------------------
#
# The ``mk_*`` constructors build hash-consed nodes and canonicalise at
# construction time exactly like :func:`repro.ltl.progression.canonicalize`:
# ``mk_not`` constant-folds and removes double negation, ``mk_and``/``mk_or``
# flatten nested conjunctions/disjunctions, de-duplicate operands, sort them
# by textual form and fold the identity/absorbing constants.  The temporal
# constructors intern without rewriting (progression never rewrites them
# either), so the canonical forms produced here coincide with the historical
# ``canonicalize`` output node for node.


def mk_true() -> Formula:
    """The interned constant ``true``."""
    return TRUE


def mk_false() -> Formula:
    """The interned constant ``false``."""
    return FALSE


def mk_atom(name: str) -> Formula:
    """The interned atomic proposition *name*."""
    return _interned(Atom, ("atom", name), name)


def mk_not(operand: Formula) -> Formula:
    """Interned negation with constant folding and double-negation removal."""
    if isinstance(operand, TrueConst):
        return FALSE
    if isinstance(operand, FalseConst):
        return TRUE
    if isinstance(operand, Not):
        return intern_formula(operand.operand)
    operand = intern_formula(operand)
    return _interned(Not, ("Not", operand), operand)


def _flatten_into(formula: Formula, cls, out: list) -> None:
    if isinstance(formula, cls):
        _flatten_into(formula.left, cls, out)
        _flatten_into(formula.right, cls, out)
    else:
        out.append(formula)


def _mk_nary(cls: type, operands: Iterable[Formula]) -> Formula:
    absorbing = FALSE if cls is And else TRUE
    identity = TRUE if cls is And else FALSE
    parts: list = []
    for operand in operands:
        _flatten_into(operand, cls, parts)
    unique: list = []
    seen = set()
    for part in parts:
        part = intern_formula(part)
        if part is absorbing:
            return absorbing
        if part is identity:
            continue
        if part not in seen:
            seen.add(part)
            unique.append(part)
    if not unique:
        return identity
    unique.sort(key=str_key)
    result = unique[0]
    name = cls.__name__
    for operand in unique[1:]:
        result = _interned(cls, (name, result, operand), result, operand)
    return result


def mk_and(*operands: Formula) -> Formula:
    """Interned n-ary conjunction: flattened, de-duplicated, sorted, folded."""
    return _mk_nary(And, operands)


def mk_or(*operands: Formula) -> Formula:
    """Interned n-ary disjunction: flattened, de-duplicated, sorted, folded."""
    return _mk_nary(Or, operands)


def _mk_unary(cls, operand: Formula) -> Formula:
    operand = intern_formula(operand)
    return _interned(cls, (cls.__name__, operand), operand)


def _mk_binary(cls, left: Formula, right: Formula) -> Formula:
    left = intern_formula(left)
    right = intern_formula(right)
    return _interned(cls, (cls.__name__, left, right), left, right)


def mk_next(operand: Formula) -> Formula:
    """Interned ``X operand``."""
    return _mk_unary(Next, operand)


def mk_until(left: Formula, right: Formula) -> Formula:
    """Interned ``left U right``."""
    return _mk_binary(Until, left, right)


def mk_release(left: Formula, right: Formula) -> Formula:
    """Interned ``left R right``."""
    return _mk_binary(Release, left, right)


def mk_implies(left: Formula, right: Formula) -> Formula:
    """Interned ``left -> right``."""
    return _mk_binary(Implies, left, right)


def mk_iff(left: Formula, right: Formula) -> Formula:
    """Interned ``left <-> right``."""
    return _mk_binary(Iff, left, right)


def mk_eventually(operand: Formula) -> Formula:
    """Interned ``F operand``."""
    return _mk_unary(Eventually, operand)


def mk_always(operand: Formula) -> Formula:
    """Interned ``G operand``."""
    return _mk_unary(Always, operand)
