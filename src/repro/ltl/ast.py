"""Abstract syntax trees for Linear Temporal Logic formulas.

The formula classes are immutable, hashable value objects so they can be used
as dictionary keys throughout the tableau construction (:mod:`repro.ltl.buchi`)
and the monitor synthesis (:mod:`repro.ltl.monitor`).

Supported operators
-------------------

==============  =======================  ===========================
Class           Concrete syntax          Meaning
==============  =======================  ===========================
``TrueConst``   ``true``                 constant true
``FalseConst``  ``false``                constant false
``Atom``        ``p``, ``P0.p``          atomic proposition
``Not``         ``! f``, ``~ f``         negation
``And``         ``f & g``                conjunction
``Or``          ``f | g``                disjunction
``Implies``     ``f -> g``               implication
``Iff``         ``f <-> g``              equivalence
``Next``        ``X f``                  next
``Until``       ``f U g``                (strong) until
``Release``     ``f R g``                release (dual of until)
``Eventually``  ``F f``                  eventually (``true U f``)
``Always``      ``G f``                  always (``false R f``)
==============  =======================  ===========================
"""

from __future__ import annotations

from typing import Iterator, Tuple

__all__ = [
    "Formula",
    "TrueConst",
    "FalseConst",
    "Atom",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Next",
    "Until",
    "Release",
    "Eventually",
    "Always",
    "TRUE",
    "FALSE",
    "atoms_of",
    "subformulas",
]


class Formula:
    """Base class of all LTL formula nodes.

    Instances compare structurally and hash on their structure, which allows
    formulas to be de-duplicated and used as set members / dict keys.
    """

    __slots__ = ("_hash",)

    #: tuple of child formulas, overridden by subclasses
    children: Tuple["Formula", ...] = ()

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Formula) and self._key() == other._key()

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            h = hash(self._key())
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self!s})"

    # -- convenient operator overloading for building formulas in Python ----
    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        """``f >> g`` builds the implication ``f -> g``."""
        return Implies(self, other)

    # -- traversal -----------------------------------------------------------
    def walk(self) -> Iterator["Formula"]:
        """Yield this node and all descendants (pre-order)."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def is_temporal(self) -> bool:
        """True when the formula contains a temporal operator."""
        return any(
            isinstance(f, (Next, Until, Release, Eventually, Always))
            for f in self.walk()
        )


class TrueConst(Formula):
    """The constant ``true``."""

    __slots__ = ()
    children: Tuple[Formula, ...] = ()

    def _key(self) -> tuple:
        return ("true",)

    def __str__(self) -> str:
        return "true"


class FalseConst(Formula):
    """The constant ``false``."""

    __slots__ = ()
    children: Tuple[Formula, ...] = ()

    def _key(self) -> tuple:
        return ("false",)

    def __str__(self) -> str:
        return "false"


#: Singleton instances used pervasively by the rewriting rules.
TRUE = TrueConst()
FALSE = FalseConst()


class Atom(Formula):
    """An atomic proposition identified by its name.

    Atom names are opaque strings at this layer; :mod:`repro.ltl.predicates`
    binds names to evaluation functions over global states (for instance
    ``"x1>=5"`` or ``"P0.p"``).
    """

    __slots__ = ("name",)
    children: Tuple[Formula, ...] = ()

    def __init__(self, name: str):
        if not name:
            raise ValueError("atomic proposition name must be non-empty")
        object.__setattr__(self, "name", name)

    def __setattr__(self, key, value):  # immutability guard
        raise AttributeError("Formula instances are immutable")

    def _key(self) -> tuple:
        return ("atom", self.name)

    def __str__(self) -> str:
        return self.name


class _Unary(Formula):
    __slots__ = ("operand", "children")
    _symbol = "?"

    def __init__(self, operand: Formula):
        if not isinstance(operand, Formula):
            raise TypeError(f"expected Formula, got {type(operand).__name__}")
        object.__setattr__(self, "operand", operand)
        object.__setattr__(self, "children", (operand,))

    def __setattr__(self, key, value):
        raise AttributeError("Formula instances are immutable")

    def _key(self) -> tuple:
        return (type(self).__name__, self.operand._key())

    def __str__(self) -> str:
        return f"{self._symbol}({self.operand})"


class _Binary(Formula):
    __slots__ = ("left", "right", "children")
    _symbol = "?"

    def __init__(self, left: Formula, right: Formula):
        if not isinstance(left, Formula) or not isinstance(right, Formula):
            raise TypeError("expected Formula operands")
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "children", (left, right))

    def __setattr__(self, key, value):
        raise AttributeError("Formula instances are immutable")

    def _key(self) -> tuple:
        return (type(self).__name__, self.left._key(), self.right._key())

    def __str__(self) -> str:
        return f"({self.left} {self._symbol} {self.right})"


class Not(_Unary):
    """Negation ``!f``."""

    __slots__ = ()
    _symbol = "!"

    def __str__(self) -> str:
        return f"!({self.operand})"


class And(_Binary):
    """Conjunction ``f & g``."""

    __slots__ = ()
    _symbol = "&"


class Or(_Binary):
    """Disjunction ``f | g``."""

    __slots__ = ()
    _symbol = "|"


class Implies(_Binary):
    """Implication ``f -> g``."""

    __slots__ = ()
    _symbol = "->"


class Iff(_Binary):
    """Equivalence ``f <-> g``."""

    __slots__ = ()
    _symbol = "<->"


class Next(_Unary):
    """Temporal next ``X f``."""

    __slots__ = ()
    _symbol = "X"

    def __str__(self) -> str:
        return f"X({self.operand})"


class Until(_Binary):
    """Strong until ``f U g``: ``g`` eventually holds and ``f`` holds until then."""

    __slots__ = ()
    _symbol = "U"


class Release(_Binary):
    """Release ``f R g``: dual of until; ``g`` holds up to and including the
    first position where ``f`` holds (possibly forever if ``f`` never holds)."""

    __slots__ = ()
    _symbol = "R"


class Eventually(_Unary):
    """Eventually ``F f`` (syntactic sugar for ``true U f``)."""

    __slots__ = ()
    _symbol = "F"

    def __str__(self) -> str:
        return f"F({self.operand})"


class Always(_Unary):
    """Always ``G f`` (syntactic sugar for ``false R f``)."""

    __slots__ = ()
    _symbol = "G"

    def __str__(self) -> str:
        return f"G({self.operand})"


def atoms_of(formula: Formula) -> Tuple[str, ...]:
    """Return the sorted tuple of atomic proposition names used in *formula*."""
    names = {f.name for f in formula.walk() if isinstance(f, Atom)}
    return tuple(sorted(names))


def subformulas(formula: Formula) -> Tuple[Formula, ...]:
    """Return the set of distinct subformulas of *formula* (including itself)."""
    seen = []
    seen_keys = set()
    for f in formula.walk():
        k = f._key()
        if k not in seen_keys:
            seen_keys.add(k)
            seen.append(f)
    return tuple(seen)
