"""Formula rewriting: negation normal form, expansion of sugar, simplification.

The Büchi tableau construction in :mod:`repro.ltl.buchi` expects its input in
*negation normal form* (NNF): negations only in front of atoms, and only the
operators ``&``, ``|``, ``X``, ``U``, ``R`` besides literals.  ``->``, ``<->``,
``F`` and ``G`` are expanded away.
"""

from __future__ import annotations

from .ast import (
    FALSE,
    TRUE,
    Always,
    And,
    Atom,
    Eventually,
    FalseConst,
    Formula,
    Iff,
    Implies,
    Next,
    Not,
    Or,
    Release,
    TrueConst,
    Until,
    intern_formula,
)

__all__ = ["expand", "negate", "to_nnf", "simplify"]


def expand(formula: Formula) -> Formula:
    """Expand ``->``, ``<->``, ``F`` and ``G`` into the core operators."""
    if isinstance(formula, (TrueConst, FalseConst, Atom)):
        return formula
    if isinstance(formula, Not):
        return Not(expand(formula.operand))
    if isinstance(formula, And):
        return And(expand(formula.left), expand(formula.right))
    if isinstance(formula, Or):
        return Or(expand(formula.left), expand(formula.right))
    if isinstance(formula, Implies):
        return Or(Not(expand(formula.left)), expand(formula.right))
    if isinstance(formula, Iff):
        left = expand(formula.left)
        right = expand(formula.right)
        return And(Or(Not(left), right), Or(Not(right), left))
    if isinstance(formula, Next):
        return Next(expand(formula.operand))
    if isinstance(formula, Until):
        return Until(expand(formula.left), expand(formula.right))
    if isinstance(formula, Release):
        return Release(expand(formula.left), expand(formula.right))
    if isinstance(formula, Eventually):
        return Until(TRUE, expand(formula.operand))
    if isinstance(formula, Always):
        return Release(FALSE, expand(formula.operand))
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def negate(formula: Formula) -> Formula:
    """Return the NNF of ``!formula`` assuming *formula* is already in core form."""
    return to_nnf(Not(formula))


def to_nnf(formula: Formula) -> Formula:
    """Convert *formula* to negation normal form.

    Implication/equivalence/F/G are expanded first; negation is then pushed
    down to the atoms using De Morgan and the temporal dualities
    ``!(f U g) = !f R !g`` and ``!(f R g) = !f U !g``.

    The result is hash-consed (see :func:`repro.ltl.ast.intern_formula`) and
    memoized on the input node, so repeated conversions of the same formula
    are O(1).
    """
    try:
        return formula._nnf
    except AttributeError:
        pass
    result = intern_formula(_nnf(expand(formula)))
    object.__setattr__(result, "_nnf", result)  # NNF is a fixpoint of to_nnf
    object.__setattr__(formula, "_nnf", result)
    return result


def _nnf(formula: Formula) -> Formula:
    if isinstance(formula, (TrueConst, FalseConst, Atom)):
        return formula
    if isinstance(formula, And):
        return And(_nnf(formula.left), _nnf(formula.right))
    if isinstance(formula, Or):
        return Or(_nnf(formula.left), _nnf(formula.right))
    if isinstance(formula, Next):
        return Next(_nnf(formula.operand))
    if isinstance(formula, Until):
        return Until(_nnf(formula.left), _nnf(formula.right))
    if isinstance(formula, Release):
        return Release(_nnf(formula.left), _nnf(formula.right))
    if isinstance(formula, Not):
        inner = formula.operand
        if isinstance(inner, TrueConst):
            return FALSE
        if isinstance(inner, FalseConst):
            return TRUE
        if isinstance(inner, Atom):
            return formula
        if isinstance(inner, Not):
            return _nnf(inner.operand)
        if isinstance(inner, And):
            return Or(_nnf(Not(inner.left)), _nnf(Not(inner.right)))
        if isinstance(inner, Or):
            return And(_nnf(Not(inner.left)), _nnf(Not(inner.right)))
        if isinstance(inner, Next):
            return Next(_nnf(Not(inner.operand)))
        if isinstance(inner, Until):
            return Release(_nnf(Not(inner.left)), _nnf(Not(inner.right)))
        if isinstance(inner, Release):
            return Until(_nnf(Not(inner.left)), _nnf(Not(inner.right)))
        raise TypeError(f"cannot negate node {type(inner).__name__}")
    raise TypeError(f"unexpected node {type(formula).__name__} in NNF conversion")


def simplify(formula: Formula) -> Formula:
    """Apply cheap syntactic simplifications to an NNF formula.

    Constant folding (``f & true = f`` etc.), idempotence and absorption of
    trivially equal operands.  The result is logically equivalent to the
    input and still in NNF if the input was.
    """
    if isinstance(formula, (TrueConst, FalseConst, Atom)):
        return formula
    if isinstance(formula, Not):
        inner = simplify(formula.operand)
        if isinstance(inner, TrueConst):
            return FALSE
        if isinstance(inner, FalseConst):
            return TRUE
        if isinstance(inner, Not):
            return inner.operand
        return Not(inner)
    if isinstance(formula, And):
        left = simplify(formula.left)
        right = simplify(formula.right)
        if isinstance(left, FalseConst) or isinstance(right, FalseConst):
            return FALSE
        if isinstance(left, TrueConst):
            return right
        if isinstance(right, TrueConst):
            return left
        if left == right:
            return left
        return And(left, right)
    if isinstance(formula, Or):
        left = simplify(formula.left)
        right = simplify(formula.right)
        if isinstance(left, TrueConst) or isinstance(right, TrueConst):
            return TRUE
        if isinstance(left, FalseConst):
            return right
        if isinstance(right, FalseConst):
            return left
        if left == right:
            return left
        return Or(left, right)
    if isinstance(formula, Next):
        inner = simplify(formula.operand)
        if isinstance(inner, (TrueConst, FalseConst)):
            return inner
        return Next(inner)
    if isinstance(formula, Until):
        left = simplify(formula.left)
        right = simplify(formula.right)
        if isinstance(right, (TrueConst, FalseConst)):
            # f U true = true ; f U false = false
            return right
        if left == right:
            return left
        return Until(left, right)
    if isinstance(formula, Release):
        left = simplify(formula.left)
        right = simplify(formula.right)
        if isinstance(right, (TrueConst, FalseConst)):
            # f R true = true ; f R false = false
            return right
        if left == right:
            return left
        return Release(left, right)
    if isinstance(formula, (Implies, Iff, Eventually, Always)):
        return simplify(expand(formula))
    raise TypeError(f"unknown formula node {type(formula).__name__}")
