"""Reference semantics for LTL and LTL3.

This module is deliberately simple and slow: it serves as the *test oracle*
against which the automaton-based monitor of :mod:`repro.ltl.monitor` is
validated.

Two pieces are provided:

* :func:`evaluate_lasso` — LTL semantics over ultimately-periodic infinite
  words ``u · vʷ`` (a *lasso*), computed by fixpoint iteration over the lasso
  positions.
* :func:`ltl3_bruteforce` — the LTL3 valuation ``[α ⊨ φ]`` of a finite trace
  ``α`` obtained by enumerating all lasso extensions up to a bound.  For the
  formula sizes used in the tests the bound is large enough to be exact; the
  helper :func:`extensions_agree` exposes the bounded check directly so tests
  can also assert only the sound directions.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Sequence

from .ast import (
    Always,
    And,
    Atom,
    Eventually,
    FalseConst,
    Formula,
    Iff,
    Implies,
    Next,
    Not,
    Or,
    Release,
    TrueConst,
    Until,
    atoms_of,
)
from .rewriting import to_nnf
from .verdict import Verdict

__all__ = [
    "Assignment",
    "evaluate_lasso",
    "all_assignments",
    "all_lassos",
    "ltl3_bruteforce",
    "extensions_agree",
]

#: A letter of the trace alphabet: the set of atomic propositions that hold.
Assignment = frozenset[str]


def all_assignments(atoms: Sequence[str]) -> list[Assignment]:
    """All ``2^|atoms|`` truth assignments over *atoms*."""
    result: list[Assignment] = []
    atoms = list(atoms)
    for bits in itertools.product((False, True), repeat=len(atoms)):
        result.append(frozenset(a for a, b in zip(atoms, bits) if b))
    return result


class _Lasso:
    """An ultimately periodic word ``prefix · loopʷ`` over assignments."""

    __slots__ = ("positions", "loop_start")

    def __init__(self, prefix: Sequence[Assignment], loop: Sequence[Assignment]) -> None:
        if len(loop) == 0:
            raise ValueError("lasso loop must be non-empty")
        self.positions: tuple[Assignment, ...] = tuple(prefix) + tuple(loop)
        self.loop_start = len(prefix)

    def succ(self, index: int) -> int:
        nxt = index + 1
        if nxt >= len(self.positions):
            return self.loop_start
        return nxt


def evaluate_lasso(
    formula: Formula,
    prefix: Sequence[Assignment],
    loop: Sequence[Assignment],
    position: int = 0,
) -> bool:
    """Evaluate *formula* on the infinite word ``prefix · loopʷ`` at *position*.

    Until is computed as a least fixpoint and Release as a greatest fixpoint
    over the finitely many lasso positions, which is exact for ultimately
    periodic words.
    """
    word = _Lasso(prefix, loop)
    if position >= len(word.positions):
        raise IndexError("position outside the lasso representation")
    values = _eval_on_lasso(to_nnf(formula), word)
    return values[position]


def _eval_on_lasso(formula: Formula, word: _Lasso) -> list[bool]:
    n = len(word.positions)
    if isinstance(formula, TrueConst):
        return [True] * n
    if isinstance(formula, FalseConst):
        return [False] * n
    if isinstance(formula, Atom):
        return [formula.name in letter for letter in word.positions]
    if isinstance(formula, Not):
        # NNF: operand is an atom
        inner = _eval_on_lasso(formula.operand, word)
        return [not v for v in inner]
    if isinstance(formula, And):
        left = _eval_on_lasso(formula.left, word)
        right = _eval_on_lasso(formula.right, word)
        return [a and b for a, b in zip(left, right)]
    if isinstance(formula, Or):
        left = _eval_on_lasso(formula.left, word)
        right = _eval_on_lasso(formula.right, word)
        return [a or b for a, b in zip(left, right)]
    if isinstance(formula, Next):
        inner = _eval_on_lasso(formula.operand, word)
        return [inner[word.succ(i)] for i in range(n)]
    if isinstance(formula, Until):
        left = _eval_on_lasso(formula.left, word)
        right = _eval_on_lasso(formula.right, word)
        values = [False] * n
        # least fixpoint of  val[i] = right[i] or (left[i] and val[succ(i)])
        changed = True
        while changed:
            changed = False
            for i in range(n - 1, -1, -1):
                new = right[i] or (left[i] and values[word.succ(i)])
                if new != values[i]:
                    values[i] = new
                    changed = True
        return values
    if isinstance(formula, Release):
        left = _eval_on_lasso(formula.left, word)
        right = _eval_on_lasso(formula.right, word)
        values = [True] * n
        # greatest fixpoint of  val[i] = right[i] and (left[i] or val[succ(i)])
        changed = True
        while changed:
            changed = False
            for i in range(n - 1, -1, -1):
                new = right[i] and (left[i] or values[word.succ(i)])
                if new != values[i]:
                    values[i] = new
                    changed = True
        return values
    if isinstance(formula, (Implies, Iff, Eventually, Always)):
        return _eval_on_lasso(to_nnf(formula), word)
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def all_lassos(
    letters: Sequence[Assignment],
    max_prefix: int,
    max_loop: int,
) -> Iterator[tuple[tuple[Assignment, ...], tuple[Assignment, ...]]]:
    """Enumerate all lassos ``(prefix, loop)`` with bounded lengths."""
    for plen in range(max_prefix + 1):
        for prefix in itertools.product(letters, repeat=plen):
            for llen in range(1, max_loop + 1):
                for loop in itertools.product(letters, repeat=llen):
                    yield prefix, loop


def extensions_agree(
    formula: Formula,
    trace: Sequence[Assignment],
    letters: Sequence[Assignment],
    max_prefix: int = 2,
    max_loop: int = 2,
) -> tuple[bool, bool]:
    """Return ``(found_satisfying, found_violating)`` extensions of *trace*.

    An extension is ``trace · prefix · loopʷ`` for each bounded lasso over
    *letters*.  The empty extension (``prefix`` empty) is included as long as
    a non-empty loop exists.
    """
    found_sat = False
    found_vio = False
    trace = list(trace)
    for prefix, loop in all_lassos(letters, max_prefix, max_loop):
        value = evaluate_lasso(formula, trace + list(prefix), loop)
        if value:
            found_sat = True
        else:
            found_vio = True
        if found_sat and found_vio:
            break
    return found_sat, found_vio


def ltl3_bruteforce(
    formula: Formula,
    trace: Sequence[Assignment],
    atoms: Iterable[str] | None = None,
    max_prefix: int = 2,
    max_loop: int = 2,
) -> Verdict:
    """Brute-force LTL3 valuation ``[trace ⊨ formula]`` by lasso enumeration.

    The result is exact whenever the bounded lasso extensions are enough to
    exhibit both a satisfying and a violating continuation when they exist —
    which holds for the small formulas used in the test-suite.
    """
    if atoms is None:
        atoms = atoms_of(formula)
    letters = all_assignments(tuple(atoms))
    found_sat, found_vio = extensions_agree(
        formula, trace, letters, max_prefix=max_prefix, max_loop=max_loop
    )
    if found_sat and found_vio:
        return Verdict.INCONCLUSIVE
    if found_sat:
        return Verdict.TOP
    if found_vio:
        return Verdict.BOTTOM
    raise RuntimeError("no extensions enumerated; max_loop must be >= 1")
