"""A recursive-descent parser for LTL formulas.

Grammar (in decreasing binding strength)::

    formula   := iff
    iff       := implies ( "<->" implies )*
    implies   := or ( "->" or )*          (right associative)
    or        := and ( ("|" | "||") and )*
    and       := until ( ("&" | "&&") until )*
    until     := unary ( ("U" | "R") unary )*   (right associative)
    unary     := ("!" | "~" | "X" | "F" | "G" | "<>" | "[]") unary | primary
    primary   := "true" | "false" | atom | "(" formula ")"

Atoms may contain letters, digits, ``_``, ``.``, and comparison expressions
wrapped in quotes or braces, e.g. ``{x1 >= 5}`` which is convenient for the
paper's running example ``G((x1>=5) -> ((x2>=15) U (x1=10)))``.
"""

from __future__ import annotations

import re
from typing import NamedTuple

from .ast import (
    FALSE,
    TRUE,
    Always,
    And,
    Atom,
    Eventually,
    Formula,
    Iff,
    Implies,
    Next,
    Not,
    Or,
    Release,
    Until,
    intern_formula,
)

__all__ = ["parse", "LTLSyntaxError"]


class LTLSyntaxError(ValueError):
    """Raised when an LTL formula string cannot be parsed."""


class _Token(NamedTuple):
    kind: str
    value: str
    pos: int


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<LBRACE>\{[^{}]*\})
  | (?P<IFF><->)
  | (?P<IMPLIES>->|=>)
  | (?P<OR>\|\||\|)
  | (?P<AND>&&|&)
  | (?P<NOT>!|~)
  | (?P<DIAMOND><>)
  | (?P<BOX>\[\])
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_.]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "true": "TRUE",
    "false": "FALSE",
    "U": "UNTIL",
    "R": "RELEASE",
    "V": "RELEASE",
    "X": "NEXT",
    "F": "EVENTUALLY",
    "G": "ALWAYS",
}


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise LTLSyntaxError(f"unexpected character {text[pos]!r} at position {pos}")
        kind = m.lastgroup or ""
        value = m.group()
        pos = m.end()
        if kind == "WS":
            continue
        if kind == "NAME":
            kind = _KEYWORDS.get(value, "NAME")
        if kind == "LBRACE":
            # {x1 >= 5} -> atom with the inner text as its name
            value = value[1:-1].strip()
            kind = "NAME"
        if kind == "DIAMOND":
            kind = "EVENTUALLY"
        if kind == "BOX":
            kind = "ALWAYS"
        tokens.append(_Token(kind, value, m.start()))
    tokens.append(_Token("EOF", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self.tokens = tokens
        self.index = 0

    @property
    def current(self) -> _Token:
        return self.tokens[self.index]

    def _advance(self) -> _Token:
        tok = self.tokens[self.index]
        self.index += 1
        return tok

    def _expect(self, kind: str) -> _Token:
        if self.current.kind != kind:
            raise LTLSyntaxError(
                f"expected {kind} but found {self.current.kind} "
                f"({self.current.value!r}) at position {self.current.pos}"
            )
        return self._advance()

    # grammar rules -----------------------------------------------------
    def parse_formula(self) -> Formula:
        formula = self.parse_iff()
        if self.current.kind != "EOF":
            raise LTLSyntaxError(
                f"unexpected trailing input {self.current.value!r} at position {self.current.pos}"
            )
        return formula

    def parse_iff(self) -> Formula:
        left = self.parse_implies()
        while self.current.kind == "IFF":
            self._advance()
            right = self.parse_implies()
            left = Iff(left, right)
        return left

    def parse_implies(self) -> Formula:
        left = self.parse_or()
        if self.current.kind == "IMPLIES":
            self._advance()
            right = self.parse_implies()  # right associative
            return Implies(left, right)
        return left

    def parse_or(self) -> Formula:
        left = self.parse_and()
        while self.current.kind == "OR":
            self._advance()
            right = self.parse_and()
            left = Or(left, right)
        return left

    def parse_and(self) -> Formula:
        left = self.parse_until()
        while self.current.kind == "AND":
            self._advance()
            right = self.parse_until()
            left = And(left, right)
        return left

    def parse_until(self) -> Formula:
        left = self.parse_unary()
        if self.current.kind in ("UNTIL", "RELEASE"):
            op = self._advance()
            right = self.parse_until()  # right associative
            if op.kind == "UNTIL":
                return Until(left, right)
            return Release(left, right)
        return left

    def parse_unary(self) -> Formula:
        kind = self.current.kind
        if kind == "NOT":
            self._advance()
            return Not(self.parse_unary())
        if kind == "NEXT":
            self._advance()
            return Next(self.parse_unary())
        if kind == "EVENTUALLY":
            self._advance()
            return Eventually(self.parse_unary())
        if kind == "ALWAYS":
            self._advance()
            return Always(self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Formula:
        tok = self.current
        if tok.kind == "TRUE":
            self._advance()
            return TRUE
        if tok.kind == "FALSE":
            self._advance()
            return FALSE
        if tok.kind == "NAME":
            self._advance()
            return Atom(tok.value)
        if tok.kind == "LPAREN":
            self._advance()
            inner = self.parse_iff()
            self._expect("RPAREN")
            return inner
        raise LTLSyntaxError(
            f"unexpected token {tok.value!r} ({tok.kind}) at position {tok.pos}"
        )


def parse(text: str) -> Formula:
    """Parse *text* into a :class:`repro.ltl.ast.Formula`.

    >>> from repro.ltl import parse
    >>> str(parse("G (p -> F q)"))
    'G((p -> F(q)))'
    """
    if not isinstance(text, str):
        raise TypeError("parse expects a string")
    tokens = _tokenize(text)
    # hash-cons the result: parsing the same formula twice (or two formulas
    # sharing subterms) yields shared interned nodes with cached hashes
    return intern_formula(_Parser(tokens).parse_formula())
