"""Two-level Boolean minimisation (Quine–McCluskey + greedy cover).

The LTL3 monitor automaton produced by :mod:`repro.ltl.monitor` initially has
its transition function defined letter-by-letter (one entry per truth
assignment of the atomic propositions).  The paper, however, presents and
*counts* transitions as edges labelled by **conjunctive predicates** (see
Table 5.1 and Figures 5.2/5.3): each edge guard is a product term such as
``p0.p & p1.p & !p0.q`` and a disjunctive guard is split into several edges.

This module turns the set of letters on which an edge fires into a small
irredundant sum of products.  Each product term becomes one "transition" in
the paper's sense.

The implementation is a textbook Quine–McCluskey prime-implicant generation
followed by an essential-prime + greedy covering step.  The number of
variables encountered in the reproduction is at most 10 (five processes with
two propositions each), for which this exact method is comfortably fast.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


__all__ = ["Implicant", "minimize_letters", "implicant_to_str"]

#: An implicant maps a variable name to the required truth value.  Variables
#: absent from the mapping are don't-cares.  The empty implicant is ``true``.
Implicant = dict[str, bool]


def _letters_to_minterms(
    letters: Iterable[frozenset[str]], variables: Sequence[str]
) -> list[int]:
    """Encode each letter (set of true atoms) as an integer minterm."""
    index = {v: i for i, v in enumerate(variables)}
    minterms = []
    for letter in letters:
        value = 0
        for atom in letter:
            if atom in index:
                value |= 1 << index[atom]
        minterms.append(value)
    return sorted(set(minterms))


def _combine(
    term_a: tuple[int, int], term_b: tuple[int, int]
) -> tuple[int, int] | None:
    """Combine two (value, mask) terms differing in exactly one cared bit."""
    value_a, mask_a = term_a
    value_b, mask_b = term_b
    if mask_a != mask_b:
        return None
    diff = value_a ^ value_b
    if diff == 0 or (diff & (diff - 1)) != 0:
        return None
    return value_a & ~diff, mask_a | diff


def _prime_implicants(minterms: list[int], nbits: int) -> list[tuple[int, int]]:
    """Classic iterative combination returning all prime implicants.

    Terms are ``(value, dontcare_mask)`` pairs; a bit set in the mask means
    the variable is a don't-care.
    """
    current = {(m, 0) for m in minterms}
    primes: set = set()
    while current:
        nxt = set()
        combined = set()
        current_list = sorted(current)
        # group by (mask, popcount) to limit the pairs examined
        groups: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for term in current_list:
            value, mask = term
            key = (mask, bin(value).count("1"))
            groups.setdefault(key, []).append(term)
        for (mask, ones), terms in groups.items():
            partner_key = (mask, ones + 1)
            partners = groups.get(partner_key, [])
            for a in terms:
                for b in partners:
                    merged = _combine(a, b)
                    if merged is not None:
                        nxt.add(merged)
                        combined.add(a)
                        combined.add(b)
        primes.update(current - combined)
        current = nxt
    return sorted(primes)


def _covers(term: tuple[int, int], minterm: int) -> bool:
    value, mask = term
    return (minterm & ~mask) == (value & ~mask)


def _cover(
    primes: list[tuple[int, int]], minterms: list[int]
) -> list[tuple[int, int]]:
    """Select a small subset of primes covering all minterms.

    Essential primes are chosen first, then a greedy largest-cover heuristic
    finishes the job.  The result is irredundant but not guaranteed to be
    globally minimum (Petrick's method would be exact); this matches how the
    paper's automata were produced by practical tooling.
    """
    remaining = set(minterms)
    chosen: list[tuple[int, int]] = []
    coverage = {p: {m for m in minterms if _covers(p, m)} for p in primes}

    # essential primes: minterms covered by exactly one prime
    for minterm in minterms:
        covering = [p for p in primes if minterm in coverage[p]]
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
            remaining -= coverage[covering[0]]

    while remaining:
        best = max(primes, key=lambda p: len(coverage[p] & remaining))
        gain = coverage[best] & remaining
        if not gain:
            break
        chosen.append(best)
        remaining -= gain
    return chosen


def minimize_letters(
    letters: Iterable[frozenset[str]], variables: Sequence[str]
) -> list[Implicant]:
    """Express the set of *letters* as a small list of conjunctive implicants.

    Parameters
    ----------
    letters:
        The truth assignments (sets of atoms that are true) on which the
        function is 1.
    variables:
        The full variable ordering; assignments are interpreted over exactly
        these variables.

    Returns
    -------
    list of :data:`Implicant`
        Each implicant is a conjunction of literals; their disjunction is
        exactly the given set of letters.  The empty list means ``false`` and
        a single empty implicant means ``true``.
    """
    variables = list(variables)
    minterms = _letters_to_minterms(letters, variables)
    if not minterms:
        return []
    nbits = len(variables)
    if len(minterms) == (1 << nbits):
        return [{}]
    primes = _prime_implicants(minterms, nbits)
    cover = _cover(primes, minterms)
    implicants: list[Implicant] = []
    for value, mask in sorted(cover):
        imp: Implicant = {}
        for i, var in enumerate(variables):
            if mask & (1 << i):
                continue
            imp[var] = bool(value & (1 << i))
        implicants.append(imp)
    return implicants


def implicant_to_str(implicant: Implicant) -> str:
    """Human-readable rendering of an implicant, e.g. ``p0.p & !p1.q``."""
    if not implicant:
        return "true"
    parts = []
    for var in sorted(implicant):
        parts.append(var if implicant[var] else f"!{var}")
    return " & ".join(parts)
