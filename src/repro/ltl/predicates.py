"""Binding atomic propositions to predicates over (distributed) states.

The monitor automaton works over an abstract alphabet of atomic proposition
*names*.  In a distributed program each proposition is owned by exactly one
process and is evaluated on that process's local state (e.g. ``x1 >= 5`` is
owned by ``P1`` and ``P2.p`` is owned by ``P2``).  This module provides:

* :class:`Proposition` — a named, process-owned predicate over local states;
* :class:`PropositionRegistry` — the complete binding of the alphabet, able to
  turn local/global states into letters and to split a conjunctive transition
  guard into per-process conjuncts (the ``ConjunctsEvaluation`` structure of
  the paper's token objects).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence

from dataclasses import dataclass

__all__ = ["LocalState", "Proposition", "PropositionRegistry"]

#: A local state is simply a mapping from variable names to values.
LocalState = Mapping[str, object]


@dataclass(frozen=True)
class Proposition:
    """An atomic proposition owned by one process.

    Parameters
    ----------
    name:
        The proposition's name as it appears in LTL formulas.
    owner:
        Index of the process whose local state determines the proposition.
    evaluate:
        Predicate over the owner's local state.
    """

    name: str
    owner: int
    evaluate: Callable[[LocalState], bool]

    def holds_in(self, local_state: LocalState) -> bool:
        """Evaluate the proposition on the owner's *local_state*."""
        return bool(self.evaluate(local_state))

    @staticmethod
    def variable(name: str, owner: int, variable: str) -> "Proposition":
        """A proposition that is the truth value of a boolean local variable."""
        return Proposition(name, owner, lambda s, v=variable: bool(s.get(v, False)))

    @staticmethod
    def comparison(
        name: str, owner: int, variable: str, op: str, constant: object
    ) -> "Proposition":
        """A proposition comparing a local variable with a constant.

        ``op`` is one of ``<``, ``<=``, ``==``, ``!=``, ``>=``, ``>``.
        """
        operators: dict[str, Callable[[object, object], bool]] = {
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            "==": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            ">=": lambda a, b: a >= b,
            ">": lambda a, b: a > b,
        }
        if op not in operators:
            raise ValueError(f"unsupported comparison operator {op!r}")
        fn = operators[op]
        return Proposition(
            name, owner, lambda s, v=variable, c=constant, f=fn: f(s.get(v), c)
        )


class PropositionRegistry:
    """The complete set of propositions monitored over a distributed program."""

    def __init__(self, propositions: Iterable[Proposition]) -> None:
        self._by_name: dict[str, Proposition] = {}
        for proposition in propositions:
            if proposition.name in self._by_name:
                raise ValueError(f"duplicate proposition name {proposition.name!r}")
            self._by_name[proposition.name] = proposition
        self._by_owner: dict[int, list[Proposition]] = {}
        for proposition in self._by_name.values():
            self._by_owner.setdefault(proposition.owner, []).append(proposition)
        #: memo for :meth:`conjuncts_by_process`; guards come from a fixed
        #: monitor automaton, so the key space is small and bounded
        self._conjunct_cache: dict[tuple, tuple[dict[str, bool], ...]] = {}

    # -- introspection -------------------------------------------------
    @property
    def names(self) -> list[str]:
        """All proposition names, sorted."""
        return sorted(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Proposition:
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self._by_name)

    def owner_of(self, name: str) -> int:
        """Process index owning proposition *name*."""
        return self._by_name[name].owner

    def owned_by(self, process: int) -> list[Proposition]:
        """Propositions owned by *process*."""
        return list(self._by_owner.get(process, ()))

    # -- evaluation ------------------------------------------------------
    def local_letter(self, process: int, local_state: LocalState) -> frozenset[str]:
        """The true propositions of *process* in *local_state*."""
        return frozenset(
            p.name
            for p in self._by_owner.get(process, ())
            if p.holds_in(local_state)
        )

    def letter_of(self, global_state: Sequence[LocalState]) -> frozenset[str]:
        """The letter (set of true propositions) of a full global state."""
        true_atoms = set()
        for proposition in self._by_name.values():
            local_state = global_state[proposition.owner]
            if proposition.holds_in(local_state):
                true_atoms.add(proposition.name)
        return frozenset(true_atoms)

    # -- guard decomposition ---------------------------------------------
    def conjuncts_by_process(
        self, guard: Mapping[str, bool], num_processes: int
    ) -> tuple[dict[str, bool], ...]:
        """Split a conjunctive transition guard into per-process conjuncts.

        The result has one entry per process: the literals of the guard owned
        by that process (empty when the process does not participate in the
        guard).  This mirrors the ``ConjunctsEvaluation`` vector of the
        paper's token objects.

        The decomposition is memoized per (guard, process count) and the
        *shared* cached tuple is returned: treat it and its dictionaries as
        read-only, and copy before mutating (as the token entries do).
        """
        key = (frozenset(guard.items()), num_processes)
        cached = self._conjunct_cache.get(key)
        if cached is None:
            per_process: list[dict[str, bool]] = [dict() for _ in range(num_processes)]
            for atom, required in guard.items():
                owner = self.owner_of(atom)
                per_process[owner][atom] = required
            cached = tuple(per_process)
            self._conjunct_cache[key] = cached
        return cached

    def participating_processes(self, guard: Mapping[str, bool]) -> frozenset[int]:
        """Indices of processes owning at least one literal of *guard*."""
        return frozenset(self.owner_of(atom) for atom in guard)

    def local_conjunct_holds(
        self, process: int, conjunct: Mapping[str, bool], local_state: LocalState
    ) -> bool:
        """Whether *process*'s part of a guard holds in *local_state*."""
        for atom, required in conjunct.items():
            if self.owner_of(atom) != process:
                raise ValueError(
                    f"proposition {atom!r} is not owned by process {process}"
                )
            if self._by_name[atom].holds_in(local_state) != required:
                return False
        return True

    # -- convenience constructors ----------------------------------------
    @staticmethod
    def boolean_grid(
        num_processes: int, variables: Sequence[str] = ("p", "q")
    ) -> "PropositionRegistry":
        """The case-study alphabet: propositions ``P<i>.<v>`` for each process.

        Matches the experimental set-up of Chapter 5 where every process owns
        boolean propositions ``p`` and ``q``.
        """
        propositions = []
        for process in range(num_processes):
            for variable in variables:
                propositions.append(
                    Proposition.variable(f"P{process}.{variable}", process, variable)
                )
        return PropositionRegistry(propositions)
