"""Formula-progression construction of LTL3 monitor automata.

The thesis' experimental automata (Table 5.1, Figures 5.2/5.3) are *not*
Moore-minimal: the authors deliberately keep intermediate ``?`` states such
as the "until pending" state ``q1`` because it "provides more information".
Those automata coincide with the machine obtained by **formula progression**
(also known as formula rewriting, Havelund & Roşu):

* the states are the syntactically-distinct formulas obtained by progressing
  the property through every letter of the alphabet;
* the transition on letter ``a`` maps state ``φ`` to ``simplify(progress(φ, a))``;
* the verdict of a state is the LTL3 verdict of its formula, which we obtain
  soundly by tracking the Moore-minimal monitor of :mod:`repro.ltl.monitor`
  in lock-step (two traces reaching the same progressed formula necessarily
  have the same verdict).

The construction terminates whenever the set of progressed formulas is finite
under the canonicalisation implemented here (flattening and deduplication of
conjunctions/disjunctions, constant folding); a ``max_states`` guard protects
against the general case where it is not.
"""

from __future__ import annotations

from collections.abc import Sequence


from .ast import (
    FALSE,
    TRUE,
    And,
    Atom,
    FalseConst,
    Formula,
    Next,
    Not,
    Or,
    Release,
    TrueConst,
    Until,
    atoms_of,
    mk_and,
    mk_atom,
    mk_next,
    mk_not,
    mk_or,
    mk_release,
    mk_until,
    str_key,
)
from .dfa import MooreMachine
from .rewriting import to_nnf
from .semantics import all_assignments
from .verdict import Verdict

__all__ = ["progress", "canonicalize", "build_progression_machine"]

Letter = frozenset[str]


# ---------------------------------------------------------------------------
# canonical form
# ---------------------------------------------------------------------------


def canonicalize(formula: Formula) -> Formula:
    """Return the canonical hash-consed representative of *formula*.

    Conjunctions and disjunctions are flattened, deduplicated, sorted by
    their textual form and constant-folded (this is what the ``mk_*`` smart
    constructors of :mod:`repro.ltl.ast` do at construction time).  Two
    formulas that are equal modulo associativity, commutativity and
    idempotence of ``&``/``|`` canonicalise to the *same object*, so
    canonical-form equality is a pointer comparison.  The result is memoized
    on the input node: each distinct formula is canonicalised exactly once.
    """
    try:
        return formula._canon
    except AttributeError:
        pass
    result = _canonicalize(formula)
    object.__setattr__(result, "_canon", result)  # canonical form is a fixpoint
    object.__setattr__(formula, "_canon", result)
    return result


def _canonicalize(formula: Formula) -> Formula:
    if isinstance(formula, (TrueConst, FalseConst)):
        return TRUE if isinstance(formula, TrueConst) else FALSE
    if isinstance(formula, Atom):
        return mk_atom(formula.name)
    if isinstance(formula, Not):
        return mk_not(canonicalize(formula.operand))
    if isinstance(formula, Next):
        return mk_next(canonicalize(formula.operand))
    if isinstance(formula, Until):
        return mk_until(canonicalize(formula.left), canonicalize(formula.right))
    if isinstance(formula, Release):
        return mk_release(canonicalize(formula.left), canonicalize(formula.right))
    if isinstance(formula, (And, Or)):
        cls = And if isinstance(formula, And) else Or
        mk = mk_and if cls is And else mk_or
        operands: list[Formula] = []
        stack = [formula]
        while stack:
            node = stack.pop()
            if isinstance(node, cls):
                stack.append(node.right)
                stack.append(node.left)
            else:
                operands.append(canonicalize(node))
        return mk(*operands)
    # any syntactic sugar left: expand via NNF first
    return canonicalize(to_nnf(formula))


# ---------------------------------------------------------------------------
# progression
# ---------------------------------------------------------------------------


def progress(formula: Formula, letter: Letter) -> Formula:
    """One-step progression of an NNF *formula* through *letter*.

    The returned formula holds on an infinite word ``w`` iff the original
    formula holds on ``letter · w``.

    Results are memoized in a per-formula transition cache: progressing the
    same (hash-consed) formula through the same letter twice costs one dict
    lookup.  The cache is keyed by the letter, so a formula shared by several
    machines with different alphabets stays correct.
    """
    try:
        cache = formula._progress_cache
    except AttributeError:
        cache = {}
        object.__setattr__(formula, "_progress_cache", cache)
    successor = cache.get(letter)
    if successor is None:
        successor = _progress(formula, letter)
        cache[letter] = successor
    return successor


def _progress(formula: Formula, letter: Letter) -> Formula:
    if isinstance(formula, TrueConst) or isinstance(formula, FalseConst):
        return formula
    if isinstance(formula, Atom):
        return TRUE if formula.name in letter else FALSE
    if isinstance(formula, Not):
        # NNF: operand is an atom
        inner = formula.operand
        if isinstance(inner, Atom):
            return FALSE if inner.name in letter else TRUE
        return mk_not(progress(inner, letter))
    if isinstance(formula, And):
        return mk_and(progress(formula.left, letter), progress(formula.right, letter))
    if isinstance(formula, Or):
        return mk_or(progress(formula.left, letter), progress(formula.right, letter))
    if isinstance(formula, Next):
        return canonicalize(formula.operand)
    if isinstance(formula, Until):
        # X U Y  ≡  Y | (X & X(X U Y))
        return mk_or(
            progress(formula.right, letter),
            mk_and(progress(formula.left, letter), canonicalize(formula)),
        )
    if isinstance(formula, Release):
        # X R Y  ≡  Y & (X | X(X R Y))
        return mk_and(
            progress(formula.right, letter),
            mk_or(progress(formula.left, letter), canonicalize(formula)),
        )
    # sugar: normalise first
    return progress(to_nnf(formula), letter)


# ---------------------------------------------------------------------------
# machine construction
# ---------------------------------------------------------------------------


def build_progression_machine(
    formula: Formula,
    atoms: Sequence[str] | None = None,
    max_states: int = 4096,
    verdict_machine: MooreMachine | None = None,
) -> tuple[MooreMachine, list[Formula]]:
    """Build the progression Moore machine for *formula*.

    Parameters
    ----------
    formula:
        The LTL property.
    atoms:
        Alphabet; defaults to the atoms of the formula.
    max_states:
        Safety bound on the number of progression states.
    verdict_machine:
        The Moore-minimal LTL3 monitor machine used to label states with
        verdicts; when ``None`` it is built internally via
        :func:`repro.ltl.monitor.build_monitor`.

    Returns
    -------
    (machine, state_formulas):
        ``machine`` is the (unminimised) Moore machine, ``state_formulas``
        gives the progressed formula represented by each state.
    """
    if atoms is None:
        atoms = atoms_of(formula)
    atoms = tuple(atoms)
    letters = tuple(all_assignments(atoms))

    initial_formula = canonicalize(to_nnf(formula))
    # canonical formulas are hash-consed, so they key the state index directly
    # (hash is cached, equality is a pointer comparison)
    index: dict[Formula, int] = {initial_formula: 0}
    formulas: list[Formula] = [initial_formula]
    reference_states: list[int] = (
        [verdict_machine.initial] if verdict_machine is not None else []
    )
    delta: list[list[int]] = []
    frontier = [0]
    while frontier:
        state = frontier.pop(0)
        # rows may be discovered out of order; grow delta lazily
        while len(delta) <= state:
            delta.append([])
        row: list[int] = []
        current_formula = formulas[state]
        for letter in letters:
            successor_formula = progress(current_formula, letter)
            if successor_formula not in index:
                if len(formulas) >= max_states:
                    raise RuntimeError(
                        "formula progression did not converge within "
                        f"{max_states} states for {formula}"
                    )
                index[successor_formula] = len(formulas)
                formulas.append(successor_formula)
                if verdict_machine is not None:
                    reference_states.append(
                        verdict_machine.step(reference_states[state], letter)
                    )
                frontier.append(index[successor_formula])
            elif verdict_machine is not None:
                # soundness check: a progressed formula always corresponds to
                # a unique verdict; detect canonicalisation bugs eagerly.
                existing = index[successor_formula]
                expected = verdict_machine.outputs[reference_states[existing]]
                actual = verdict_machine.outputs[
                    verdict_machine.step(reference_states[state], letter)
                ]
                if expected != actual:
                    raise RuntimeError(
                        "progression state reached with two different verdicts; "
                        "canonicalisation is unsound for this formula"
                    )
            row.append(index[successor_formula])
        delta[state] = row

    if verdict_machine is not None:
        outputs: list[Verdict] = [
            verdict_machine.outputs[reference_states[i]] for i in range(len(formulas))
        ]
    else:
        outputs = [_formula_verdict(f) for f in formulas]
    machine = MooreMachine(
        letters=letters,
        initial=0,
        delta=delta,
        outputs=outputs,
        state_names=[str_key(f) for f in formulas],
    )
    return machine, formulas


def _formula_verdict(formula: Formula) -> Verdict:
    """LTL3 verdict of a progression state.

    A state formula evaluates to ``⊥`` when it is unsatisfiable (no infinite
    continuation can satisfy the original property any more), ``⊤`` when its
    negation is unsatisfiable, and ``?`` otherwise.  Satisfiability is decided
    on the Büchi automaton of the formula — exact, and cheap for the handful
    of progression states a property generates.
    """
    from .buchi import is_satisfiable
    from .rewriting import negate

    if isinstance(formula, FalseConst):
        return Verdict.BOTTOM
    if isinstance(formula, TrueConst):
        return Verdict.TOP
    if not is_satisfiable(formula):
        return Verdict.BOTTOM
    if not is_satisfiable(negate(formula)):
        return Verdict.TOP
    return Verdict.INCONCLUSIVE
