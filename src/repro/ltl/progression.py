"""Formula-progression construction of LTL3 monitor automata.

The thesis' experimental automata (Table 5.1, Figures 5.2/5.3) are *not*
Moore-minimal: the authors deliberately keep intermediate ``?`` states such
as the "until pending" state ``q1`` because it "provides more information".
Those automata coincide with the machine obtained by **formula progression**
(also known as formula rewriting, Havelund & Roşu):

* the states are the syntactically-distinct formulas obtained by progressing
  the property through every letter of the alphabet;
* the transition on letter ``a`` maps state ``φ`` to ``simplify(progress(φ, a))``;
* the verdict of a state is the LTL3 verdict of its formula, which we obtain
  soundly by tracking the Moore-minimal monitor of :mod:`repro.ltl.monitor`
  in lock-step (two traces reaching the same progressed formula necessarily
  have the same verdict).

The construction terminates whenever the set of progressed formulas is finite
under the canonicalisation implemented here (flattening and deduplication of
conjunctions/disjunctions, constant folding); a ``max_states`` guard protects
against the general case where it is not.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from .ast import (
    FALSE,
    TRUE,
    And,
    Atom,
    FalseConst,
    Formula,
    Next,
    Not,
    Or,
    Release,
    TrueConst,
    Until,
    atoms_of,
)
from .dfa import MooreMachine
from .rewriting import to_nnf
from .semantics import all_assignments
from .verdict import Verdict

__all__ = ["progress", "canonicalize", "build_progression_machine"]

Letter = FrozenSet[str]


# ---------------------------------------------------------------------------
# canonical form
# ---------------------------------------------------------------------------


def _flatten(formula: Formula, cls) -> List[Formula]:
    """Flatten nested binary ``cls`` nodes into a list of operands."""
    if isinstance(formula, cls):
        return _flatten(formula.left, cls) + _flatten(formula.right, cls)
    return [formula]


def _rebuild(operands: List[Formula], cls, identity: Formula) -> Formula:
    if not operands:
        return identity
    result = operands[0]
    for operand in operands[1:]:
        result = cls(result, operand)
    return result


def canonicalize(formula: Formula) -> Formula:
    """Return a canonical representative of *formula*.

    Conjunctions and disjunctions are flattened, deduplicated, sorted by
    their textual form and constant-folded; double work is avoided by
    recursing bottom-up.  Two formulas that are equal modulo associativity,
    commutativity and idempotence of ``&``/``|`` canonicalise identically.
    """
    if isinstance(formula, (TrueConst, FalseConst, Atom)):
        return formula
    if isinstance(formula, Not):
        inner = canonicalize(formula.operand)
        if isinstance(inner, TrueConst):
            return FALSE
        if isinstance(inner, FalseConst):
            return TRUE
        if isinstance(inner, Not):
            return inner.operand
        return Not(inner)
    if isinstance(formula, Next):
        return Next(canonicalize(formula.operand))
    if isinstance(formula, Until):
        return Until(canonicalize(formula.left), canonicalize(formula.right))
    if isinstance(formula, Release):
        return Release(canonicalize(formula.left), canonicalize(formula.right))
    if isinstance(formula, (And, Or)):
        cls = And if isinstance(formula, And) else Or
        absorbing = FALSE if cls is And else TRUE
        identity = TRUE if cls is And else FALSE
        operands: List[Formula] = []
        seen = set()
        for operand in _flatten(formula, cls):
            operand = canonicalize(operand)
            if operand == absorbing:
                return absorbing
            if operand == identity:
                continue
            for part in _flatten(operand, cls):
                key = str(part)
                if key not in seen:
                    seen.add(key)
                    operands.append(part)
        if not operands:
            return identity
        operands.sort(key=str)
        return _rebuild(operands, cls, identity)
    # any syntactic sugar left: expand via NNF first
    return canonicalize(to_nnf(formula))


# ---------------------------------------------------------------------------
# progression
# ---------------------------------------------------------------------------


def progress(formula: Formula, letter: Letter) -> Formula:
    """One-step progression of an NNF *formula* through *letter*.

    The returned formula holds on an infinite word ``w`` iff the original
    formula holds on ``letter · w``.
    """
    if isinstance(formula, TrueConst) or isinstance(formula, FalseConst):
        return formula
    if isinstance(formula, Atom):
        return TRUE if formula.name in letter else FALSE
    if isinstance(formula, Not):
        # NNF: operand is an atom
        inner = formula.operand
        if isinstance(inner, Atom):
            return FALSE if inner.name in letter else TRUE
        return canonicalize(Not(progress(inner, letter)))
    if isinstance(formula, And):
        return canonicalize(And(progress(formula.left, letter), progress(formula.right, letter)))
    if isinstance(formula, Or):
        return canonicalize(Or(progress(formula.left, letter), progress(formula.right, letter)))
    if isinstance(formula, Next):
        return canonicalize(formula.operand)
    if isinstance(formula, Until):
        # X U Y  ≡  Y | (X & X(X U Y))
        return canonicalize(
            Or(
                progress(formula.right, letter),
                And(progress(formula.left, letter), formula),
            )
        )
    if isinstance(formula, Release):
        # X R Y  ≡  Y & (X | X(X R Y))
        return canonicalize(
            And(
                progress(formula.right, letter),
                Or(progress(formula.left, letter), formula),
            )
        )
    # sugar: normalise first
    return progress(to_nnf(formula), letter)


# ---------------------------------------------------------------------------
# machine construction
# ---------------------------------------------------------------------------


def build_progression_machine(
    formula: Formula,
    atoms: Sequence[str] | None = None,
    max_states: int = 4096,
    verdict_machine: MooreMachine | None = None,
) -> Tuple[MooreMachine, List[Formula]]:
    """Build the progression Moore machine for *formula*.

    Parameters
    ----------
    formula:
        The LTL property.
    atoms:
        Alphabet; defaults to the atoms of the formula.
    max_states:
        Safety bound on the number of progression states.
    verdict_machine:
        The Moore-minimal LTL3 monitor machine used to label states with
        verdicts; when ``None`` it is built internally via
        :func:`repro.ltl.monitor.build_monitor`.

    Returns
    -------
    (machine, state_formulas):
        ``machine`` is the (unminimised) Moore machine, ``state_formulas``
        gives the progressed formula represented by each state.
    """
    if atoms is None:
        atoms = atoms_of(formula)
    atoms = tuple(atoms)
    letters = tuple(all_assignments(atoms))

    initial_formula = canonicalize(to_nnf(formula))
    index: Dict[str, int] = {str(initial_formula): 0}
    formulas: List[Formula] = [initial_formula]
    reference_states: List[int] = (
        [verdict_machine.initial] if verdict_machine is not None else []
    )
    delta: List[List[int]] = []
    frontier = [0]
    while frontier:
        state = frontier.pop(0)
        # rows may be discovered out of order; grow delta lazily
        while len(delta) <= state:
            delta.append([])
        row: List[int] = []
        current_formula = formulas[state]
        for letter in letters:
            successor_formula = progress(current_formula, letter)
            key = str(successor_formula)
            if key not in index:
                if len(formulas) >= max_states:
                    raise RuntimeError(
                        "formula progression did not converge within "
                        f"{max_states} states for {formula}"
                    )
                index[key] = len(formulas)
                formulas.append(successor_formula)
                if verdict_machine is not None:
                    reference_states.append(
                        verdict_machine.step(reference_states[state], letter)
                    )
                frontier.append(index[key])
            elif verdict_machine is not None:
                # soundness check: a progressed formula always corresponds to
                # a unique verdict; detect canonicalisation bugs eagerly.
                existing = index[key]
                expected = verdict_machine.outputs[reference_states[existing]]
                actual = verdict_machine.outputs[
                    verdict_machine.step(reference_states[state], letter)
                ]
                if expected != actual:
                    raise RuntimeError(
                        "progression state reached with two different verdicts; "
                        "canonicalisation is unsound for this formula"
                    )
            row.append(index[key])
        delta[state] = row

    if verdict_machine is not None:
        outputs: List[Verdict] = [
            verdict_machine.outputs[reference_states[i]] for i in range(len(formulas))
        ]
    else:
        outputs = [_formula_verdict(f) for f in formulas]
    machine = MooreMachine(
        letters=letters,
        initial=0,
        delta=delta,
        outputs=outputs,
        state_names=[str(f) for f in formulas],
    )
    return machine, formulas


def _formula_verdict(formula: Formula) -> Verdict:
    """LTL3 verdict of a progression state.

    A state formula evaluates to ``⊥`` when it is unsatisfiable (no infinite
    continuation can satisfy the original property any more), ``⊤`` when its
    negation is unsatisfiable, and ``?`` otherwise.  Satisfiability is decided
    on the Büchi automaton of the formula — exact, and cheap for the handful
    of progression states a property generates.
    """
    from .buchi import is_satisfiable
    from .rewriting import negate

    if isinstance(formula, FalseConst):
        return Verdict.BOTTOM
    if isinstance(formula, TrueConst):
        return Verdict.TOP
    if not is_satisfiable(formula):
        return Verdict.BOTTOM
    if not is_satisfiable(negate(formula)):
        return Verdict.TOP
    return Verdict.INCONCLUSIVE
