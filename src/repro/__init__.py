"""repro — decentralized runtime verification of LTL3 specifications.

A from-scratch reproduction of *Decentralized Runtime Verification of LTL
Specifications in Distributed Systems* (IPDPS 2015 / MSc thesis 2016).

Subpackages
-----------
``repro.ltl``
    LTL parsing, semantics, Büchi translation and LTL3 monitor synthesis.
``repro.distributed``
    Vector clocks, events, distributed computations and computation lattices.
``repro.slicing``
    Computation slicing for conjunctive predicate detection.
``repro.core``
    The decentralized monitoring algorithm (the paper's contribution), plus
    the lattice oracle and a centralized baseline.
``repro.sim``
    Discrete-event simulation of asynchronous programs, networks and monitors.
``repro.experiments``
    Properties A–F of the case study and the harness regenerating every table
    and figure of the evaluation chapter.
"""

__version__ = "1.0.0"

__all__ = ["ltl", "distributed", "slicing", "core", "sim", "experiments"]
