"""repro — decentralized runtime verification of LTL3 specifications.

A from-scratch reproduction of *Decentralized Runtime Verification of LTL
Specifications in Distributed Systems* (IPDPS 2015 / MSc thesis 2016).

The supported programmatic surface is :mod:`repro.api` — one curated
module whose ``__all__`` is the compatibility contract::

    import repro

    repro.api.run_scenario("paper-default", repro.api.ExperimentScale())

Subpackages remain importable directly for exploratory work, but only the
names re-exported by ``repro.api`` are stable across releases.

Subpackages
-----------
``repro.api``
    The curated public API: monitor synthesis, scenario execution on every
    backend, fault plans and cluster deployment.
``repro.ltl``
    LTL parsing, semantics, Büchi translation and LTL3 monitor synthesis.
``repro.distributed``
    Vector clocks, events, distributed computations and computation lattices.
``repro.slicing``
    Computation slicing for conjunctive predicate detection.
``repro.core``
    The decentralized monitoring algorithm (the paper's contribution), plus
    the lattice oracle and a centralized baseline.
``repro.sim``
    Discrete-event simulation of asynchronous programs, networks and monitors.
``repro.runtime``
    The asyncio streaming backend: monitor nodes over real sockets.
``repro.fleet``
    The multi-tenant fleet: thousands of live monitored sessions per
    process, sharded across a pool, with event sources and verdict sinks.
``repro.cluster``
    The multi-host runtime: wire protocol v2 codec, cluster manifests,
    worker processes and the coordinating control plane.
``repro.faults``
    Fault plans and the crash/restart injection seam shared by all backends.
``repro.scenarios``
    The registered scenario catalogue (network, workload and fault models).
``repro.experiments``
    Properties A–F of the case study and the harness regenerating every table
    and figure of the evaluation chapter.
"""

from importlib import import_module

__version__ = "1.0.0"

#: subpackages (plus ``api``) importable as ``repro.<name>``; kept lazy so
#: ``import repro`` stays cheap and never drags in asyncio or hypothesis
__all__ = [
    "api",
    "ltl",
    "distributed",
    "slicing",
    "core",
    "sim",
    "runtime",
    "fleet",
    "cluster",
    "faults",
    "scenarios",
    "experiments",
]


def __getattr__(name: str) -> object:
    """Import subpackages on first attribute access (PEP 562).

    Lets ``import repro; repro.api.run_scenario(...)`` work without eagerly
    importing every subpackage at ``import repro`` time.
    """
    if name in __all__:
        module = import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    """Advertise the lazy subpackages to ``dir()`` and tab completion."""
    return sorted(set(globals()) | set(__all__))
