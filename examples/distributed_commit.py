#!/usr/bin/env python3
"""Monitoring a two-phase-commit round for atomicity and progress.

A coordinator and several participants run one round of two-phase commit
(the substrate computation comes from ``repro.distributed.programs``).  Three
global LTL properties are monitored in a decentralized fashion:

* **Atomicity (safety)** — no participant commits before every participant
  has voted: ``G(committed_any -> voted_all)`` expressed per participant.
* **Progress (co-safety)** — eventually every process commits:
  ``F(committed_0 & committed_1 & ...)``.
* **Causality (ordering)** — the coordinator does not commit until all
  participants are prepared: ``(!C.committed) U (prepared_all)``.

The example also shows the message/memory trade-off against the centralized
baseline, which ships every event to a single monitor.
"""

from repro.core import CentralizedMonitor, LatticeOracle, run_decentralized
from repro.distributed import two_phase_commit_example
from repro.ltl import Proposition, PropositionRegistry, build_monitor


def registry_for(num_processes: int) -> PropositionRegistry:
    propositions = []
    for process in range(num_processes):
        propositions.append(
            Proposition.variable(f"P{process}.committed", process, "committed")
        )
        propositions.append(
            Proposition.variable(f"P{process}.voted", process, "voted")
        )
        propositions.append(
            Proposition.comparison(
                f"P{process}.prepared", process, "phase", "==", "prepared"
            )
        )
    return PropositionRegistry(propositions)


def main() -> None:
    num_participants = 3
    computation = two_phase_commit_example(num_participants)
    n = computation.num_processes
    registry = registry_for(n)
    participants = range(1, n)

    voted_all = " & ".join(f"P{p}.voted" for p in participants)
    committed_all = " & ".join(f"P{p}.committed" for p in range(n))
    prepared_all = " & ".join(f"P{p}.prepared" for p in participants)
    committed_any = " | ".join(f"P{p}.committed" for p in participants)

    properties = {
        "atomicity  G(participant committed -> all voted)":
            f"G(({committed_any}) -> ({voted_all}))",
        "progress   F(everyone committed)":
            f"F({committed_all})",
        "ordering   (!coordinator committed) U (all prepared)":
            f"(!P0.committed) U ({prepared_all})",
    }

    print(f"Two-phase commit with 1 coordinator + {num_participants} participants "
          f"({computation.num_events} events)\n")
    for label, formula in properties.items():
        automaton = build_monitor(formula, atoms=registry.names)
        oracle = LatticeOracle(computation, automaton, registry).evaluate()
        decentralized = run_decentralized(computation, automaton, registry)
        centralized = CentralizedMonitor.monitor_computation(
            computation, automaton, registry
        )
        assert decentralized.declared_verdicts == oracle.conclusive_verdicts
        print(f"{label}")
        print(f"   formula              : {formula}")
        print(f"   oracle verdicts      : {sorted(str(v) for v in oracle.verdicts)}")
        print(f"   decentralized        : verdicts "
              f"{sorted(str(v) for v in decentralized.reported_verdicts)}, "
              f"{decentralized.total_messages} messages, "
              f"{decentralized.total_views_created} views")
        print(f"   centralized baseline : {centralized.messages} messages, "
              f"{centralized.max_tracked_cuts} tracked global states\n")

    print("The decentralized monitors reach the same verdicts while exchanging "
          "only the tokens they need; the centralized baseline ships every event "
          "and tracks the whole frontier of consistent global states.")


if __name__ == "__main__":
    main()
