#!/usr/bin/env python3
"""Monitoring a simulated drone swarm for mission-safety LTL properties.

The paper motivates decentralized monitoring with swarms of robots or drones
(search & rescue, traffic monitoring, agriculture, inspection).  This example
simulates a small swarm in which every drone periodically updates two local
flags —

* ``armed``    : the drone's failsafe is armed;
* ``on_station``: the drone reached its assigned station;

— and exchanges heartbeat messages with its peers.  Two global properties are
monitored in a fully decentralized fashion (one monitor per drone, no global
clock, token messages only):

* **Safety**  ``G(armed_0 & armed_1 & ... )`` — no drone ever flies with its
  failsafe disarmed.
* **Mission** ``F(on_station_0 & on_station_1 & ...)`` — eventually all
  drones are on station at the same (consistent) global instant.

Run with:  python examples/swarm_coordination.py [num_drones]
"""

import sys

from repro.core import LatticeOracle, run_decentralized
from repro.distributed import ComputationBuilder
from repro.ltl import Proposition, PropositionRegistry, build_monitor


def build_swarm_mission(num_drones: int, disarm_glitch: bool):
    """One mission: drones take off, reach their stations, send heartbeats.

    With ``disarm_glitch`` drone 1 momentarily disarms mid-flight while the
    others are mid-manoeuvre — a bug that only some interleavings expose.
    """
    initial = [
        {"armed": True, "on_station": False} for _ in range(num_drones)
    ]
    builder = ComputationBuilder(initial)
    message_id = 0

    # phase 1: every drone climbs and reports a heartbeat to its right peer
    for drone in range(num_drones):
        builder.internal(drone, {"armed": True})
        message_id += 1
        builder.send(drone, to=(drone + 1) % num_drones, message_id=message_id)
    for drone in range(num_drones):
        left = (drone - 1) % num_drones
        builder.receive(drone, frm=left, message_id=left + 1)

    # phase 2: the glitch (if any), concurrent with the others' manoeuvres
    if disarm_glitch:
        builder.internal(1, {"armed": False})
        builder.internal(1, {"armed": True})

    # phase 3: drones reach their stations one after the other
    for drone in range(num_drones):
        builder.internal(drone, {"on_station": True})
    return builder.build()


def registry_for(num_drones: int) -> PropositionRegistry:
    propositions = []
    for drone in range(num_drones):
        propositions.append(Proposition.variable(f"D{drone}.armed", drone, "armed"))
        propositions.append(
            Proposition.variable(f"D{drone}.on_station", drone, "on_station")
        )
    return PropositionRegistry(propositions)


def monitor_mission(num_drones: int, disarm_glitch: bool) -> None:
    computation = build_swarm_mission(num_drones, disarm_glitch)
    registry = registry_for(num_drones)
    armed = " & ".join(f"D{d}.armed" for d in range(num_drones))
    stationed = " & ".join(f"D{d}.on_station" for d in range(num_drones))
    safety = build_monitor(f"G({armed})", atoms=registry.names)
    mission = build_monitor(f"F({stationed})", atoms=registry.names)

    label = "with a disarm glitch" if disarm_glitch else "nominal"
    print(f"\n=== Mission {label} ({num_drones} drones, "
          f"{computation.num_events} events) ===")
    for name, automaton in (("safety  G(all armed)", safety),
                            ("mission F(all on station)", mission)):
        oracle = LatticeOracle(computation, automaton, registry).evaluate()
        result = run_decentralized(computation, automaton, registry)
        print(f"  {name}:")
        print(f"    oracle verdicts        : {sorted(str(v) for v in oracle.verdicts)}")
        print(f"    decentralized verdicts : "
              f"{sorted(str(v) for v in result.reported_verdicts)}")
        print(f"    monitoring messages    : {result.total_messages}, "
              f"global views: {result.total_views_created}")
        assert result.declared_verdicts == oracle.conclusive_verdicts


def main() -> None:
    num_drones = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    monitor_mission(num_drones, disarm_glitch=False)
    monitor_mission(num_drones, disarm_glitch=True)
    print("\nIn the glitched mission the safety property is violated only on the "
          "interleavings where the disarm overlaps the peers' manoeuvres — the "
          "decentralized monitors still catch it, without any global clock.")


if __name__ == "__main__":
    main()
