#!/usr/bin/env python3
"""Reproduce a slice of the paper's Chapter 5 evaluation from the command line.

Generates the case-study workload (normal-distributed event and communication
wait times, propositions ``p``/``q`` per process), runs the decentralized
monitors for a chosen property on the discrete-event simulator, and prints
the metrics the paper reports: monitoring messages, delayed events, total
global views and the delay-time percentage.

Run with:  python examples/case_study_experiment.py [property] [processes]
e.g.       python examples/case_study_experiment.py D 4
"""

import sys

from repro.experiments import (
    ExperimentScale,
    case_study_monitor,
    format_table,
    property_formula,
    run_monitoring_experiment,
    run_table_5_1,
)


def main() -> None:
    property_name = (sys.argv[1] if len(sys.argv) > 1 else "C").upper()
    max_processes = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    print(f"Case-study property {property_name}: "
          f"{property_formula(property_name, max_processes)}\n")

    automaton = case_study_monitor(property_name, max_processes)
    counts = automaton.transition_counts()
    print(f"Monitor automaton: {automaton.num_states} states, "
          f"{counts['total']} transitions "
          f"({counts['outgoing']} outgoing, {counts['self_loops']} self-loops)\n")

    scale = ExperimentScale(
        process_counts=tuple(range(2, max_processes + 1)),
        events_per_process=8,
        replications=2,
    )
    rows = [
        run_monitoring_experiment(property_name, n, scale)
        for n in scale.process_counts
    ]
    print("Monitoring overhead as the number of processes grows "
          "(cf. Figures 5.4–5.8):")
    print(format_table(
        rows,
        columns=["processes", "events", "messages", "global_views",
                 "delayed_events", "delay_time_pct_per_view"],
    ))

    print("\nTransition counts for all six properties (cf. Table 5.1):")
    table = run_table_5_1(process_counts=(2, max_processes))
    print(format_table(table))


if __name__ == "__main__":
    main()
