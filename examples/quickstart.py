#!/usr/bin/env python3
"""Quickstart: decentralized runtime verification of the paper's running example.

This script reproduces, end to end, the example that drives the paper's
exposition (Figures 2.1–2.3 and 3.1):

1. build the two-process distributed program of Fig. 2.1;
2. synthesise the LTL3 monitor automaton for
   ψ = G((x1 >= 5) -> ((x2 >= 15) U (x1 = 10)))   (Fig. 2.3);
3. run one decentralized monitor per process (tokens over a loopback
   network) and compare the verdict set with the lattice oracle of Chapter 3.

Run with:  python examples/quickstart.py
"""

from repro.core import LatticeOracle, run_decentralized
from repro.distributed import running_example, running_example_registry
from repro.ltl import build_monitor


def main() -> None:
    # --- the distributed program of Fig. 2.1 -------------------------------
    computation = running_example()
    print("Distributed program (Fig. 2.1):")
    for process in range(computation.num_processes):
        events = ", ".join(
            f"{e.kind.value}{dict(e.state)}" for e in computation.events_of(process)
        )
        print(f"  P{process + 1}: {events}")
    print(f"  events: {computation.num_events}, "
          f"consistent cuts: {len(computation.consistent_cuts())}")

    # --- the LTL3 monitor automaton of Fig. 2.3 ----------------------------
    registry = running_example_registry()
    psi = build_monitor("G({x1>=5} -> ({x2>=15} U {x1=10}))", atoms=registry.names)
    print("\nLTL3 monitor automaton (Fig. 2.3):")
    print(psi.describe())

    # --- the oracle of Chapter 3 -------------------------------------------
    oracle = LatticeOracle(computation, psi, registry).evaluate()
    print("\nOracle over the computation lattice (Fig. 3.1):")
    print(f"  lattice cuts:  {oracle.num_cuts}")
    print(f"  lattice paths: {oracle.num_paths}")
    print(f"  verdicts over all paths: {sorted(str(v) for v in oracle.verdicts)}")

    # --- decentralized monitoring ------------------------------------------
    result = run_decentralized(computation, psi, registry)
    print("\nDecentralized monitors (one per process):")
    print(f"  verdicts reported: {sorted(str(v) for v in result.reported_verdicts)}")
    print(f"  conclusive verdicts declared: "
          f"{sorted(str(v) for v in result.declared_verdicts)}")
    print(f"  monitoring messages exchanged: {result.total_messages}")
    print(f"  global views created: {result.total_views_created}")

    assert result.reported_verdicts == oracle.verdicts, "monitors disagree with oracle"
    print("\nThe decentralized verdict set matches the oracle: the monitors found "
          "both the violating interleavings (⊥) and the inconclusive one (?).")


if __name__ == "__main__":
    main()
