"""Smoke tests: every example script runs end-to-end and asserts internally."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_examples_directory_present():
    assert EXAMPLES_DIR.is_dir()
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart.py", "swarm_coordination.py", "distributed_commit.py",
            "case_study_experiment.py"} <= names


def test_quickstart_runs():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "matches the oracle" in result.stdout
    assert "⊥" in result.stdout


def test_swarm_coordination_runs():
    result = run_example("swarm_coordination.py", "3")
    assert result.returncode == 0, result.stderr
    assert "Mission nominal" in result.stdout
    assert "disarm glitch" in result.stdout


def test_distributed_commit_runs():
    result = run_example("distributed_commit.py")
    assert result.returncode == 0, result.stderr
    assert "atomicity" in result.stdout
    assert "centralized baseline" in result.stdout


@pytest.mark.slow
def test_case_study_experiment_runs():
    result = run_example("case_study_experiment.py", "B", "3")
    assert result.returncode == 0, result.stderr
    assert "Monitor automaton" in result.stdout
    assert "Table 5.1" in result.stdout
