"""Tests for the scenario engine: models, registry, sharded execution."""

import json
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MonitorNetwork, run_decentralized
from repro.api import ExperimentScale, run_scenario
from repro.experiments import run_monitoring_experiment
from repro.experiments.engine import execute_points, execute_sweep
from repro.experiments.properties import case_study_registry
from repro.ltl import build_monitor
from repro.scenarios import (
    BurstyCommWorkload,
    BurstyNetwork,
    FixedLatencyNetwork,
    GridPoint,
    HotPropositionWorkload,
    LossyNetwork,
    PaperWorkload,
    PartitionNetwork,
    ReliableNetwork,
    Scenario,
    SweepGrid,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
)
from repro.sim import (
    Simulator,
    WorkloadConfig,
    generate_computation,
    random_computation,
    simulate_monitored_run,
)

SMALL_SCALE = ExperimentScale(
    process_counts=(2, 3),
    events_per_process=4,
    replications=2,
    max_views_per_state=2,
)

ALL_NETWORK_MODELS = [
    ReliableNetwork(),
    FixedLatencyNetwork(),
    LossyNetwork(loss_probability=0.3, retransmit_timeout=0.2),
    PartitionNetwork(windows=((1.0, 4.0),)),
    BurstyNetwork(period=0.5),
]


class _Sink:
    def __init__(self):
        self.received = []
        self.times = []

    def receive_message(self, message):
        self.received.append(message)


class TestRegistry:
    def test_at_least_five_builtin_scenarios(self):
        assert len(list_scenarios()) >= 5

    def test_expected_builtins_present(self):
        names = scenario_names()
        for name in (
            "paper-default",
            "lossy-retransmit",
            "partition-heal",
            "bursty-comm",
            "hot-spot",
        ):
            assert name in names

    def test_get_scenario_roundtrip(self):
        for scenario in list_scenarios():
            assert get_scenario(scenario.name) is scenario

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("does-not-exist")

    def test_duplicate_registration_rejected(self):
        scenario = get_scenario("paper-default")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(scenario)
        # replace=True is the explicit escape hatch
        assert register_scenario(scenario, replace=True) is scenario

    def test_describe_is_json_serialisable(self):
        for scenario in list_scenarios():
            description = json.loads(json.dumps(scenario.describe()))
            assert description["name"] == scenario.name
            assert "kind" in description["workload"]
            assert "kind" in description["network"]


class TestNetworkModels:
    def test_models_build_monitor_networks(self):
        for model in ALL_NETWORK_MODELS:
            network = model.build(Simulator(), seed=1)
            assert isinstance(network, MonitorNetwork)

    def test_lossy_counts_retransmissions_and_delivers_everything(self):
        simulator = Simulator()
        network = LossyNetwork(
            jitter=0.0, loss_probability=0.5, retransmit_timeout=0.3
        ).build(simulator, seed=3)
        sink = _Sink()
        network.register(1, sink)
        for i in range(50):
            network.send(0, 1, i)
        simulator.run()
        assert sink.received == list(range(50))
        assert network.retransmissions > 0
        assert network.extra_stats()["retransmissions"] == float(network.retransmissions)

    def test_partition_holds_cross_group_messages_until_heal(self):
        simulator = Simulator()
        network = PartitionNetwork(jitter=0.0, windows=((1.0, 5.0),)).build(
            simulator, seed=0
        )
        sink0, sink1 = _Sink(), _Sink()
        network.register(0, sink0)
        network.register(1, sink1)

        def send_during_partition():
            network.send(0, 1, "cross")  # groups 0 and 1 differ
            network.send(1, 1, "intra-noop")  # same endpoint, same group

        simulator.schedule_at(2.0, send_during_partition)
        simulator.run()
        assert sink1.received == ["intra-noop", "cross"]
        # the cross-group message waited for the heal at t=5.0
        assert network.held_messages == 1
        assert simulator.now >= 5.0

    def test_partition_cross_group_fast_outside_windows(self):
        simulator = Simulator()
        network = PartitionNetwork(jitter=0.0, windows=((10.0, 20.0),)).build(
            simulator, seed=0
        )
        sink = _Sink()
        network.register(1, sink)
        network.send(0, 1, "early")
        simulator.run()
        assert sink.received == ["early"]
        assert simulator.now < 1.0
        assert network.held_messages == 0

    def test_bursty_quantizes_delivery_to_period(self):
        simulator = Simulator()
        network = BurstyNetwork(latency=0.01, period=0.5).build(simulator, seed=0)
        delivery_times = []

        class TimedSink:
            def receive_message(self, message):
                delivery_times.append(simulator.now)

        network.register(1, TimedSink())
        simulator.schedule_at(0.1, lambda: network.send(0, 1, "a"))
        simulator.schedule_at(0.2, lambda: network.send(0, 1, "b"))
        simulator.schedule_at(0.7, lambda: network.send(0, 1, "c"))
        simulator.run()
        assert delivery_times == [0.5, 0.5, 1.0]
        assert network.bursts_used == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LossyNetwork(loss_probability=1.0).build(Simulator(), seed=0)
        with pytest.raises(ValueError):
            PartitionNetwork(windows=((5.0, 2.0),)).build(Simulator(), seed=0)
        with pytest.raises(ValueError):
            PartitionNetwork(num_groups=1).build(Simulator(), seed=0)
        with pytest.raises(ValueError):
            BurstyNetwork(period=0.0).build(Simulator(), seed=0)

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_processes=st.integers(min_value=2, max_value=3),
        formula_index=st.integers(min_value=0, max_value=2),
    )
    def test_reliable_delivery_models_match_loopback_verdicts(
        self, seed, num_processes, formula_index
    ):
        """Every network model delivers reliably, so conclusive verdicts must
        equal the loopback runner's regardless of timing behaviour."""
        formulas = [
            "F(P0.p & P1.p)",
            "G(P0.p U P1.q)",
            "G(!(P0.p & P1.q))",
        ]
        registry = case_study_registry(num_processes)
        automaton = build_monitor(formulas[formula_index], atoms=registry.names)
        computation = random_computation(num_processes, 10, seed=seed)
        loopback = run_decentralized(computation, automaton, registry)
        for model in ALL_NETWORK_MODELS:
            report = simulate_monitored_run(
                computation, automaton, registry, seed=seed, network=model
            )
            assert report.declared_verdicts == loopback.declared_verdicts, (
                f"verdicts diverged under {model!r} for seed {seed}"
            )


class TestWorkloadModels:
    KWARGS = dict(
        num_processes=3,
        events_per_process=5,
        evt_mu=3.0,
        evt_sigma=1.0,
        comm_mu=3.0,
        comm_sigma=1.0,
        truth_probability=0.5,
        initial_valuation={"p": False, "q": False},
        seed=7,
    )

    def test_paper_workload_matches_plain_config(self):
        config = PaperWorkload().build_config(**self.KWARGS)
        reference = WorkloadConfig(**self.KWARGS)
        first = generate_computation(config)
        second = generate_computation(reference)
        assert [e.state for e in first.all_events()] == [
            e.state for e in second.all_events()
        ]
        assert [e.timestamp for e in first.all_events()] == [
            e.timestamp for e in second.all_events()
        ]

    def test_hot_spot_skews_event_counts(self):
        config = HotPropositionWorkload(
            hot_processes=(0,), event_factor=3.0
        ).build_config(**self.KWARGS)
        computation = generate_computation(config)
        events_of = [
            sum(1 for e in computation.events_of(p) if e.is_internal)
            for p in range(3)
        ]
        assert events_of[0] == 15  # 5 * 3.0
        assert events_of[1] == 5
        assert events_of[2] == 5

    def test_hot_spot_keeps_horizon_comparable(self):
        config = HotPropositionWorkload(
            hot_processes=(0,), event_factor=3.0
        ).build_config(**self.KWARGS)
        computation = generate_computation(config)
        last = [
            max(e.timestamp for e in computation.events_of(p)) for p in range(3)
        ]
        # the hot process finishes within ~2x of the others, not 3x earlier
        assert last[0] < 2.0 * max(last[1], last[2])

    def test_bursty_comm_multiplies_program_messages(self):
        base = generate_computation(PaperWorkload().build_config(**self.KWARGS))
        bursty = generate_computation(
            BurstyCommWorkload(burst_size=3, burst_gap=0.1).build_config(**self.KWARGS)
        )
        base_sends = sum(1 for e in base.all_events() if e.is_send)
        bursty_sends = sum(1 for e in bursty.all_events() if e.is_send)
        assert bursty_sends > base_sends

    def test_hot_process_indices_validated(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_processes=2, hot_processes=(5,))
        with pytest.raises(ValueError):
            WorkloadConfig(hot_event_factor=0.5)
        with pytest.raises(ValueError):
            WorkloadConfig(comm_burst_size=0)


class TestShardedExecution:
    def test_sharded_sweep_matches_serial_byte_for_byte(self):
        serial = ExperimentScale(
            process_counts=(2, 3), events_per_process=4, replications=2,
            max_views_per_state=2, workers=1,
        )
        sharded = ExperimentScale(
            process_counts=(2, 3), events_per_process=4, replications=2,
            max_views_per_state=2, workers=3,
        )
        grid = SweepGrid(properties=("B", "E"))
        scenario = get_scenario("paper-default")
        rows_serial = execute_sweep(scenario, serial, grid=grid)
        rows_sharded = execute_sweep(scenario, sharded, grid=grid)
        assert json.dumps(rows_serial, sort_keys=True) == json.dumps(
            rows_sharded, sort_keys=True
        )
        # four points: sharding covers the point axis, not just replications
        assert len(rows_serial) == 4

    def test_shared_pool_matches_serial(self):
        scenario = get_scenario("paper-default")
        points = [GridPoint("B", 2), GridPoint("E", 2, comm_mu=None, seed_offset=500)]
        serial_rows = execute_points(scenario, points, SMALL_SCALE)
        with ProcessPoolExecutor(max_workers=2) as pool:
            pooled_rows = execute_points(scenario, points, SMALL_SCALE, pool=pool)
        assert json.dumps(serial_rows, sort_keys=True) == json.dumps(
            pooled_rows, sort_keys=True
        )

    def test_scenarios_run_sharded_identically(self):
        # lossy + partition scenarios end-to-end, serial vs sharded
        for name in ("lossy-retransmit", "partition-heal"):
            serial = run_scenario(
                name,
                ExperimentScale(
                    process_counts=(2,), events_per_process=4, replications=2,
                    max_views_per_state=2, workers=1,
                ),
            )
            sharded = run_scenario(
                name,
                ExperimentScale(
                    process_counts=(2,), events_per_process=4, replications=2,
                    max_views_per_state=2, workers=2,
                ),
            )
            assert json.dumps(serial, sort_keys=True) == json.dumps(
                sharded, sort_keys=True
            )

    def test_comm_axis_points_get_staggered_seeds(self):
        grid = SweepGrid(
            properties=("C",), process_counts=(2,), comm_mus=(3.0, 6.0, None)
        )
        points = grid.points(("A",), (5,))
        assert [p.seed_offset for p in points] == [0, 1000, 2000]
        assert points[2].comm_mu is None
        # defaults fall back to the provided axes
        default_points = SweepGrid().points(("A", "B"), (2, 3))
        assert len(default_points) == 4
        assert all(p.comm_mu == "default" for p in default_points)

    def test_run_monitoring_experiment_unchanged_metrics(self):
        # the thin wrapper keeps the historical row shape
        row = run_monitoring_experiment("B", 2, SMALL_SCALE)
        for key in (
            "property", "processes", "events", "messages", "token_messages",
            "global_views", "delayed_events", "delay_time_pct_per_view",
            "log_events", "log_messages",
        ):
            assert key in row
        assert "comm_mu" not in row  # only comm-axis points carry the column

    def test_scenario_rows_carry_network_stats(self):
        rows = run_scenario("lossy-retransmit", SMALL_SCALE)
        assert all("retransmissions" in row for row in rows)
        rows = run_scenario("partition-heal", SMALL_SCALE)
        assert all("held_messages" in row for row in rows)


class TestCustomScenario:
    def test_custom_scenario_executes_without_registration(self):
        scenario = Scenario(
            name="test-custom",
            description="ad-hoc condition",
            workload=PaperWorkload(),
            network=FixedLatencyNetwork(latency=0.02),
            grid=SweepGrid(properties=("B",), process_counts=(2,)),
        )
        rows = execute_sweep(scenario, SMALL_SCALE)
        assert len(rows) == 1
        assert rows[0]["property"] == "B"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Scenario(
                name="",
                description="",
                workload=PaperWorkload(),
                network=ReliableNetwork(),
            )
