"""Tests for the discrete-event simulator, network, workload and sim runner."""

import pytest

from repro.core import LatticeOracle, run_decentralized
from repro.distributed import ComputationLattice
from repro.experiments import case_study_monitor, case_study_registry
from repro.ltl import Verdict
from repro.sim import (
    SimulatedNetwork,
    Simulator,
    WorkloadConfig,
    generate_computation,
    random_computation,
    simulate_monitored_run,
)


class TestSimulator:
    def test_events_execute_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule_at(2.0, lambda: order.append("b"))
        simulator.schedule_at(1.0, lambda: order.append("a"))
        simulator.schedule_at(3.0, lambda: order.append("c"))
        simulator.run()
        assert order == ["a", "b", "c"]
        assert simulator.now == 3.0

    def test_ties_preserve_scheduling_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule_at(1.0, lambda: order.append(1))
        simulator.schedule_at(1.0, lambda: order.append(2))
        simulator.run()
        assert order == [1, 2]

    def test_schedule_after(self):
        simulator = Simulator()
        times = []
        simulator.schedule_at(5.0, lambda: simulator.schedule_after(2.0, lambda: times.append(simulator.now)))
        simulator.run()
        assert times == [7.0]

    def test_cannot_schedule_in_the_past(self):
        simulator = Simulator()
        simulator.schedule_at(1.0, lambda: None)
        simulator.run()
        with pytest.raises(ValueError):
            simulator.schedule_at(0.5, lambda: None)
        with pytest.raises(ValueError):
            simulator.schedule_after(-1.0, lambda: None)

    def test_schedule_at_now_during_callback_allowed(self):
        # regression: scheduling at exactly self.now from inside a callback
        # executing at that instant must be accepted and run afterwards
        simulator = Simulator()
        order = []

        def first():
            order.append("first")
            simulator.schedule_at(simulator.now, lambda: order.append("second"))

        simulator.schedule_at(1.5, first)
        simulator.run()
        assert order == ["first", "second"]
        assert simulator.now == 1.5

    def test_schedule_at_clamps_float_rounding_drift(self):
        # regression: an absolute time reconstructed by summing float delays
        # can undershoot `now` by one ulp (0.1 + 0.2 = 0.30000000000000004
        # while the caller computes 0.3); such times are clamped to `now`
        simulator = Simulator()
        times = []

        def at_drifted():
            assert simulator.now == 0.1 + 0.2  # > 0.3
            simulator.schedule_at(0.3, lambda: times.append(simulator.now))

        simulator.schedule_at(0.1, lambda: simulator.schedule_after(0.2, at_drifted))
        simulator.run()
        assert times == [0.1 + 0.2]

    def test_schedule_clearly_in_the_past_still_rejected(self):
        simulator = Simulator()
        simulator.schedule_at(1.0, lambda: None)
        simulator.run()
        with pytest.raises(ValueError):
            simulator.schedule_at(1.0 - 1e-6, lambda: None)

    def test_run_until(self):
        simulator = Simulator()
        hits = []
        for t in (1.0, 2.0, 3.0):
            simulator.schedule_at(t, lambda t=t: hits.append(t))
        simulator.run(until=2.0)
        assert hits == [1.0, 2.0]
        assert simulator.pending == 1

    def test_callbacks_counted(self):
        simulator = Simulator()
        simulator.schedule_at(0.0, lambda: None)
        simulator.run()
        assert simulator.events_executed == 1


class _Sink:
    def __init__(self):
        self.received = []

    def receive_message(self, message):
        self.received.append(message)


class TestSimulatedNetwork:
    def test_messages_delivered_with_latency(self):
        simulator = Simulator()
        network = SimulatedNetwork(simulator, latency=0.5, jitter=0.0)
        sink = _Sink()
        network.register(1, sink)
        network.send(0, 1, "hello")
        simulator.run()
        assert sink.received == ["hello"]
        assert simulator.now == pytest.approx(0.5)
        assert network.messages_sent == 1 and network.messages_delivered == 1

    def test_fifo_order_preserved_despite_jitter(self):
        simulator = Simulator()
        network = SimulatedNetwork(simulator, latency=0.2, jitter=0.3, seed=7)
        sink = _Sink()
        network.register(1, sink)
        for i in range(20):
            network.send(0, 1, i)
        simulator.run()
        assert sink.received == list(range(20))

    def test_unknown_target_rejected(self):
        network = SimulatedNetwork(Simulator())
        with pytest.raises(ValueError):
            network.send(0, 3, "x")

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            SimulatedNetwork(Simulator(), latency=-1.0)


class TestWorkloadGenerator:
    def test_generates_requested_internal_events(self):
        config = WorkloadConfig(num_processes=3, events_per_process=5, comm_mu=None, seed=1)
        computation = generate_computation(config)
        assert computation.num_processes == 3
        # without communication every event is internal
        assert computation.num_events == 15

    def test_communication_adds_send_receive_pairs(self):
        config = WorkloadConfig(num_processes=3, events_per_process=5, comm_mu=2.0, seed=2)
        computation = generate_computation(config)
        sends = sum(1 for e in computation.all_events() if e.is_send)
        receives = sum(1 for e in computation.all_events() if e.is_receive)
        assert sends > 0
        assert sends == receives

    def test_deterministic_for_fixed_seed(self):
        config = WorkloadConfig(num_processes=2, events_per_process=6, seed=42)
        first = generate_computation(config)
        second = generate_computation(config)
        assert [e.state for e in first.all_events()] == [
            e.state for e in second.all_events()
        ]
        assert [e.timestamp for e in first.all_events()] == [
            e.timestamp for e in second.all_events()
        ]

    def test_ensure_final_forces_all_true_last_states(self):
        config = WorkloadConfig(num_processes=3, events_per_process=4, seed=3, ensure_final=True)
        computation = generate_computation(config)
        final = computation.global_state(computation.final_cut())
        assert all(state["p"] and state["q"] for state in final)

    def test_initial_valuation_respected(self):
        config = WorkloadConfig(
            num_processes=2, events_per_process=3, seed=4,
            initial_valuation={"p": True, "q": False},
        )
        computation = generate_computation(config)
        assert computation.initial_states[0] == {"p": True, "q": False}

    def test_timestamps_increase_per_process(self):
        config = WorkloadConfig(num_processes=3, events_per_process=6, seed=5)
        computation = generate_computation(config)
        for process in range(3):
            times = [e.timestamp for e in computation.events_of(process)]
            assert times == sorted(times)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_processes=0)
        with pytest.raises(ValueError):
            WorkloadConfig(events_per_process=0)
        with pytest.raises(ValueError):
            WorkloadConfig(evt_mu=0.0)

    def test_random_computation_is_valid(self):
        computation = random_computation(3, 12, seed=9)
        assert computation.num_events == 12
        lattice = ComputationLattice.from_computation(computation)
        assert len(lattice) >= 1


class TestSimulatedMonitoredRun:
    @pytest.fixture(scope="class")
    def report(self):
        config = WorkloadConfig(num_processes=3, events_per_process=6, seed=11)
        computation = generate_computation(config)
        registry = case_study_registry(3)
        automaton = case_study_monitor("B", 3)
        return simulate_monitored_run(computation, automaton, registry, seed=1), computation, registry, automaton

    def test_report_fields(self, report):
        rep, computation, _, _ = report
        assert rep.num_processes == 3
        assert rep.total_events == computation.num_events
        assert rep.monitor_messages >= rep.token_messages
        assert rep.monitor_end_time >= rep.program_end_time
        assert rep.total_global_views >= 3

    def test_verdicts_match_loopback_runner(self, report):
        rep, computation, registry, automaton = report
        loopback = run_decentralized(computation, automaton, registry)
        assert rep.declared_verdicts == loopback.declared_verdicts

    def test_verdicts_sound_wrt_oracle(self, report):
        rep, computation, registry, automaton = report
        oracle = LatticeOracle(computation, automaton, registry).evaluate()
        assert rep.declared_verdicts <= oracle.conclusive_verdicts
        assert oracle.conclusive_verdicts <= rep.declared_verdicts

    def test_eventually_property_satisfied_with_ensure_final(self, report):
        rep, *_ = report
        assert Verdict.TOP in rep.declared_verdicts

    def test_as_dict_serialisable(self, report):
        rep, *_ = report
        data = rep.as_dict()
        assert data["processes"] == 3
        assert isinstance(data["verdicts"], list)

    def test_delay_metric_definition(self, report):
        rep, *_ = report
        if rep.total_global_views and rep.program_end_time > 0:
            expected = (
                (rep.monitor_extra_time / rep.program_end_time) * 100.0
            ) / rep.total_global_views
            assert rep.delay_time_percentage_per_view == pytest.approx(expected)
