"""Unit properties of the :mod:`repro.coordination` routing policies.

Every topology is a pure, stateless function of ``(name, num_processes)``
(plus formula ownership for ``slicer-placement``): two instances built from
the same inputs must answer every routing question identically — that is
what lets cluster workers derive routing from a ``RunSpec`` field alone.
The tests here pin the structural invariants (tree walks terminate, the
gossip overlay is symmetric and connected, rankings are deterministic)
without running any monitors; end-to-end behaviour lives in the
verdict-equivalence and fixture suites next door.
"""

import pytest

from repro.coordination import (
    DEFAULT_TOPOLOGY,
    TOPOLOGIES,
    CoordinationTopology,
    GossipFanout,
    RoundRobinToken,
    SlicerPlacement,
    TreeAggregation,
    build_topology,
    topology_names,
)
from repro.experiments.properties import case_study_registry


class _FakeEntry:
    """Duck-typed TokenEntry: just the per-process conjunct split."""

    def __init__(self, conjuncts):
        self.conjuncts = conjuncts


class _FakeToken:
    """Duck-typed Token: ``pick_target`` only calls ``undecided_entries``."""

    def __init__(self, entries=()):
        self._entries = list(entries)

    def undecided_entries(self):
        return self._entries


class TestRegistry:
    def test_every_name_builds_a_protocol_instance(self):
        for name in TOPOLOGIES:
            topology = build_topology(name, 8)
            assert isinstance(topology, CoordinationTopology)
            assert topology.name == name

    def test_default_topology_is_registered_first(self):
        assert DEFAULT_TOPOLOGY == "round-robin-token"
        assert TOPOLOGIES[0] == DEFAULT_TOPOLOGY
        assert topology_names() == list(TOPOLOGIES)

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(ValueError, match="unknown topology 'mesh'"):
            build_topology("mesh", 4)

    def test_describe_is_json_friendly_metadata(self):
        for name in TOPOLOGIES:
            description = build_topology(name, 8).describe()
            assert set(description) == {
                "name",
                "routing",
                "termination",
                "verdicts",
            }
            assert description["name"] == name

    @pytest.mark.parametrize("name", TOPOLOGIES)
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 9])
    def test_routing_invariants_hold_for_every_topology(self, name, n):
        topology = build_topology(name, n, registry=case_study_registry(n))
        token = _FakeToken()
        for current in range(n):
            candidates = [j for j in range(n)]
            assert topology.pick_target(current, candidates, token) in candidates
            recipients = topology.termination_recipients(current)
            assert current not in recipients
            assert len(set(recipients)) == len(recipients)
            for origin in range(n):
                forwarded = topology.forward_termination(current, origin)
                assert current not in forwarded
                assert origin not in forwarded
                assert current not in topology.forward_verdict(current, origin)
            for destination in range(n):
                hop = topology.next_hop(current, destination)
                assert 0 <= hop < n


class TestRoundRobinToken:
    def test_reproduces_the_pre_refactor_decisions(self):
        topology = RoundRobinToken(4)
        assert topology.pick_target(0, [2, 1, 3], _FakeToken()) == 2
        assert topology.next_hop(1, 3) == 3
        assert topology.termination_recipients(2) == (0, 1, 3)
        assert topology.forward_termination(2, 0) == ()
        assert topology.verdict_recipients(2) == ()
        assert topology.forward_verdict(2, 0) == ()


class TestTreeAggregation:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 12])
    def test_next_hop_walks_reach_every_destination(self, n):
        topology = TreeAggregation(n)
        for current in range(n):
            for destination in range(n):
                node, steps = current, 0
                while node != destination:
                    hop = topology.next_hop(node, destination)
                    assert hop in topology.neighbors(node), (
                        f"{node}->{destination} hopped to non-neighbour {hop}"
                    )
                    node = hop
                    steps += 1
                    assert steps <= n, f"walk {current}->{destination} cycles"

    def test_neighbors_are_the_heap_edges(self):
        topology = TreeAggregation(6)
        assert topology.neighbors(0) == (1, 2)
        assert topology.neighbors(1) == (0, 3, 4)
        assert topology.neighbors(2) == (0, 5)
        assert topology.neighbors(5) == (2,)

    def test_termination_floods_the_tree_edges(self):
        topology = TreeAggregation(6)
        assert topology.termination_recipients(1) == (0, 3, 4)
        # the flood continues everywhere except back toward the origin
        assert topology.forward_termination(1, 0) == (3, 4)
        assert topology.forward_termination(1, 3) == (0, 4)


class TestGossipFanout:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 13])
    def test_overlay_is_symmetric_without_self_loops(self, n):
        topology = GossipFanout(n)
        for i in range(n):
            assert i not in topology.neighbors(i)
            for j in topology.neighbors(i):
                assert i in topology.neighbors(j)

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 13])
    def test_overlay_is_connected(self, n):
        topology = GossipFanout(n)
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for neighbor in topology.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        assert seen == set(range(n))

    def test_small_overlays_are_the_plain_ring(self):
        for n in (2, 3, 4):
            topology = GossipFanout(n)
            for i in range(n):
                ring = {(i + 1) % n, (i - 1) % n} - {i}
                assert set(topology.neighbors(i)) == ring

    def test_large_overlays_add_one_chord_per_node(self):
        topology = GossipFanout(9)
        for i in range(9):
            # the ring plus at least the node's own chord
            assert len(topology.neighbors(i)) >= 3

    def test_overlay_is_deterministic_across_instances(self):
        # the chord salt is a compile-time constant, NOT the run seed: every
        # backend (including the seedless streaming runtime) must build the
        # identical overlay for a given n
        first, second = GossipFanout(11), GossipFanout(11)
        assert first._neighbors == second._neighbors

    def test_digests_fan_out_but_tokens_stay_direct(self):
        topology = GossipFanout(8)
        assert topology.next_hop(0, 5) == 5
        assert topology.termination_recipients(2) == topology.neighbors(2)
        assert topology.verdict_recipients(2) == topology.neighbors(2)
        origin = topology.neighbors(2)[0]
        assert origin not in topology.forward_verdict(2, origin)


class TestSlicerPlacement:
    def test_candidate_owning_most_undecided_conjuncts_wins(self):
        topology = SlicerPlacement(3)
        token = _FakeToken(
            [
                _FakeEntry([{}, {"p": True}, {"p": True, "q": False}]),
                _FakeEntry([{}, {}, {"r": True}]),
            ]
        )
        # weights: process 1 owns 1 conjunct atom, process 2 owns 3
        assert topology.pick_target(0, [1, 2], token) == 2

    def test_ties_break_on_static_ownership_then_index(self):
        registry = case_study_registry(3)
        topology = SlicerPlacement(3, registry=registry)
        ownership = [len(registry.owned_by(j)) for j in range(3)]
        token = _FakeToken()  # no undecided work: pure tie
        winner = topology.pick_target(0, [2, 1], token)
        best = max(ownership[1], ownership[2])
        assert ownership[winner] == best
        # without a registry every weight ties and the lowest index wins
        assert SlicerPlacement(3).pick_target(0, [2, 1], token) == 1

    def test_everything_else_matches_round_robin(self):
        topology = SlicerPlacement(4)
        baseline = RoundRobinToken(4)
        for current in range(4):
            assert topology.next_hop(current, 2) == 2
            assert topology.termination_recipients(current) == (
                baseline.termination_recipients(current)
            )
            assert topology.forward_termination(current, 0) == ()
            assert topology.verdict_recipients(current) == ()
