"""Cross-topology verdict equivalence: every topology, every backend.

The acceptance criterion of the topology refactor: routing is allowed to
change *where* tokens and digests travel, never *what* the monitors
conclude.  For fixed seeds, each registered topology must

1. declare only verdicts the centralized lattice oracle confirms
   (soundness, per topology and backend),
2. declare the same verdicts on the simulator and the asyncio streaming
   runtime (backend agreement),
3. declare the same verdicts as every other topology on the same cell
   (topology agreement),

including under a crash/restart fault plan and an armed Byzantine
duplication plan (both injected through ``MonitorFaultProxy``), and — for
one smoke scenario — on the cluster backend with real worker processes.
"""

import pytest

from repro.api import cluster_monitored_run, run_streaming
from repro.cluster.spec import RunSpec, build_cell_inputs
from repro.coordination import TOPOLOGIES
from repro.core.centralized import CentralizedMonitor
from repro.faults import ByzantineSpec, FaultPlan, parse_fault_plan
from repro.scenarios import get_scenario
from repro.sim import simulate_monitored_run

PROPERTIES = ("B", "C")


def _spec(property_name, topology, seed=2015, fault_plan=None):
    return RunSpec(
        scenario="paper-default",
        property_name=property_name,
        num_processes=3,
        events_per_process=4,
        evt_mu=3.0,
        evt_sigma=1.0,
        comm_mu=3.0,
        comm_sigma=1.0,
        seed=seed,
        max_views_per_state=2,
        fault_plan=fault_plan,
        topology=topology,
    )


def _cell(property_name, seed=2015):
    spec = _spec(property_name, "round-robin-token", seed=seed)
    return build_cell_inputs(spec)


def _simulate(cell, topology, seed=2015, faults=None):
    computation, automaton, registry = cell
    return simulate_monitored_run(
        computation,
        automaton,
        registry,
        seed=seed,
        network=get_scenario("paper-default").network,
        max_views_per_state=2,
        topology=topology,
        faults=faults,
    )


def _oracle(cell):
    computation, automaton, registry = cell
    return CentralizedMonitor.monitor_computation_declared(
        computation, automaton, registry
    )


class TestInProcessBackendsAgree:
    @pytest.mark.parametrize("property_name", PROPERTIES)
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_sim_and_asyncio_declare_identical_sound_verdicts(
        self, topology, property_name
    ):
        cell = _cell(property_name)
        computation, automaton, registry = cell
        simulated = _simulate(cell, topology)
        streamed = run_streaming(
            computation,
            automaton,
            registry,
            max_views_per_state=2,
            topology=topology,
        )
        assert simulated.declared_verdicts <= _oracle(cell), (
            f"{topology} declared an unsound verdict on {property_name}"
        )
        assert streamed.declared_verdicts == simulated.declared_verdicts, (
            f"backends diverged under {topology} on {property_name}"
        )

    @pytest.mark.parametrize("property_name", PROPERTIES)
    def test_every_topology_reaches_the_same_conclusions(self, property_name):
        cell = _cell(property_name)
        declared = {
            topology: _simulate(cell, topology).declared_verdicts
            for topology in TOPOLOGIES
        }
        baseline = declared["round-robin-token"]
        assert all(verdicts == baseline for verdicts in declared.values()), (
            f"topologies disagree on {property_name}: "
            f"{ {t: sorted(map(str, v)) for t, v in declared.items()} }"
        )


class TestEquivalenceUnderFaults:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_crash_restart_plan_preserves_backend_agreement(self, topology):
        plan = parse_fault_plan("0@2+1:rejoin")
        cell = _cell("B")
        computation, automaton, registry = cell
        simulated = _simulate(cell, topology, faults=plan)
        streamed = run_streaming(
            computation,
            automaton,
            registry,
            max_views_per_state=2,
            topology=topology,
            faults=plan,
        )
        assert simulated.fault_stats["fault_crashes"] >= 1
        assert simulated.declared_verdicts <= _oracle(cell)
        assert streamed.declared_verdicts == simulated.declared_verdicts
        assert streamed.fault_stats["fault_crashes"] == (
            simulated.fault_stats["fault_crashes"]
        )

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_byzantine_duplication_stays_sound_on_every_topology(self, topology):
        # duplicated inbound frames exercise the digest dedup sets: flooded
        # notices/announcements arrive twice and must be suppressed without
        # ever changing what gets declared
        plan = FaultPlan(byzantine=(ByzantineSpec(process=0, duplicate_every=2),))
        cell = _cell("B")
        report = _simulate(cell, topology, faults=plan)
        assert report.fault_stats["fault_byz_duplicated"] >= 1
        assert report.declared_verdicts <= _oracle(cell), (
            f"{topology} declared an unsound verdict under duplication"
        )


class TestClusterBackendAgrees:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_cluster_matches_sim_verdicts_per_topology(self, topology):
        spec = _spec("B", topology, seed=2015)
        cell = build_cell_inputs(spec)
        simulated = _simulate(cell, topology)
        clustered = cluster_monitored_run(spec)
        assert clustered.declared_verdicts == simulated.declared_verdicts, (
            f"cluster diverged from sim under {topology}"
        )
        if topology in ("tree-aggregation", "gossip"):
            # flooding topologies forward digests inside real workers too
            assert clustered.digest_messages > 0
        else:
            assert clustered.digest_messages == 0
