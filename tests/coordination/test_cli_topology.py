"""CLI and scenario-registry integration of topology selection.

``run --topology`` must override the scenario's own topology on every
backend, ``list-scenarios`` must surface the per-scenario topology column,
and the three ``paper-*`` topology variants must be registered (cluster
workers resolve scenarios by name, so the variants cannot live only in an
``ExecutionConfig`` override).
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.coordination import TOPOLOGIES
from repro.experiments.engine import ExecutionConfig
from repro.scenarios import get_scenario, scenario_names

REPO_ROOT = Path(__file__).resolve().parents[2]

#: the registered scenario variants pinning each non-default topology
TOPOLOGY_SCENARIOS = {
    "paper-tree-aggregation": "tree-aggregation",
    "paper-gossip": "gossip",
    "paper-slicer-placement": "slicer-placement",
}


def _run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.cli", *argv],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )


class TestExecutionConfig:
    def test_unknown_topology_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown topology 'nope'"):
            ExecutionConfig(topology="nope")

    def test_none_means_defer_to_the_scenario(self):
        assert ExecutionConfig().topology is None

    def test_every_registered_name_accepted(self):
        for name in TOPOLOGIES:
            assert ExecutionConfig(topology=name).topology == name


class TestTopologyScenarios:
    def test_variants_are_registered_with_their_topology(self):
        for name, topology in TOPOLOGY_SCENARIOS.items():
            scenario = get_scenario(name)
            assert scenario.topology == topology
            assert "topology" in scenario.tags
            assert scenario.describe()["topology"] == topology

    def test_default_scenarios_run_round_robin_token(self):
        assert get_scenario("paper-default").topology == "round-robin-token"
        assert (
            get_scenario("paper-default").describe()["topology"]
            == "round-robin-token"
        )

    def test_every_scenario_names_a_registered_topology(self):
        for name in scenario_names():
            assert get_scenario(name).topology in TOPOLOGIES


class TestCliTopology:
    def test_run_topology_override_smoke(self):
        result = _run_cli(
            "run",
            "--scenario",
            "paper-default",
            "--topology",
            "gossip",
            "--processes",
            "3",
            "--events",
            "3",
            "--replications",
            "1",
        )
        assert result.returncode == 0, result.stderr
        assert "topology gossip" in result.stdout
        assert "digest_messages" in result.stdout

    def test_unknown_topology_rejected_by_argparse(self):
        result = _run_cli(
            "run", "--scenario", "paper-default", "--topology", "mesh"
        )
        assert result.returncode != 0
        assert "invalid choice" in result.stderr

    def test_list_scenarios_shows_the_topology_column(self):
        result = _run_cli("list-scenarios")
        assert result.returncode == 0, result.stderr
        header = result.stdout.splitlines()[1]
        assert "topology" in header
        for name, topology in TOPOLOGY_SCENARIOS.items():
            assert name in result.stdout
            assert topology in result.stdout
