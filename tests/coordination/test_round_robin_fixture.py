"""Byte-identity of the default topology against pre-refactor fixtures.

``tests/coordination/fixtures/round_robin_token.json`` records the complete
observable output — verdicts, every per-monitor counter, network totals, the
full sweep-row dict — of five fixed-seed cells, captured on the monolithic
``DecentralizedMonitor`` immediately before the coordination-topology
extraction.  The refactored monitor running the default
``round-robin-token`` topology must reproduce each cell **byte for byte**:
the refactor is required to be a pure seam extraction, not a behaviour
change.

Regenerate the fixture (only when the default topology's *intended*
behaviour changes) with ``tools/capture_topology_fixtures.py``.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from capture_topology_fixtures import (  # noqa: E402
    CELLS,
    FIXTURE_PATH,
    capture_cell,
)


def _fixture_cells():
    document = json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))
    return {
        (cell["property"], cell["num_processes"], cell["seed"]): cell
        for cell in document["cells"]
    }


def test_fixture_covers_the_declared_cells():
    assert set(_fixture_cells()) == set(CELLS)


@pytest.mark.parametrize("cell", CELLS, ids=lambda c: f"{c[0]}-n{c[1]}-s{c[2]}")
def test_default_topology_reproduces_pre_refactor_outputs(cell):
    expected = _fixture_cells()[cell]
    actual = capture_cell(*cell)
    # normalise through JSON so tuple-vs-list and key order never matter;
    # every counter, verdict and sweep column must then match exactly
    assert json.loads(json.dumps(actual)) == expected, (
        f"round-robin-token diverged from the pre-refactor monitor on "
        f"cell {cell}"
    )
