"""Regression tests for the message/hop counter bugfixes.

Three accounting bugs rode along with the topology refactor; each gets a
pinned regression here:

1. **Hop ordering** — a completed token returning to its parent view was
   counted as a served hop (``token.hops`` and
   ``MonitorMetrics.token_hops_served`` incremented before the
   returning-home check).  The parent *consumes* the token; it serves no
   hop.
2. **Runner counter consistency** — ``DecentralizedResult`` now documents
   one counter set: the network-level total equals the per-monitor sum and
   decomposes exactly as token + termination + digest messages.
3. **Centralized accounting** — the centralized baseline counts its
   verdict broadcasts separately from observation deliveries, keeping
   ``messages`` backward-compatible while ``total_messages`` is the honest
   frontier denominator.
"""

from repro.core.centralized import CentralizedMonitor
from repro.core.messages import Token, TokenEntry
from repro.core.monitor import DecentralizedMonitor
from repro.core.runner import run_decentralized
from repro.core.transport import LoopbackNetwork
from repro.experiments.properties import case_study_registry
from repro.ltl import build_monitor
from repro.sim import random_computation


def _monitor_pair():
    registry = case_study_registry(2)
    automaton = build_monitor("F(P0.p & P1.p)", atoms=registry.names)
    network = LoopbackNetwork()
    initial_letters = [frozenset(), frozenset()]
    monitors = [
        DecentralizedMonitor(
            process=i,
            num_processes=2,
            automaton=automaton,
            registry=registry,
            initial_letters=initial_letters,
            transport=network,
        )
        for i in range(2)
    ]
    for i, monitor in enumerate(monitors):
        network.register(i, monitor)
    return monitors, network


def _decided_token(parent_process):
    entry = TokenEntry(
        transition_id=1,
        guard={},
        conjuncts=[{}, {}],
        start_cut=[0, 0],
        cut=[0, 0],
        depend=[0, 0],
        min_positions=[0, 0],
        satisfied=[True, True],
        eval=True,
    )
    return Token(
        parent_process=parent_process,
        parent_view=0,
        parent_event_sn=0,
        entries=[entry],
    )


class TestHopCounterOrdering:
    def test_completed_token_returning_home_serves_no_hop(self):
        monitors, _ = _monitor_pair()
        token = _decided_token(parent_process=0)
        monitors[0].receive_message(token)
        # the parent consumed the token: no hop served, none recorded
        assert token.hops == 0
        assert monitors[0].metrics.token_hops_served == 0

    def test_completed_token_at_a_non_parent_still_serves_a_hop(self):
        monitors, _ = _monitor_pair()
        token = _decided_token(parent_process=1)
        monitors[0].receive_message(token)
        # a foreign monitor re-serves even a decided token (to send it home)
        assert token.hops == 1
        assert monitors[0].metrics.token_hops_served == 1


class TestRunnerCounterConsistency:
    def test_one_consistent_counter_set(self):
        registry = case_study_registry(3)
        automaton = build_monitor("F(P0.p & P1.p)", atoms=registry.names)
        computation = random_computation(3, 12, seed=7)
        for topology in ("round-robin-token", "tree-aggregation", "gossip"):
            result = run_decentralized(
                computation,
                automaton,
                registry,
                max_views_per_state=2,
                topology=topology,
            )
            assert result.total_messages == result.total_monitor_messages, (
                f"network total diverged from monitor sum under {topology}"
            )
            assert result.total_messages == (
                result.total_token_messages
                + result.total_termination_messages
                + result.total_digest_messages
            ), f"decomposition broke under {topology}"
            summary = result.summary()
            assert summary["messages"] == result.total_messages
            assert summary["token_messages"] == result.total_token_messages
            assert summary["termination_messages"] == (
                result.total_termination_messages
            )
            assert summary["digest_messages"] == result.total_digest_messages

    def test_monitor_metrics_decompose_per_monitor_too(self):
        registry = case_study_registry(3)
        automaton = build_monitor("F(P0.p & P1.p)", atoms=registry.names)
        computation = random_computation(3, 10, seed=3)
        result = run_decentralized(
            computation, automaton, registry, max_views_per_state=2
        )
        for metrics in result.metrics_by_monitor:
            assert metrics.messages_sent == (
                metrics.token_messages_sent
                + metrics.termination_messages_sent
                + metrics.digest_messages_sent
            )


class TestCentralizedVerdictAccounting:
    def test_tautology_broadcasts_once_per_process(self):
        registry = case_study_registry(3)
        automaton = build_monitor("F(P0.p | !P0.p)", atoms=registry.names)
        computation = random_computation(3, 5, seed=1)
        result = CentralizedMonitor.monitor_computation(
            computation, automaton, registry
        )
        # exactly one conclusive verdict (⊤), announced to all 3 processes
        assert result.verdict_broadcast_messages == 3
        assert result.observation_messages == computation.num_events
        # `messages` stays the backward-compatible observation count
        assert result.messages == computation.num_events
        assert result.total_messages == result.messages + 3

    def test_inconclusive_run_broadcasts_nothing(self):
        registry = case_study_registry(2)
        automaton = build_monitor("G(F(P0.p))", atoms=registry.names)
        computation = random_computation(2, 4, seed=2)
        result = CentralizedMonitor.monitor_computation(
            computation, automaton, registry
        )
        # G(F p) never reaches a conclusive verdict on a finite prefix
        assert result.verdict_broadcast_messages == 0
        assert result.total_messages == result.messages

    def test_broadcasts_count_distinct_verdicts_not_redeclarations(self):
        registry = case_study_registry(2)
        automaton = build_monitor("F(P0.p)", atoms=registry.names)
        # plenty of events: once ⊤ is declared, later cuts re-reach the
        # verdict but must not re-broadcast it
        computation = random_computation(2, 20, seed=11)
        result = CentralizedMonitor.monitor_computation(
            computation, automaton, registry
        )
        assert result.verdict_broadcast_messages in (0, 2)
