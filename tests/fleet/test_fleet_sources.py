"""Event sources: the JSONL codec, file replay and loopback-socket ingestion.

The ``repro-fleet-events/1`` codec must round-trip a computation exactly —
replaying a recorded log or streaming it over a loopback socket has to feed
monitors the byte-identical stream the synthetic source generated — and a
malformed or truncated log must raise instead of monitoring garbage.
"""

import asyncio
import json

import pytest

from repro.fleet import (
    FleetConfig,
    ReplaySource,
    SocketSource,
    SyntheticSource,
    TenantSpec,
    run_fleet,
)
from repro.fleet.sources import (
    EVENT_LOG_SCHEMA,
    SOURCE_KINDS,
    EventSource,
    computation_to_records,
    dump_event_log,
    load_event_log,
    records_to_computation,
    serve_event_log,
)


def _synthetic_computation(seed=2015):
    return asyncio.run(
        SyntheticSource().load(
            num_processes=3, events_per_process=4, property_name="B", seed=seed
        )
    )


def _load(source):
    return asyncio.run(
        source.load(num_processes=3, events_per_process=4, property_name="B", seed=1)
    )


class TestEventLogCodec:
    def test_records_round_trip(self):
        computation = _synthetic_computation()
        rebuilt = records_to_computation(computation_to_records(computation))
        assert rebuilt == computation

    def test_header_leads_and_carries_the_schema(self):
        records = computation_to_records(_synthetic_computation())
        assert records[0]["record"] == "header"
        assert records[0]["schema"] == EVENT_LOG_SCHEMA
        assert all(record["record"] == "event" for record in records[1:])

    def test_file_round_trip(self, tmp_path):
        computation = _synthetic_computation()
        path = tmp_path / "events.jsonl"
        dump_event_log(computation, path)
        assert load_event_log(path) == computation

    def test_log_lines_are_plain_json(self, tmp_path):
        path = tmp_path / "events.jsonl"
        dump_event_log(_synthetic_computation(), path)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert json.loads(lines[0])["schema"] == EVENT_LOG_SCHEMA

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError, match="empty event log"):
            records_to_computation([])

    def test_missing_header_rejected(self):
        records = computation_to_records(_synthetic_computation())
        with pytest.raises(ValueError, match="header record"):
            records_to_computation(records[1:])

    def test_unexpected_record_type_rejected(self):
        records = computation_to_records(_synthetic_computation())
        records.append({"record": "trailer"})
        with pytest.raises(ValueError, match="unexpected record type 'trailer'"):
            records_to_computation(records)

    def test_truncated_stream_rejected(self):
        # dropping a mid-stream event breaks contiguous sequence numbering,
        # which Computation.__post_init__ re-validates on rebuild
        records = computation_to_records(_synthetic_computation())
        events = [r for r in records if r["record"] == "event"]
        victim = next(r for r in events if r["sn"] == 1)
        records.remove(victim)
        with pytest.raises(ValueError):
            records_to_computation(records)


class TestReplaySource:
    def test_replays_the_recorded_stream(self, tmp_path):
        computation = _synthetic_computation()
        path = tmp_path / "events.jsonl"
        dump_event_log(computation, path)
        assert _load(ReplaySource(str(path))) == computation

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            _load(ReplaySource(str(tmp_path / "no-such.jsonl")))

    def test_replay_tenant_equals_synthetic_tenant(self, tmp_path):
        # a tenant fed from a recorded log reaches the same verdicts as the
        # synthetic tenant whose stream was recorded
        computation = _synthetic_computation(seed=2077)
        path = tmp_path / "events.jsonl"
        dump_event_log(computation, path)
        synthetic = TenantSpec(tenant_id="t", seed=2077)
        replayed = TenantSpec(
            tenant_id="t", seed=2077, source=ReplaySource(str(path))
        )
        results = {}
        for label, spec in (("synthetic", synthetic), ("replay", replayed)):
            report = run_fleet(FleetConfig(tenants=(spec,)))
            assert report.tenants_evicted == 0
            results[label] = report.results[0].equivalence_key()
        assert results["synthetic"] == results["replay"]


class TestSocketSource:
    def test_socket_round_trip(self):
        computation = _synthetic_computation()

        async def stream():
            server, host, port = await serve_event_log(computation)
            try:
                return await SocketSource(host, port).load(
                    num_processes=3,
                    events_per_process=4,
                    property_name="B",
                    seed=1,
                )
            finally:
                server.close()
                await server.wait_closed()

        assert asyncio.run(stream()) == computation

    def test_refused_connection_raises(self):
        # port 1 on loopback is never listening
        with pytest.raises(OSError):
            _load(SocketSource("127.0.0.1", 1))


class TestSourceRegistry:
    def test_catalogue_lists_every_source(self):
        assert set(SOURCE_KINDS) == {"synthetic", "replay", "socket"}

    @pytest.mark.parametrize(
        "source",
        [
            SyntheticSource(),
            ReplaySource("events.jsonl"),
            SocketSource("127.0.0.1", 9),
        ],
        ids=["synthetic", "replay", "socket"],
    )
    def test_sources_satisfy_the_protocol(self, source):
        assert isinstance(source, EventSource)
        assert source.describe()["kind"] in SOURCE_KINDS
