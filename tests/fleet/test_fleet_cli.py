"""The ``fleet`` CLI sub-command: table output, verification and BENCH JSON.

``python -m repro.experiments.cli fleet`` is the operator's entry point:
it must print the saturation-counter table, spot-verify tenants against
their standalone runs with a non-zero exit on divergence, stream verdicts
to a JSONL sink, and write ``repro-bench/1`` documents whose
``fleet_events_per_sec`` timing ``compare_bench.py`` tracks across runs.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.cli", *argv],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )


FAST = ("--tenants", "4", "--processes", "2", "--events", "2")


class TestFleetCommand:
    def test_reports_the_saturation_table(self):
        result = _run_cli("fleet", *FAST)
        assert result.returncode == 0, result.stderr
        assert "fleet: 4 tenants on 1 shard(s)" in result.stdout
        for counter in (
            "fleet_events_per_sec",
            "fleet_tenants_completed",
            "fleet_events_dropped",
            "fleet_verdict_latency_p99",
        ):
            assert counter in result.stdout

    def test_verify_spot_checks_against_standalone_runs(self):
        result = _run_cli("fleet", *FAST, "--verify", "2")
        assert result.returncode == 0, result.stderr
        assert result.stdout.count(": ok") == 2
        assert "verified 2 tenant(s) against standalone runs" in result.stdout
        assert "MISMATCH" not in result.stdout

    def test_jsonl_sink_streams_verdict_records(self, tmp_path):
        sink_path = tmp_path / "verdicts.jsonl"
        result = _run_cli(
            "fleet", *FAST, "--sink", "jsonl", "--sink-path", str(sink_path)
        )
        assert result.returncode == 0, result.stderr
        lines = [json.loads(line) for line in sink_path.read_text().splitlines()]
        assert [line["tenant_id"] for line in lines] == [
            f"tenant-{i:04d}" for i in range(4)
        ]

    def test_jsonl_sink_without_path_fails_fast(self):
        result = _run_cli("fleet", *FAST, "--sink", "jsonl")
        assert result.returncode == 1
        assert "error: the jsonl sink requires a path" in result.stderr

    def test_unknown_backpressure_rejected_by_the_parser(self):
        result = _run_cli("fleet", *FAST, "--backpressure", "drop-oldest")
        assert result.returncode == 2
        assert "invalid choice" in result.stderr

    def test_json_writes_a_tracked_bench_document(self, tmp_path):
        out = tmp_path / "BENCH_fleet.json"
        result = _run_cli(
            "fleet", *FAST, "--shards", "2", "--json", str(out)
        )
        assert result.returncode == 0, result.stderr
        document = json.loads(out.read_text())
        assert document["schema"] == "repro-bench/1"
        timing = document["timings"]["fleet_events_per_sec"]
        assert timing["events_per_sec"] > 0.0
        assert timing["group"] == "fleet"
        assert timing["fleet_shards"] == 2
        assert timing["fleet_tenants"] == 4
        latency = document["timings"]["fleet_verdict_latency"]
        assert latency["fleet_verdict_latency_p99"] >= 0.0
