"""The fleet's correctness anchor: tenants equal their standalone runs.

For fixed seeds, every tenant's verdict sequence (and the rest of its
:meth:`~repro.fleet.engine.TenantResult.equivalence_key` — message counts,
global views, event totals) must be byte-identical to the same
(formula, stream) pair run standalone through the asyncio backend
(:func:`repro.fleet.engine.standalone_tenant_result`).  The property is
checked across ≥ 3 tenant-count scales, so single-session luck cannot mask
a multiplexing bug, and across shard counts, so hash partitioning cannot
change what any tenant computes.
"""

import pytest

from repro.fleet import (
    FleetConfig,
    run_fleet,
    standalone_tenant_result,
    synthetic_fleet,
)

#: the ≥ 3 scales the equivalence property is checked at — one lone session,
#: a handful multiplexing one loop, and a batch spanning every property A–F
TENANT_SCALES = (1, 5, 17)


def _fleet_results(num_tenants, **config_kwargs):
    tenants = synthetic_fleet(
        num_tenants, num_processes=3, events_per_process=3, base_seed=2015
    )
    report = run_fleet(FleetConfig(tenants=tenants, **config_kwargs))
    assert report.tenants_evicted == 0
    assert report.tenants_completed == num_tenants
    return tenants, report.results


class TestStandaloneEquivalence:
    @pytest.mark.parametrize("num_tenants", TENANT_SCALES)
    def test_every_tenant_matches_its_standalone_run(self, num_tenants):
        tenants, results = _fleet_results(num_tenants)
        assert [r.tenant_id for r in results] == [t.tenant_id for t in tenants]
        for spec, result in zip(tenants, results):
            reference = standalone_tenant_result(spec)
            assert result.equivalence_key() == reference.equivalence_key()

    def test_verdict_sequences_hold_conclusive_declarations_only(self):
        _, results = _fleet_results(5)
        conclusive = 0
        for result in results:
            assert len(result.verdict_sequence) == 3  # one entry per monitor
            declared = " ".join(result.verdict_sequence).split()
            assert set(declared) <= {"⊤", "⊥"}  # never the inconclusive "?"
            conclusive += bool(declared)
        assert conclusive, "at least one tenant reaches a conclusive verdict"

    def test_block_policy_without_saturation_is_lossless(self):
        _, results = _fleet_results(5)
        for result in results:
            assert result.dropped_events == 0
            assert result.blocked_events == 0
            assert result.ingested_events == result.events


class TestShardIndependence:
    def test_shard_count_does_not_change_any_tenant(self):
        _, single = _fleet_results(17, shards=1)
        _, sharded = _fleet_results(17, shards=3)
        assert [r.equivalence_key() for r in single] == [
            r.equivalence_key() for r in sharded
        ]

    def test_more_shards_than_tenants(self):
        _, single = _fleet_results(1, shards=1)
        _, wide = _fleet_results(1, shards=4)
        assert [r.equivalence_key() for r in single] == [
            r.equivalence_key() for r in wide
        ]


class TestFleetDeterminism:
    def test_repeated_runs_are_byte_identical(self):
        _, first = _fleet_results(5)
        _, second = _fleet_results(5)
        assert [r.equivalence_key() for r in first] == [
            r.equivalence_key() for r in second
        ]
