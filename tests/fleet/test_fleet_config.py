"""Tenant admission: spec/config validation, batches and shard assignment.

:class:`~repro.fleet.config.TenantSpec` and
:class:`~repro.fleet.config.FleetConfig` reject malformed parameters at
construction time (not at run time, three shards deep), and
:func:`~repro.fleet.config.synthetic_fleet` produces deterministic,
uniquely-named tenant batches.  :func:`~repro.fleet.engine.shard_of` is a
stable content hash: the partition may never depend on batch order,
interpreter hash randomization or shard-pool scheduling.
"""

import pytest

from repro.fleet import (
    BACKPRESSURE_POLICIES,
    FleetConfig,
    TenantSpec,
    describe_backpressure,
    shard_of,
    synthetic_fleet,
)
from repro.fleet.sources import ReplaySource


class TestTenantSpecValidation:
    def test_defaults_are_valid(self):
        spec = TenantSpec(tenant_id="t")
        assert spec.property_name == "B"
        assert spec.compiled_kernel

    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            ({"tenant_id": ""}, "non-empty"),
            ({"property_name": "Z"}, "unknown case-study property"),
            ({"num_processes": 1}, "at least two processes"),
            ({"events_per_process": 0}, "must be positive"),
            ({"topology": "star"}, "unknown topology"),
            ({"time_scale": -1.0}, "non-negative"),
        ],
    )
    def test_rejects_malformed_parameters(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            TenantSpec(**{"tenant_id": "t", **kwargs})

    def test_describe_includes_the_source(self):
        description = TenantSpec(
            tenant_id="t", source=ReplaySource("events.jsonl")
        ).describe()
        assert description["tenant_id"] == "t"
        assert description["source"] == {"kind": "replay", "path": "events.jsonl"}


class TestFleetConfigValidation:
    def test_defaults_are_valid(self):
        config = FleetConfig(tenants=(TenantSpec(tenant_id="t"),))
        assert config.backpressure == "block"
        assert config.inbox_limit == 1024

    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            ({"tenants": ()}, "at least one tenant"),
            ({"shards": 0}, "shards must be positive"),
            ({"max_tenants": -1}, "non-negative"),
            ({"inbox_limit": 0}, "inbox_limit must be positive"),
            ({"backpressure": "drop-oldest"}, "unknown backpressure policy"),
            ({"quiesce_timeout": 0.0}, "quiesce_timeout must be positive"),
        ],
    )
    def test_rejects_malformed_parameters(self, kwargs, match):
        defaults = {"tenants": (TenantSpec(tenant_id="t"),)}
        with pytest.raises(ValueError, match=match):
            FleetConfig(**{**defaults, **kwargs})

    def test_rejects_duplicate_tenant_ids(self):
        with pytest.raises(ValueError, match="duplicate tenant id 'twin'"):
            FleetConfig(
                tenants=(TenantSpec(tenant_id="twin"), TenantSpec(tenant_id="twin"))
            )

    def test_policy_catalogue_matches_the_registry(self):
        assert tuple(p["name"] for p in describe_backpressure()) == (
            BACKPRESSURE_POLICIES
        )


class TestSyntheticFleet:
    def test_batches_are_deterministic(self):
        assert synthetic_fleet(6) == synthetic_fleet(6)

    def test_ids_unique_and_seeds_strided(self):
        tenants = synthetic_fleet(8, base_seed=100)
        assert len({t.tenant_id for t in tenants}) == 8
        assert [t.seed for t in tenants] == [100 + 31 * i for i in range(8)]

    def test_properties_round_robin(self):
        tenants = synthetic_fleet(8, properties=("A", "B", "C"))
        assert [t.property_name for t in tenants] == list("ABCABCAB")

    def test_any_slice_reproducible_in_isolation(self):
        assert synthetic_fleet(10)[3] == synthetic_fleet(4)[3]

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError, match="num_tenants must be positive"):
            synthetic_fleet(0)


class TestShardAssignment:
    def test_one_shard_takes_everything(self):
        assert {shard_of(f"tenant-{i:04d}", 1) for i in range(50)} == {0}

    def test_assignment_is_a_pinned_content_hash(self):
        # CRC-32 of the id, mod shards — pinned so recorded fleet layouts
        # (and cross-run BENCH comparisons) never silently repartition
        assert shard_of("tenant-0000", 4) == 2
        assert shard_of("tenant-0001", 4) == 0
        assert shard_of("alpha", 3) == 1
        assert shard_of("beta", 3) == 1

    def test_assignment_independent_of_batch(self):
        lone = shard_of("tenant-0007", 5)
        assert all(shard_of("tenant-0007", 5) == lone for _ in range(3))
        assert 0 <= lone < 5
