"""Backpressure, eviction and admission: the fleet under resource pressure.

``block`` stalls the feeder (counted, lossless); ``drop-newest`` sheds the
saturated process's stream suffix (counted per tenant) while keeping every
delivered stream a true prefix — so whatever the tenant still declares stays
sound — and never drops termination signals, so saturated tenants still
complete.  A session failure evicts one tenant, not its shard, and the
admission cap rejects (with a counter) instead of queueing.
"""

from repro.fleet import (
    FleetConfig,
    ReplaySource,
    TenantSpec,
    run_fleet,
    standalone_tenant_result,
    synthetic_fleet,
)

SATURATING = {"inbox_limit": 1, "events_per_process": 4}


class TestBlockPolicy:
    def test_saturated_block_is_lossless(self):
        tenants = synthetic_fleet(
            4, events_per_process=SATURATING["events_per_process"]
        )
        report = run_fleet(
            FleetConfig(
                tenants=tenants,
                inbox_limit=SATURATING["inbox_limit"],
                backpressure="block",
            )
        )
        assert report.tenants_evicted == 0
        assert report.events_blocked > 0
        assert report.events_dropped == 0
        for result in report.results:
            assert result.ingested_events == result.events

    def test_saturated_block_keeps_verdict_outcomes(self):
        # blocking reorders the interleaving, so message counts may drift,
        # but conclusive verdicts are interleaving-independent
        tenants = synthetic_fleet(
            4, events_per_process=SATURATING["events_per_process"]
        )
        report = run_fleet(
            FleetConfig(
                tenants=tenants,
                inbox_limit=SATURATING["inbox_limit"],
                backpressure="block",
            )
        )
        for spec, result in zip(tenants, report.results):
            assert result.verdicts == standalone_tenant_result(spec).verdicts


class TestDropNewestPolicy:
    def test_drops_are_counted_and_conserved(self):
        tenants = synthetic_fleet(
            4, events_per_process=SATURATING["events_per_process"]
        )
        report = run_fleet(
            FleetConfig(
                tenants=tenants,
                inbox_limit=SATURATING["inbox_limit"],
                backpressure="drop-newest",
            )
        )
        assert report.tenants_evicted == 0  # shedding degrades, never corrupts
        assert report.events_dropped > 0
        assert report.events_blocked == 0
        for result in report.results:
            assert result.ingested_events + result.dropped_events == result.events

    def test_roomy_inbox_never_drops(self):
        report = run_fleet(
            FleetConfig(
                tenants=synthetic_fleet(3, events_per_process=2),
                inbox_limit=1024,
                backpressure="drop-newest",
            )
        )
        assert report.events_dropped == 0
        assert [r.equivalence_key() for r in report.results] == [
            r.equivalence_key()
            for r in run_fleet(
                FleetConfig(tenants=synthetic_fleet(3, events_per_process=2))
            ).results
        ]


class TestEviction:
    def test_failing_source_evicts_one_tenant_not_the_shard(self, tmp_path):
        healthy = synthetic_fleet(3, events_per_process=2)
        doomed = TenantSpec(
            tenant_id="zz-doomed",
            source=ReplaySource(str(tmp_path / "no-such.jsonl")),
        )
        report = run_fleet(FleetConfig(tenants=(*healthy, doomed)))
        assert report.tenants_admitted == 4
        assert report.tenants_completed == 3
        assert report.tenants_evicted == 1
        assert report.tenants_active == 0
        evicted = report.results[-1]  # results are tenant-id ordered
        assert evicted.tenant_id == "zz-doomed"
        assert evicted.evicted
        assert evicted.error.startswith("FileNotFoundError")
        assert all(not r.evicted for r in report.results[:-1])

    def test_evicted_tenants_reach_the_sink_with_their_error(self, tmp_path):
        from repro.fleet.sinks import MemorySink

        sink = MemorySink()
        run_fleet(
            FleetConfig(
                tenants=(
                    TenantSpec(
                        tenant_id="t",
                        source=ReplaySource(str(tmp_path / "no-such.jsonl")),
                    ),
                )
            ),
            sink=sink,
        )
        assert len(sink.records) == 1
        assert sink.records[0].error.startswith("FileNotFoundError")


class TestAdmission:
    def test_cap_rejects_the_tail(self):
        tenants = synthetic_fleet(7, events_per_process=2)
        report = run_fleet(FleetConfig(tenants=tenants, max_tenants=3))
        assert report.tenants_admitted == 3
        assert report.tenants_rejected == 4
        assert [r.tenant_id for r in report.results] == [
            t.tenant_id for t in tenants[:3]
        ]

    def test_saturation_counters_cover_the_lifecycle(self):
        report = run_fleet(
            FleetConfig(
                tenants=synthetic_fleet(3, events_per_process=2), max_tenants=2
            )
        )
        counters = report.saturation()
        assert counters["fleet_tenants_admitted"] == 2.0
        assert counters["fleet_tenants_rejected"] == 1.0
        assert counters["fleet_tenants_completed"] == 2.0
        assert counters["fleet_tenants_active"] == 0.0
        assert counters["fleet_tenants_evicted"] == 0.0
        assert report.fleet_events_per_sec > 0.0
