"""Verdict sinks: in-memory collection, JSONL tailing and the registry.

The fleet emits one :class:`~repro.fleet.sinks.TenantVerdict` per tenant in
deterministic tenant-id order; the memory sink keeps them inspectable, the
JSONL sink writes the line-per-record shape an external collector would
tail, and :func:`~repro.fleet.sinks.make_sink` fails loudly on unknown or
under-specified kinds.
"""

import json

import pytest

from repro.fleet import FleetConfig, run_fleet, synthetic_fleet
from repro.fleet.sinks import (
    SINK_KINDS,
    JsonlSink,
    MemorySink,
    TenantVerdict,
    VerdictSink,
    make_sink,
)


def _record(tenant_id="t", **overrides):
    defaults = {
        "tenant_id": tenant_id,
        "property_name": "B",
        "verdict_sequence": ("BOTTOM", "", "BOTTOM"),
        "verdicts": ("BOTTOM",),
        "events": 9,
        "dropped_events": 0,
        "latency_seconds": 0.25,
    }
    return TenantVerdict(**{**defaults, **overrides})


class TestMemorySink:
    def test_collects_in_emission_order(self):
        sink = MemorySink()
        sink.emit(_record("a"))
        sink.emit(_record("b"))
        sink.close()
        assert [r.tenant_id for r in sink.records] == ["a", "b"]
        assert sink.describe() == {"kind": "memory", "records": 2}


class TestJsonlSink:
    def test_writes_one_json_object_per_record(self, tmp_path):
        path = tmp_path / "verdicts.jsonl"
        sink = JsonlSink(path)
        sink.emit(_record("a"))
        sink.emit(_record("b", error="ValueError: boom"))
        sink.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["tenant_id"] for line in lines] == ["a", "b"]
        assert lines[0]["verdicts"] == ["BOTTOM"]
        assert lines[1]["error"] == "ValueError: boom"
        assert sink.emitted == 2

    def test_file_created_lazily(self, tmp_path):
        path = tmp_path / "verdicts.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()  # nothing emitted, nothing created
        sink.close()
        assert not path.exists()

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "verdicts.jsonl")
        sink.emit(_record())
        sink.close()
        sink.close()


class TestMakeSink:
    def test_builds_registered_kinds(self, tmp_path):
        assert isinstance(make_sink("memory"), MemorySink)
        assert isinstance(make_sink("jsonl", tmp_path / "v.jsonl"), JsonlSink)

    def test_jsonl_requires_a_path(self):
        with pytest.raises(ValueError, match="jsonl sink requires a path"):
            make_sink("jsonl")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown verdict sink 'kafka'"):
            make_sink("kafka")

    def test_registry_instances_satisfy_the_protocol(self, tmp_path):
        for kind in SINK_KINDS:
            assert isinstance(make_sink(kind, tmp_path / "v.jsonl"), VerdictSink)


class TestFleetEmission:
    def test_fleet_emits_every_tenant_in_id_order(self, tmp_path):
        tenants = synthetic_fleet(4, events_per_process=2)
        path = tmp_path / "verdicts.jsonl"
        sink = JsonlSink(path)
        report = run_fleet(FleetConfig(tenants=tenants), sink=sink)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["tenant_id"] for line in lines] == sorted(
            t.tenant_id for t in tenants
        )
        assert report.tenants_completed == 4
        assert all(line["error"] == "" for line in lines)
