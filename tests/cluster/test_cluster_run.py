"""Cluster backend acceptance: real worker processes agree with sim/asyncio.

The acceptance criterion of the multi-host runtime: for fixed seeds, running
a registered scenario on ``--backend cluster`` — one OS process per monitor,
wire protocol v2 over real loopback sockets — declares verdicts identical to
the discrete-event simulator and the asyncio streaming runtime, including
under a crash/restart fault plan.  Every test here spawns real worker
subprocesses through the coordinator.
"""

import json
from dataclasses import replace

import pytest

from repro.api import (
    ClusterError,
    ExecutionConfig,
    ExperimentScale,
    RunSpec,
    cluster_monitored_run,
    loopback_manifest,
    run_streaming,
)
from repro.cluster.spec import build_cell_inputs
from repro.experiments.engine import run_scenario_cell
from repro.scenarios import GridPoint, Scenario, get_scenario
from repro.sim import simulate_monitored_run

#: the three registered scenarios the criterion is checked on — the paper
#: baseline, a deterministic network and a degraded one (the cluster backend
#: replaces the modelled network with real sockets; conclusive verdicts are
#: delivery-order independent, so they must coincide anyway)
EQUIVALENCE_SCENARIOS = ("paper-default", "fixed-latency", "lossy-retransmit")

SMALL_SCALE = ExperimentScale(
    process_counts=(2, 3),
    events_per_process=4,
    replications=1,
    max_views_per_state=2,
)


def _spec(scenario_name, property_name="B", seed=2015, fault_plan=None):
    """One small three-monitor cell of *scenario_name*."""
    return RunSpec(
        scenario=scenario_name,
        property_name=property_name,
        num_processes=3,
        events_per_process=4,
        evt_mu=3.0,
        evt_sigma=1.0,
        comm_mu=3.0,
        comm_sigma=1.0,
        seed=seed,
        max_views_per_state=2,
        fault_plan=fault_plan,
    )


class TestClusterEquivalence:
    @pytest.mark.parametrize("scenario_name", EQUIVALENCE_SCENARIOS)
    def test_cluster_matches_sim_and_asyncio_verdicts(self, scenario_name):
        spec = _spec(scenario_name)
        computation, automaton, registry = build_cell_inputs(spec)
        simulated = simulate_monitored_run(
            computation,
            automaton,
            registry,
            seed=spec.seed,
            max_views_per_state=2,
            network=get_scenario(scenario_name).network,
        )
        streamed = run_streaming(
            computation, automaton, registry, max_views_per_state=2
        )
        clustered = cluster_monitored_run(spec)
        assert clustered.declared_verdicts == simulated.declared_verdicts, (
            f"cluster diverged from sim for {scenario_name}"
        )
        assert clustered.declared_verdicts == streamed.declared_verdicts, (
            f"cluster diverged from asyncio for {scenario_name}"
        )
        # all three monitored the identical regenerated computation
        assert clustered.total_events == computation.num_events

    def test_compiled_kernel_flag_does_not_change_cluster_verdicts(self):
        # the RunSpec carries the kernel choice to every worker process;
        # verdict streams must be identical either way
        spec = _spec("fixed-latency")
        assert spec.compiled_kernel is True
        interpreted_spec = replace(spec, compiled_kernel=False)
        compiled = cluster_monitored_run(spec)
        interpreted = cluster_monitored_run(interpreted_spec)
        assert compiled.declared_verdicts == interpreted.declared_verdicts
        assert compiled.total_events == interpreted.total_events

    def test_compiled_kernel_survives_spec_json_round_trip(self):
        spec = replace(_spec("paper-default"), compiled_kernel=False)
        assert RunSpec.from_json(spec.to_json()).compiled_kernel is False
        # pre-field specs (older manifests) default to the compiled kernel
        payload = json.loads(spec.to_json())
        del payload["compiled_kernel"]
        assert RunSpec.from_json(json.dumps(payload)).compiled_kernel is True

    def test_crash_restart_fault_plan_across_real_workers(self):
        spec = _spec("paper-default", fault_plan="1@2+1:replay")
        computation, automaton, registry = build_cell_inputs(spec)
        simulated = simulate_monitored_run(
            computation,
            automaton,
            registry,
            seed=spec.seed,
            max_views_per_state=2,
            network=get_scenario("paper-default").network,
            faults=spec.faults(),
        )
        clustered = cluster_monitored_run(spec)
        assert clustered.declared_verdicts == simulated.declared_verdicts
        # the crash/restart cycle really ran inside a worker process
        assert clustered.fault_stats["fault_crashes"] == 1.0
        assert clustered.fault_stats["fault_restarts"] == 1.0
        assert clustered.fault_stats["fault_buffered_events"] >= 1.0

    def test_report_aggregates_per_worker_results(self):
        report = cluster_monitored_run(_spec("paper-default"))
        assert report.num_processes == 3
        assert len(report.worker_results) == 3
        # every worker reports the whole computation's event count
        assert {result["total_events"] for result in report.worker_results} == {
            report.total_events
        }
        assert report.token_messages > 0
        assert report.monitor_messages >= report.token_messages
        assert report.wall_seconds > 0.0
        # attribute-compatible with RuntimeReport where sweep metrics need it
        assert report.delay_time_percentage_per_view == 0.0
        assert report.network_stats == {}


class TestClusterEngineIntegration:
    def test_cluster_cells_produce_sweep_metrics(self):
        scenario = get_scenario("paper-default")
        config = ExecutionConfig(backend="cluster")
        cell = run_scenario_cell(
            scenario, GridPoint("B", 3), SMALL_SCALE, seed=2015, config=config
        )
        sim_cell = run_scenario_cell(
            scenario, GridPoint("B", 3), SMALL_SCALE, seed=2015
        )
        assert set(sim_cell) <= set(cell)
        assert cell["events"] == sim_cell["events"]

    def test_cluster_backend_requires_registered_scenario(self):
        registered = get_scenario("paper-default")
        unregistered = Scenario(
            name="not-in-registry",
            description="local-only variant",
            workload=registered.workload,
            network=registered.network,
        )
        config = ExecutionConfig(backend="cluster")
        with pytest.raises(ValueError, match="registered scenario"):
            run_scenario_cell(
                unregistered, GridPoint("B", 2), SMALL_SCALE, seed=1, config=config
            )


class TestClusterFailureModes:
    def test_manifest_smaller_than_spec_rejected(self):
        spec = _spec("paper-default")
        manifest = loopback_manifest(2)
        with pytest.raises(ClusterError, match="2 worker"):
            cluster_monitored_run(spec, manifest)
