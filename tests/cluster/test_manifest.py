"""Cluster manifests and run specs: parsing, validation, round-trips."""

import json

import pytest

from repro.cluster.manifest import (
    ClusterManifest,
    Endpoint,
    load_manifest,
    loopback_manifest,
    manifest_from_dict,
)
from repro.cluster.spec import RunSpec, build_cell_inputs, spec_for_cell
from repro.faults import CrashSpec, FaultPlan

EXAMPLE = ClusterManifest(
    coordinator=Endpoint("10.0.0.1", 7000),
    workers=(Endpoint("10.0.0.2", 7100), Endpoint("10.0.0.3", 7100)),
)


class TestManifest:
    @pytest.mark.parametrize("filename", ["cluster.toml", "cluster.json"])
    def test_save_load_round_trip(self, tmp_path, filename):
        path = EXAMPLE.save(tmp_path / filename)
        assert load_manifest(path) == EXAMPLE

    def test_worker_lookup(self):
        assert EXAMPLE.worker(1) == Endpoint("10.0.0.3", 7100)
        assert str(EXAMPLE.worker(0)) == "10.0.0.2:7100"
        with pytest.raises(KeyError, match="no worker for monitor 5"):
            EXAMPLE.worker(5)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="cluster manifest not found"):
            load_manifest(tmp_path / "absent.toml")

    def test_empty_worker_table_rejected(self):
        with pytest.raises(ValueError, match="at least one worker"):
            ClusterManifest(coordinator=Endpoint("h", 1), workers=())

    def test_non_contiguous_worker_ids_rejected(self):
        data = EXAMPLE.as_dict()
        data["workers"] = {"0": data["workers"]["0"], "2": data["workers"]["1"]}
        with pytest.raises(ValueError, match="contiguous range 0..1"):
            manifest_from_dict(data)

    def test_non_integer_worker_keys_rejected(self):
        data = EXAMPLE.as_dict()
        data["workers"] = {"zero": data["workers"]["0"]}
        with pytest.raises(ValueError, match="integer monitor ids"):
            manifest_from_dict(data)

    def test_malformed_endpoint_rejected(self):
        data = EXAMPLE.as_dict()
        data["workers"]["1"] = {"host": "10.0.0.3", "port": "7100"}
        with pytest.raises(ValueError, match="worker 1.*port an integer"):
            manifest_from_dict(data)

    def test_missing_coordinator_rejected(self):
        data = EXAMPLE.as_dict()
        del data["coordinator"]
        with pytest.raises(ValueError, match="coordinator needs 'host' and 'port'"):
            manifest_from_dict(data)

    def test_invalid_file_error_names_the_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"workers": {}}))
        with pytest.raises(ValueError, match="invalid cluster manifest .*broken"):
            load_manifest(path)

    def test_loopback_manifest_allocates_distinct_ports(self):
        manifest = loopback_manifest(3)
        assert manifest.num_workers == 3
        endpoints = [manifest.coordinator, *manifest.workers]
        assert all(e.host == "127.0.0.1" for e in endpoints)
        assert len({e.port for e in endpoints}) == len(endpoints)


class TestRunSpec:
    def _spec(self, fault_plan=None):
        return spec_for_cell(
            scenario_name="paper-default",
            property_name="B",
            num_processes=3,
            events_per_process=4,
            evt_mu=3.0,
            evt_sigma=1.0,
            comm_mu=3.0,
            comm_sigma=1.0,
            seed=2015,
            max_views_per_state=2,
            fault_plan=fault_plan,
        )

    def test_json_round_trip(self, tmp_path):
        spec = self._spec()
        assert RunSpec.from_json(spec.to_json()) == spec
        path = spec.save(tmp_path / "spec.json")
        assert RunSpec.load(path) == spec

    def test_unknown_fields_rejected(self):
        document = json.loads(self._spec().to_json())
        document["surprise"] = 1
        with pytest.raises(ValueError, match="unknown fields: \\['surprise'\\]"):
            RunSpec.from_json(json.dumps(document))

    def test_fault_plan_travels_as_grammar(self):
        plan = FaultPlan(crashes=(CrashSpec(process=1, after_events=2,
                                            down_events=1, recovery="replay"),))
        spec = self._spec(fault_plan=plan)
        assert spec.fault_plan == "1@2+1:replay"
        assert spec.faults() == plan

    def test_noop_fault_plan_serializes_as_none(self):
        spec = self._spec(fault_plan=FaultPlan())
        assert spec.fault_plan is None
        assert spec.faults() is None

    def test_cell_inputs_are_deterministic(self):
        spec = self._spec()
        computation_a, automaton_a, _ = build_cell_inputs(spec)
        computation_b, automaton_b, _ = build_cell_inputs(spec)
        assert computation_a.num_events == computation_b.num_events
        assert [e.vc for e in computation_a.all_events()] == [
            e.vc for e in computation_b.all_events()
        ]
        assert automaton_a.num_states == automaton_b.num_states
